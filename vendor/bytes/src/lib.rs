//! Offline stand-in for the `bytes` crate.
//!
//! Provides the slice of the `Bytes` API the workspace uses: a cheaply
//! cloneable, immutable byte buffer whose clones share one backing
//! allocation (asserted by the briefcase element tests). Backed by
//! `Arc<[u8]>` rather than the real crate's refcount-in-prefix layout —
//! same sharing semantics, no `unsafe`.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable buffer of bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies `data` into a freshly allocated buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Creates a `Bytes` from a static slice without copying semantics
    /// mattering (the stand-in copies; callers only rely on the contents).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clones_share_backing_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"abc").to_vec(), b"abc".to_vec());
        assert_eq!(&Bytes::from("hi".to_string())[..], b"hi");
    }
}
