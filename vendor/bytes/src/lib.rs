//! Offline stand-in for the `bytes` crate.
//!
//! Provides the slice of the `Bytes` API the workspace uses: a cheaply
//! cloneable, immutable byte buffer whose clones share one backing
//! allocation (asserted by the briefcase element tests), plus
//! [`Bytes::slice`] for carving zero-copy views out of that allocation —
//! the operation the zero-copy briefcase decoder is built on. Backed by
//! a shared allocation plus an offset window rather than the real
//! crate's refcount-in-prefix layout — same sharing semantics, no
//! `unsafe`. A `Vec<u8>` converts without copying (the vector's heap
//! buffer is adopted wholesale), so encode-once wire buffers flow into
//! `Bytes` for free — the property the transport's vectored write path
//! relies on.

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// The shared backing allocation: either an `Arc<[u8]>` built from a
/// borrowed slice, or an adopted `Vec<u8>` whose heap buffer is reused
/// as-is. Both hand out stable `&[u8]` views for as long as any clone
/// lives.
#[derive(Clone)]
enum Backing {
    Shared(Arc<[u8]>),
    Owned(Arc<Vec<u8>>),
}

impl Backing {
    fn as_slice(&self) -> &[u8] {
        match self {
            Backing::Shared(data) => data,
            Backing::Owned(data) => data.as_slice(),
        }
    }
}

/// A cheaply cloneable, contiguous, immutable buffer of bytes.
///
/// Clones and [`Bytes::slice`] views share one backing allocation; only
/// the `(start, end)` window differs.
#[derive(Clone)]
pub struct Bytes {
    data: Backing,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Backing::Shared(Arc::from(&[][..])),
            start: 0,
            end: 0,
        }
    }

    fn whole(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data: Backing::Shared(data),
            start: 0,
            end,
        }
    }

    /// Copies `data` into a freshly allocated buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::whole(Arc::from(data))
    }

    /// Creates a `Bytes` from a static slice without copying semantics
    /// mattering (the stand-in copies; callers only rely on the contents).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::whole(Arc::from(data))
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Returns a view of `range` within this buffer that shares the
    /// backing allocation — no bytes are copied.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing, matching the
    /// real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice index out of range: {begin}..{end} of {len}"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    /// Adopts the vector's heap buffer without copying it.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Backing::Owned(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clones_share_backing_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"abc").to_vec(), b"abc".to_vec());
        assert_eq!(&Bytes::from("hi".to_string())[..], b"hi");
    }

    #[test]
    fn slice_shares_backing_allocation() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let mid = a.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        // The slice's pointer lands inside the parent's allocation.
        assert_eq!(mid.as_ptr(), unsafe_free_offset(&a, 2));
        // Slicing a slice composes.
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(inner.as_ptr(), unsafe_free_offset(&a, 3));
    }

    // Pointer arithmetic via indexing, not `unsafe`.
    fn unsafe_free_offset(b: &Bytes, i: usize) -> *const u8 {
        std::ptr::from_ref(&b[i])
    }

    #[test]
    fn vec_conversion_adopts_the_heap_buffer() {
        let v = vec![1u8, 2, 3, 4];
        let heap = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), heap, "Vec -> Bytes must not copy");
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
    }

    #[test]
    fn slice_bounds() {
        let a = Bytes::from(vec![9u8; 4]);
        assert_eq!(a.slice(..).len(), 4);
        assert_eq!(a.slice(4..4).len(), 0);
        assert_eq!(a.slice(..=1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let a = Bytes::from(vec![0u8; 3]);
        let _ = a.slice(1..5);
    }
}
