//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`. The
//! receiver is wrapped in a mutex so it is `Sync` and cloneable like the
//! real crossbeam receiver (the kernel stores receivers in shared host
//! state and polls them from guard threads).

pub mod channel {
    //! Multi-producer channels in the shape of `crossbeam::channel`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// The receiving half of an unbounded channel. Unlike
    /// `std::sync::mpsc::Receiver`, it is `Sync` and `Clone`.
    pub struct Receiver<T>(Arc<Mutex<Inner<T>>>);

    struct Inner<T> {
        rx: mpsc::Receiver<T>,
        // Holds messages pulled off `rx` by `is_empty` probes.
        peeked: VecDeque<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the channel is disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.inner();
            if let Some(front) = inner.peeked.pop_front() {
                return Ok(front);
            }
            inner.rx.try_recv()
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.inner();
            if let Some(front) = inner.peeked.pop_front() {
                return Ok(front);
            }
            inner.rx.recv()
        }

        /// Blocks with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let mut inner = self.inner();
            if let Some(front) = inner.peeked.pop_front() {
                return Ok(front);
            }
            inner.rx.recv_timeout(timeout)
        }

        /// Whether no message is currently waiting.
        pub fn is_empty(&self) -> bool {
            let mut inner = self.inner();
            if !inner.peeked.is_empty() {
                return false;
            }
            match inner.rx.try_recv() {
                Ok(value) => {
                    inner.peeked.push_back(value);
                    false
                }
                Err(_) => true,
            }
        }

        /// Number of messages currently waiting.
        pub fn len(&self) -> usize {
            let mut inner = self.inner();
            while let Ok(value) = inner.rx.try_recv() {
                inner.peeked.push_back(value);
            }
            inner.peeked.len()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(tx),
            Receiver(Arc::new(Mutex::new(Inner {
                rx,
                peeked: VecDeque::new(),
            }))),
        )
    }

    #[cfg(test)]
    mod tests {
        use super::{unbounded, TryRecvError};

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn receiver_is_sync_and_clone() {
            fn assert_sync<T: Sync + Send + Clone>(_: &T) {}
            let (_tx, rx) = unbounded::<u32>();
            assert_sync(&rx);
        }
    }
}
