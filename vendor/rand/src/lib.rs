//! Offline stand-in for `rand` 0.9.
//!
//! Implements the small slice of the rand API the workspace uses —
//! `StdRng::seed_from_u64`, `fill_bytes`, `random::<f64>()`, and
//! `random_range` over integer and float ranges — on top of a SplitMix64
//! generator. Every consumer in the tree seeds explicitly, so determinism
//! is the point and cryptographic quality is not required (key material in
//! `tacoma-security` is already simulation-grade by design).

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from a generator (`rng.random::<T>()`).
pub trait Random: Sized {
    /// Draws a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64, irrelevant for simulation use.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard generator: SplitMix64, deterministic from its seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one u64 of
        // state, and total as a function — ideal for reproducible sims.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = rng.random_range(0.25..3.0);
            assert!((0.25..3.0).contains(&f));
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
