//! The [`Strategy`] trait and core combinators.

use std::ops::{Range, RangeFrom, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, strategies here are plain generators — there
/// is no value tree and no shrinking.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O,
        Self: Sized,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `expand`
    /// wraps an inner strategy into one producing the next layer. `_size`
    /// and `_branch` are accepted for API parity and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            leaf: BoxedStrategy::new(self),
            expand: Rc::new(move |inner| BoxedStrategy::new(expand(inner))),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> BoxedStrategy<V> {
    /// Erases `strategy`'s concrete type.
    pub fn new<S: Strategy<Value = V> + 'static>(strategy: S) -> Self {
        BoxedStrategy(Rc::new(strategy))
    }
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    leaf: BoxedStrategy<V>,
    expand: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    depth: u32,
}

impl<V> Clone for Recursive<V> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            expand: Rc::clone(&self.expand),
            depth: self.depth,
        }
    }
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let levels = rng.below(u64::from(self.depth) + 1) as u32;
        let mut strategy = self.leaf.clone();
        for _ in 0..levels {
            strategy = (self.expand)(strategy);
        }
        strategy.generate(rng)
    }
}

/// String literals are regex strategies, as in the real crate.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(rng.below(span))) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + i128::from(rng.below(span))) as $ty
            }
        }

        impl Strategy for RangeFrom<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                (self.start..=<$ty>::MAX).generate(rng)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::for_case("strategy::tests", 0);
        for _ in 0..200 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..).generate(&mut rng);
            assert!(w >= 1);
            let doubled = (0u32..10).prop_map(|x| x * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 20);
        }
    }

    #[test]
    fn union_and_recursive_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..255)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::for_case("strategy::tests2", 1);
        for _ in 0..50 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4 + 4); // each expand layer adds ≤ 1 + inner layers
        }
    }
}
