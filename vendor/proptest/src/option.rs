//! Option strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `None` about a quarter of the time and `Some` of the
/// inner strategy's value otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Clone> Clone for OptionStrategy<S> {
    fn clone(&self) -> Self {
        OptionStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.ratio(1, 4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
