//! String generation from the regex subset the workspace's tests use.
//!
//! Supported syntax: literal characters, `\`-escapes, character classes
//! with ranges (`[A-Za-z0-9:_.@ -]`, trailing `-` literal), groups,
//! `\PC` (any printable, i.e. non-control, character), and the
//! quantifiers `{m}`, `{m,n}`, `{m,}`, `*`, `+`, `?`. Alternation and
//! negated classes are unsupported and panic, so a test written against a
//! richer pattern fails loudly rather than generating the wrong language.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    Class(Vec<(char, char)>),
    Printable,
    Rep(Box<Node>, u32, u32),
    Group(Vec<Node>),
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = parse_seq(&mut pattern.chars().collect::<Vec<_>>().as_slice());
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

fn parse_seq(input: &mut &[char]) -> Vec<Node> {
    let mut nodes = Vec::new();
    while let Some(&c) = input.first() {
        if c == ')' {
            break;
        }
        *input = &input[1..];
        let atom = match c {
            '(' => {
                let inner = parse_seq(input);
                match input.first() {
                    Some(')') => *input = &input[1..],
                    _ => panic!("regex stand-in: unclosed group"),
                }
                Node::Group(inner)
            }
            '[' => parse_class(input),
            '\\' => parse_escape(input),
            '|' => panic!("regex stand-in: alternation '|' is unsupported"),
            '.' => Node::Printable,
            other => Node::Lit(other),
        };
        nodes.push(parse_quantifier(input, atom));
    }
    nodes
}

fn parse_escape(input: &mut &[char]) -> Node {
    let c = take(input, "dangling escape");
    match c {
        'P' | 'p' => {
            let category = take(input, "\\P needs a category");
            assert!(
                category == 'C' || category == 'c',
                "regex stand-in: only the \\PC category is supported"
            );
            Node::Printable
        }
        'd' => Node::Class(vec![('0', '9')]),
        'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
        's' => Node::Lit(' '),
        'n' => Node::Lit('\n'),
        't' => Node::Lit('\t'),
        other => Node::Lit(other),
    }
}

fn parse_class(input: &mut &[char]) -> Node {
    assert!(
        input.first() != Some(&'^'),
        "regex stand-in: negated classes are unsupported"
    );
    let mut ranges = Vec::new();
    loop {
        let c = take(input, "unclosed character class");
        if c == ']' {
            break;
        }
        let lo = if c == '\\' {
            take(input, "dangling escape in class")
        } else {
            c
        };
        // `a-z` range, unless the '-' is last (then it is a literal).
        if input.first() == Some(&'-') && input.get(1).is_some_and(|&n| n != ']') {
            *input = &input[1..];
            let mut hi = take(input, "unclosed range in class");
            if hi == '\\' {
                hi = take(input, "dangling escape in class");
            }
            assert!(lo <= hi, "regex stand-in: inverted class range");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(!ranges.is_empty(), "regex stand-in: empty character class");
    Node::Class(ranges)
}

fn parse_quantifier(input: &mut &[char], atom: Node) -> Node {
    match input.first() {
        Some('{') => {
            *input = &input[1..];
            let mut spec = String::new();
            loop {
                let c = take(input, "unclosed quantifier");
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let (min, max) = match spec.split_once(',') {
                None => {
                    let n = spec.parse().expect("regex stand-in: bad quantifier");
                    (n, n)
                }
                Some((m, "")) => {
                    let m: u32 = m.parse().expect("regex stand-in: bad quantifier");
                    (m, m + 8)
                }
                Some((m, n)) => (
                    m.parse().expect("regex stand-in: bad quantifier"),
                    n.parse().expect("regex stand-in: bad quantifier"),
                ),
            };
            Node::Rep(Box::new(atom), min, max)
        }
        Some('*') => {
            *input = &input[1..];
            Node::Rep(Box::new(atom), 0, 8)
        }
        Some('+') => {
            *input = &input[1..];
            Node::Rep(Box::new(atom), 1, 8)
        }
        Some('?') => {
            *input = &input[1..];
            Node::Rep(Box::new(atom), 0, 1)
        }
        _ => atom,
    }
}

fn take(input: &mut &[char], message: &str) -> char {
    let Some(&c) = input.first() else {
        panic!("regex stand-in: {message}");
    };
    *input = &input[1..];
    c
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let span = hi as u32 - lo as u32 + 1;
            let c = char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32)
                .expect("class range crosses surrogates");
            out.push(c);
        }
        Node::Printable => {
            // Mostly printable ASCII; sometimes a multi-byte scalar so
            // UTF-8 handling gets exercised.
            if rng.ratio(7, 8) {
                out.push((0x20u8 + rng.below(0x5F) as u8) as char);
            } else {
                const EXOTIC: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '—', '🦀', '\u{00A0}'];
                out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
            }
        }
        Node::Rep(inner, min, max) => {
            let n = *min + rng.below(u64::from(max - min) + 1) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
        Node::Group(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    fn check(pattern: &str, validate: impl Fn(&str) -> bool) {
        let mut rng = TestRng::for_case("regex::tests", 0);
        for _ in 0..200 {
            let s = generate(pattern, &mut rng);
            assert!(validate(&s), "pattern {pattern:?} produced {s:?}");
        }
    }

    #[test]
    fn workspace_patterns_generate_members() {
        check("[A-Z]{1,6}", |s| {
            (1..=6).contains(&s.chars().count()) && s.chars().all(|c| c.is_ascii_uppercase())
        });
        check("[A-Za-z0-9:_.@ -]{1,40}", |s| {
            (1..=40).contains(&s.chars().count())
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || ":_.@ -".contains(c))
        });
        check("[a-z][a-z0-9]{0,8}(\\.[a-z][a-z0-9]{0,8}){0,3}", |s| {
            s.split('.').all(|part| {
                let mut chars = part.chars();
                chars.next().is_some_and(|c| c.is_ascii_lowercase())
                    && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
            })
        });
        check("\\PC{0,200}", |s| s.chars().count() <= 200);
        check("[a-z0-9 +*()<>=!;{}\"]{0,120}", |s| {
            s.chars().count() <= 120
        });
    }
}
