//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use — `proptest!`, `Strategy` combinators (`prop_map`,
//! `prop_recursive`), `prop_oneof!`, `any::<T>()`, regex-literal string
//! strategies, collection/option/sample strategies, and the `prop_assert*`
//! macros — over a deterministic SplitMix64 generator. There is no
//! shrinking: on failure the panic message carries the case number, and
//! generation is fully deterministic per (case, argument position), so
//! failures reproduce exactly.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod regex;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace: module re-exports matching real proptest paths.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::strategy;
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Chooses uniformly between the given strategies (all must yield the same
/// value type). The real crate's `weight => strategy` form is unsupported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::BoxedStrategy::new($strat) ),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}
