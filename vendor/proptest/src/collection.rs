//! Collection strategies (`prop::collection`).

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.min, self.max_exclusive)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Clone> Clone for VecStrategy<S> {
    fn clone(&self) -> Self {
        VecStrategy {
            element: self.element.clone(),
            size: self.size,
        }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with entry counts drawn from
/// `size` (duplicate keys collapse, as in the real crate).
pub fn btree_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K: Clone, V: Clone> Clone for BTreeMapStrategy<K, V> {
    fn clone(&self) -> Self {
        BTreeMapStrategy {
            keys: self.keys.clone(),
            values: self.values.clone(),
            size: self.size,
        }
    }
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.pick(rng);
        (0..len)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::for_case("collection::tests", 0);
        for _ in 0..100 {
            let v = vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let m = btree_map(any::<u8>(), any::<u8>(), 0..4).generate(&mut rng);
            assert!(m.len() < 4);
        }
    }
}
