//! Sampling helpers (`prop::sample`).

/// An abstract index into a collection of yet-unknown size, as in
/// `any::<prop::sample::Index>()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Resolves the abstract index against a collection of length `len`.
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}
