//! Deterministic generator + per-test configuration.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 generator seeded from (test name, case index),
/// so every run of every test sees the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        seed ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng { state: seed };
        rng.next_u64(); // discard the raw seed
        rng
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform usize in `[min, max)`. Panics if the range is empty.
    pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
        assert!(min < max, "empty size range {min}..{max}");
        min + self.below((max - min) as u64) as usize
    }

    /// True with probability `num/denom`.
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_and_name_sensitive() {
        let mut a = TestRng::for_case("t::x", 3);
        let mut b = TestRng::for_case("t::x", 3);
        let mut c = TestRng::for_case("t::y", 3);
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
