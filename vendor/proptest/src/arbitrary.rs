//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value of the type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`: uniform over the whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value, mirroring the real
        // crate's bias toward simple inputs.
        if rng.ratio(3, 4) {
            (0x20u8 + rng.below(0x5F) as u8) as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}
