//! Offline stand-in for `criterion` 0.3.
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! enough to keep `[[bench]] harness = false` targets compiling and
//! producing useful median-of-samples numbers, without the statistics
//! engine or plotting. Honors `--bench` (ignored) and a single optional
//! name filter argument like the real CLI.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives measurement of a single benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body`, called repeatedly; total time and count are recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip the binary name and cargo-bench plumbing flags; a bare
        // argument is a substring filter, like the real criterion CLI.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            filter,
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its median iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name.to_string(), None, sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate the per-sample iteration count toward ~2ms samples.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000);

        let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            let mut b = Bencher {
                iters: iters as u64,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        match throughput {
            Some(Throughput::Bytes(bytes)) if median > Duration::ZERO => {
                let rate = bytes as f64 / median.as_secs_f64();
                println!(
                    "{id:<40} {median:>12.2?}/iter {:>12.1} MiB/s",
                    rate / (1024.0 * 1024.0)
                );
            }
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64();
                println!("{id:<40} {median:>12.2?}/iter {rate:>12.0} elem/s");
            }
            _ => println!("{id:<40} {median:>12.2?}/iter"),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotates benchmarks with work-per-iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, samples, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
