//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` that reproduce the parking_lot API shape
//! the workspace relies on: `lock()`/`read()`/`write()` return guards
//! directly (no `Result`), and a panic while holding a lock does not poison
//! it for other threads.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock with the `parking_lot` API shape.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in another thread never poisons the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with the `parking_lot` API shape.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                f.debug_tuple("RwLock").field(&&*p.into_inner()).finish()
            }
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_is_not_poisoned_by_panics() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
