//! Offline stand-in for `serde`.
//!
//! The build environment has no access to a crate registry, and the
//! workspace only *declares* serde support (derives on wire types) without
//! serializing anything through it yet. This crate keeps those declarations
//! compiling: [`Serialize`]/[`Deserialize`] are marker traits with blanket
//! impls, and the derive macros (re-exported from the `serde_derive`
//! stand-in) expand to nothing.
//!
//! If the real serde is ever restored, delete `vendor/serde*` and point
//! `[workspace.dependencies]` back at the registry — no call sites change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

// The derive macros live in a different namespace from the traits, so both
// `Serialize` names can be imported by a single `use serde::Serialize`.
pub use serde_derive::{Deserialize, Serialize};

/// Stub of serde's `de` module, for paths like `serde::de::DeserializeOwned`.
pub mod de {
    /// Owned-deserialization marker, blanket-implemented for every type.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        a: u32,
        b: String,
    }

    fn assert_serialize<T: super::Serialize>() {}

    #[test]
    fn derives_expand_and_traits_hold() {
        assert_serialize::<Probe>();
        let p = Probe {
            a: 1,
            b: "x".into(),
        };
        assert_eq!(
            p,
            Probe {
                a: 1,
                b: "x".into()
            }
        );
    }
}
