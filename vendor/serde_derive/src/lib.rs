//! Offline stand-in for `serde_derive`.
//!
//! The real registry is unreachable in this build environment, and nothing
//! in the workspace actually serializes through serde — the derives are
//! declared so the types *could* be wired to a real serializer later. These
//! stand-in derives therefore expand to nothing, which keeps every
//! `#[derive(Serialize, Deserialize)]` in the tree compiling without
//! pulling in `syn`/`quote`.

use proc_macro::TokenStream;

/// Expands to nothing; the marker trait impl is provided by the blanket
/// impl in the `serde` stand-in crate.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see [`derive_serialize`].
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
