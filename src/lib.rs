//! # tacoma-rs
//!
//! A Rust reproduction of **TAX 2.0** (TACOMA on uniX) from *Adding
//! Mobility to Non-mobile Web Robots* (Sudmann & Johansen, ICDCS 2000):
//! a language-independent mobile-agent system, plus the paper's case study
//! — wrapping a stationary web robot (Webbot) in mobility wrappers to mine
//! for dead links at the data's source.
//!
//! This facade crate re-exports every workspace crate under one roof:
//!
//! * [`briefcase`] — the agent state container and wire codec (§3.1)
//! * [`uri`] — the Figure-2 agent-URI grammar and matcher (§3.2)
//! * [`simnet`] — virtual-time network simulation (substrate)
//! * [`security`] — principals, signatures, trust stores (§3.2–3.3)
//! * [`taxscript`] — the mobile agent language (substrate for `vm_c`/`vm_script`)
//! * [`firewall`] — the per-host reference monitor (§3.2)
//! * [`journal`] — the durable write-ahead journal: crash-resumable
//!   itineraries with effectively-once hop semantics
//! * [`transport`] — the real wire: TCP frames, handshake, retry (§3.2)
//! * [`vm`] — virtual machines: `vm_bin`, `vm_script`, `vm_c` (§3.3)
//! * [`core`] — the TAX kernel, library API, service agents, and wrappers (§3–4)
//! * [`web`] — synthetic web sites and servers (substrate for §5)
//! * [`webbot`] — the stationary robot and its mobility wrappers (§5)
//! * [`scenario`] — hostile-network scenario generation and
//!   makespan-minimizing itinerary planning (§5 at scale)
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use tacoma_briefcase as briefcase;
pub use tacoma_core as core;
pub use tacoma_firewall as firewall;
pub use tacoma_journal as journal;
pub use tacoma_scenario as scenario;
pub use tacoma_security as security;
pub use tacoma_simnet as simnet;
pub use tacoma_taxscript as taxscript;
pub use tacoma_transport as transport;
pub use tacoma_uri as uri;
pub use tacoma_vm as vm;
pub use tacoma_web as web;
pub use tacoma_webbot as webbot;
