//! `taxd` — the TAX firewall daemon: one host's firewall and VMs behind a
//! real TCP socket, so agents jump between OS processes instead of
//! between in-process simulated hosts.
//!
//! ```text
//! taxd --host alpha --listen 127.0.0.1:7001 --peer beta=127.0.0.1:7002 \
//!      [--launch file.tax]... [--itinerary beta,alpha] \
//!      [--journal-dir DIR] [--crash-after-record KIND[:N]] \
//!      [--idle-exit-ms 2000] [--require-signed] [--threads N] \
//!      [--transport-shards N] [--ack-window W]
//! ```
//!
//! The daemon binds a [`TransportListener`], routes every arriving frame
//! through its firewall exactly as a simulated envelope would be, and
//! ships outbound decisions over a sharded nonblocking
//! [`ReactorTransport`]: frames enter a bounded per-peer queue, ride a
//! pipelined ack window (up to `--ack-window` frames in flight, acked
//! cumulatively), and complete asynchronously — the main loop pumps
//! completions back into the firewall, which parks any frame whose retry
//! budget ran out for the periodic redelivery sweep. `--transport-shards`
//! sets the number of reactor threads (peers are assigned by host hash);
//! `--launch` may repeat to start several agents on the same itinerary.
//! With `--idle-exit-ms` the process exits once nothing has happened for
//! that long — the mode the loopback integration test uses.
//!
//! With `--journal-dir` every park, delivery, and migration hop is
//! write-ahead logged to an on-disk journal; restarting the daemon with
//! the same directory replays undelivered mail and unfinished hops, and
//! the listener's pre-ack hook deduplicates hop retries, so a crashed
//! itinerary resumes with every hop executed effectively once (see
//! `docs/journal.md`). `--crash-after-record` is the fault-injection
//! switch the crash-recovery tests use: the process aborts right after
//! the Nth durable record of the named kind.
//!
//! [`TransportListener`]: tacoma::transport::TransportListener
//! [`ReactorTransport`]: tacoma::transport::ReactorTransport

use std::env;
use std::fs;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tacoma::core::{AgentSpec, SystemBuilder, TaxSystem};
use tacoma::transport::{
    ListenerConfig, ReactorConfig, ReactorTransport, Transport, TransportListener,
};

/// How often the pending-queue sweep retries parked remote mail.
const SWEEP_EVERY: Duration = Duration::from_millis(250);

/// How long one `recv_timeout` on the inbound channel blocks.
const POLL_EVERY: Duration = Duration::from_millis(50);

struct Options {
    host: String,
    listen: String,
    peers: Vec<(String, String)>,
    launches: Vec<String>,
    itinerary: Vec<String>,
    idle_exit: Option<Duration>,
    require_signed: bool,
    threads: usize,
    transport_shards: usize,
    ack_window: usize,
    journal_dir: Option<String>,
    crash_after: Option<tacoma::journal::CrashPoint>,
}

fn usage() -> String {
    "usage: taxd --host NAME --listen ADDR [--peer HOST=ADDR]... \
     [--launch FILE.tax]... [--itinerary H1,H2,...] [--idle-exit-ms N] [--require-signed] \
     [--threads N] [--transport-shards N] [--ack-window W] \
     [--journal-dir DIR] [--crash-after-record KIND[:N]]"
        .to_owned()
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut host = None;
    let mut listen = None;
    let mut peers = Vec::new();
    let mut launches = Vec::new();
    let mut itinerary = Vec::new();
    let mut idle_exit = None;
    let mut require_signed = false;
    let mut threads = 0;
    let mut transport_shards = 0;
    let mut ack_window = 0;
    let mut journal_dir = None;
    let mut crash_after = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--host" => host = Some(value("--host")?),
            "--listen" => listen = Some(value("--listen")?),
            "--peer" => {
                let spec = value("--peer")?;
                let (name, addr) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--peer wants HOST=ADDR, got {spec:?}"))?;
                peers.push((name.to_owned(), addr.to_owned()));
            }
            "--launch" => launches.push(value("--launch")?),
            "--itinerary" => {
                itinerary = value("--itinerary")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--idle-exit-ms" => {
                let ms: u64 = value("--idle-exit-ms")?
                    .parse()
                    .map_err(|_| "--idle-exit-ms wants a number".to_owned())?;
                idle_exit = Some(Duration::from_millis(ms));
            }
            "--require-signed" => require_signed = true,
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads wants a number".to_owned())?;
            }
            "--transport-shards" => {
                transport_shards = value("--transport-shards")?
                    .parse()
                    .map_err(|_| "--transport-shards wants a number".to_owned())?;
            }
            "--ack-window" => {
                ack_window = value("--ack-window")?
                    .parse()
                    .map_err(|_| "--ack-window wants a number >= 1".to_owned())?;
            }
            "--journal-dir" => journal_dir = Some(value("--journal-dir")?),
            "--crash-after-record" => {
                let spec = value("--crash-after-record")?;
                crash_after = Some(tacoma::journal::CrashPoint::parse(&spec).ok_or_else(|| {
                    format!("--crash-after-record wants KIND[:N] (N >= 1), got {spec:?}")
                })?);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(Options {
        host: host.ok_or_else(usage)?,
        listen: listen.ok_or_else(usage)?,
        peers,
        launches,
        itinerary,
        idle_exit,
        require_signed,
        threads,
        transport_shards,
        ack_window,
        journal_dir,
        crash_after,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let result = parse(&args).and_then(|opts| run(&opts));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("taxd: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<(), String> {
    // Outbound: the sharded nonblocking reactor, peer table from --peer.
    // Frames queue per peer with bounded backpressure and ride a
    // pipelined ack window; the loop below pumps completions.
    let mut config = ReactorConfig::default();
    config.connect.local_host.clone_from(&opts.host);
    if opts.transport_shards > 0 {
        config.shards = opts.transport_shards;
    }
    if opts.ack_window > 0 {
        config.ack_window = opts.ack_window;
    }
    let transport = Arc::new(ReactorTransport::new(config));
    for (name, addr) in &opts.peers {
        transport.add_peer(name.clone(), addr.clone());
    }

    // One host, same kernel as the simulation, shipping over the socket.
    let mut system = SystemBuilder::new()
        .host(&opts.host)
        .map_err(|e| e.to_string())?
        .transport(Arc::clone(&transport) as Arc<dyn tacoma::transport::Transport>)
        .threads(opts.threads)
        .build();
    let host = system
        .host(&opts.host)
        .ok_or_else(|| format!("host {} did not build", opts.host))?;

    // Durability: open (or re-open) the write-ahead journal and replay
    // whatever a previous incarnation left unfinished — parked mail
    // re-enters the pending queue, arrived-but-unfinished agents are
    // re-installed, sent-but-unconfirmed hops are re-shipped. This runs
    // before the listener binds so the very first inbound frame already
    // journals through the same handle.
    let journal_handle = match &opts.journal_dir {
        Some(dir) => {
            let config = tacoma::journal::JournalConfig {
                crash_after: opts.crash_after,
                ..tacoma::journal::JournalConfig::default()
            };
            let (journal, replay) =
                tacoma::journal::Journal::open(dir, config).map_err(|e| format!("{dir}: {e}"))?;
            let journal = Arc::new(journal);
            let summary = system
                .recover_journal(&opts.host, &journal, &replay)
                .map_err(|e| e.to_string())?;
            println!(
                "taxd: journal replay records={} torn-tail={} reparked={} \
                 resumed-in={} resumed-out={} failed={}",
                summary.records_scanned,
                summary.torn_tail,
                summary.reparked,
                summary.resumed_inbound,
                summary.resumed_outbound,
                summary.failed
            );
            Some(journal)
        }
        None => None,
    };

    // Inbound: the listener answers HELLOs and hands frames to the loop
    // below; `taxsh stats --connect` is served straight off the firewall.
    let mut listener_config = ListenerConfig::trusting(&opts.host);
    listener_config.require_signed = opts.require_signed;
    let deduped = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let stats_host = host.clone();
    let stats_transport = Arc::clone(&transport);
    let stats_journal = journal_handle.clone();
    let stats_deduped = Arc::clone(&deduped);
    listener_config.stats_provider = Some(Arc::new(move || {
        let mut text = stats_host.with_firewall(|fw| {
            fw.stats_mut().absorb_transport(&stats_transport.stats());
            fw.stats_mut().hops_deduped = stats_deduped.load(std::sync::atomic::Ordering::Relaxed);
            fw.stats().to_string()
        });
        if let Some(journal) = &stats_journal {
            text.push_str(&format!("\njournal: {}", journal.stats()));
        }
        text
    }));
    if let Some(journal) = &journal_handle {
        // The door-side dedup point: journal each arriving keyed hop
        // *before* it is acked, and suppress (but still ack) retries of
        // hops this journal has already seen — the sender stops retrying
        // without the agent running twice.
        let journal = Arc::clone(journal);
        let counter = Arc::clone(&deduped);
        listener_config.pre_ack = Some(Arc::new(move |payload| {
            let Ok(message) = tacoma::firewall::Message::decode_bytes(payload) else {
                return true; // Let the firewall reject malformed frames.
            };
            let (tacoma::firewall::MessageKind::AgentTransfer { .. }, Some(key)) =
                (&message.kind, &message.hop)
            else {
                return true; // Unkeyed traffic is not journaled at the door.
            };
            match journal.begin_inbound_hop(key, message.hop_parent.as_deref(), payload) {
                Ok(true) => true,
                Ok(false) => {
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    false
                }
                // Journal failure: forward anyway — degraded durability
                // must not lose the agent.
                Err(_) => true,
            }
        }));
    }
    let mut listener =
        TransportListener::bind(&opts.listen, listener_config).map_err(|e| e.to_string())?;
    println!("taxd: {} listening on {}", opts.host, listener.local_addr());
    let _ = std::io::stdout().flush();

    let itinerary: Vec<String> = opts
        .itinerary
        .iter()
        .map(|h| format!("tacoma://{h}/vm_script"))
        .collect();
    for path in &opts.launches {
        let source = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let spec = AgentSpec::script("taxd", source).itinerary(itinerary.clone());
        system.launch(&opts.host, spec).map_err(|e| e.to_string())?;
    }

    let mut printed = 0;
    let mut last_activity = Instant::now();
    let mut last_sweep = Instant::now();
    loop {
        if system.run_until_quiet().steps() > 0 {
            last_activity = Instant::now();
        }
        // Settle acked/failed nonblocking sends: commits hops, parks
        // frames whose retry budget ran out.
        if system
            .pump_transport(&opts.host)
            .map_err(|e| e.to_string())?
            > 0
        {
            last_activity = Instant::now();
        }
        printed = print_new_events(&system, printed);

        match listener.incoming().recv_timeout(POLL_EVERY) {
            Ok(inbound) => {
                last_activity = Instant::now();
                system
                    .inject_wire_bytes(&opts.host, &inbound.payload)
                    .map_err(|e| e.to_string())?;
                continue; // Run the scheduler before blocking again.
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {} // Housekeeping below.
        }

        if last_sweep.elapsed() >= SWEEP_EVERY {
            last_sweep = Instant::now();
            let (delivered, _reparked) = system
                .redeliver_remote_pending(&opts.host)
                .map_err(|e| e.to_string())?;
            if delivered > 0 {
                last_activity = Instant::now();
            }
        }
        if let Some(limit) = opts.idle_exit {
            if last_activity.elapsed() >= limit
                && system
                    .transport_inflight(&opts.host)
                    .map_err(|e| e.to_string())?
                    == 0
            {
                break;
            }
        }
    }
    // Drain whatever is still riding the reactor so the final stats and
    // journal checkpoint reflect settled sends, not frames in limbo.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while system
        .transport_inflight(&opts.host)
        .map_err(|e| e.to_string())?
        > 0
        && Instant::now() < drain_deadline
    {
        if system
            .pump_transport(&opts.host)
            .map_err(|e| e.to_string())?
            == 0
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        system.run_until_quiet();
    }
    listener.shutdown();

    print_new_events(&system, printed);
    if let Some(journal) = &journal_handle {
        // Fold the tail into a checkpoint so the next boot replays only
        // genuinely unfinished work.
        let _ = journal.checkpoint();
        println!("taxd: journal {}", journal.stats());
    }
    let line = host.with_firewall(|fw| {
        fw.stats_mut().absorb_transport(&transport.stats());
        fw.stats_mut().hops_deduped = deduped.load(std::sync::atomic::Ordering::Relaxed);
        fw.stats().to_string()
    });
    println!("taxd: stats {line}");
    Ok(())
}

/// Prints events recorded since the last call; returns the new high-water
/// mark.
fn print_new_events(system: &TaxSystem, already: usize) -> usize {
    let events = system.events();
    for (host, event) in events.iter().skip(already) {
        println!("{host:>12}  {event}");
    }
    let _ = std::io::stdout().flush();
    events.len()
}
