//! `taxsh` — a small operator shell for the TAX reproduction.
//!
//! ```text
//! taxsh run <file.tax> [host1,host2,...]   run a TaxScript agent across hosts
//! taxsh check <file.tax>                   verify + lint without running
//! taxsh audit <outer.tax> [inner.tax ...]  whole-itinerary flow analysis
//! taxsh disasm <file.tax>                  compile and summarize a program
//! taxsh uri <agent-uri>                    parse a Figure-2 URI and explain it
//! taxsh scan [pages] [bytes]               the §5 case study, both ways
//! taxsh scenario gen --seed N --hosts H    emit a hostile-network scenario as JSON
//! taxsh send --connect ADDR --to URI <file.tax>   inject an agent into a taxd
//! taxsh stats --connect ADDR               a running taxd's firewall counters
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use tacoma::core::{AgentSpec, SystemBuilder};
use tacoma::security::Principal;
use tacoma::taxscript::analysis;
use tacoma::taxscript::compile_source;
use tacoma::transport::{ConnectConfig, Connection};
use tacoma::uri::{AgentUri, HostPort};
use tacoma::webbot::experiment::{run_mobile, run_stationary, speedup, CaseStudyParams};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("uri") => cmd_uri(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("scenario") => cmd_scenario(&args[1..]),
        Some("send") => cmd_send(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        _ => {
            eprintln!("usage: taxsh <run|check|audit|disasm|uri|scan|scenario|send|stats> ...");
            eprintln!(
                "  run <file.tax> [h1,h2,...]  launch the script on h1, itinerary over the rest"
            );
            eprintln!(
                "  check <file.tax>            verify bytecode + capability manifest + lints"
            );
            eprintln!(
                "  audit <outer.tax> [inner.tax ...] [--hosts h1,h2]  whole-itinerary flow analysis"
            );
            eprintln!("  disasm <file.tax>           compile and summarize");
            eprintln!("  uri <agent-uri>             parse and explain");
            eprintln!("  scan [pages] [bytes]        the dead-link case study, both ways");
            eprintln!(
                "  scenario gen [--seed N] [--hosts H]  emit a deterministic scenario as JSON"
            );
            eprintln!("  send --connect ADDR --to URI <file.tax>  inject the agent into a taxd");
            eprintln!("  stats --connect ADDR        fetch a running taxd's firewall counters");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("taxsh: {message}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run: need a script file")?;
    let source = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // Validate before building a whole system.
    compile_source(&source).map_err(|e| format!("{path}: {e}"))?;

    let hosts: Vec<String> = args.get(1).map_or_else(
        || vec!["alpha".to_owned(), "beta".to_owned()],
        |s| s.split(',').map(str::to_owned).collect(),
    );
    let mut builder = SystemBuilder::new();
    for h in &hosts {
        builder = builder.host(h).map_err(|e| e.to_string())?;
    }
    let mut system = builder.trust_all().build();

    let itinerary: Vec<String> = hosts
        .iter()
        .skip(1)
        .map(|h| format!("tacoma://{h}/vm_script"))
        .collect();
    let spec = AgentSpec::script("taxsh", source).itinerary(itinerary);
    system.launch(&hosts[0], spec).map_err(|e| e.to_string())?;
    system.run_until_quiet();

    for (host, event) in system.events() {
        println!("{host:>12}  {event}");
    }
    Ok(())
}

/// `taxsh check` — the static-analysis front door: verifies the compiled
/// bytecode, prints the capability manifest a firewall would see, and
/// reports lint diagnostics. Exits nonzero when verification fails or any
/// diagnostic fires, so it slots into scripts and CI.
fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("check: need a script file")?;
    let source = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = compile_source(&source).map_err(|e| format!("{path}: {e}"))?;
    let report = tacoma::taxscript::analyze(&program).map_err(|e| format!("{path}: {e}"))?;

    println!(
        "{path}: verified ({} instructions, max stack {})",
        program.instruction_count(),
        report.verified.max_stack()
    );
    print!("{}", report.capabilities);
    for d in &report.diagnostics {
        println!(
            "{}: {}[{}] {}",
            d.location(path),
            d.severity,
            d.code,
            d.message
        );
    }
    if report.diagnostics.is_empty() {
        println!("{path}: no diagnostics");
        Ok(())
    } else {
        Err(format!(
            "{path}: {} diagnostic(s)",
            report.diagnostics.len()
        ))
    }
}

/// `taxsh audit` — the whole-itinerary view: analyzes a wrapper chain
/// (outermost script first), joins the folder flows across all layers and
/// the declared itinerary, and reports the TAX005–TAX008 findings a
/// firewall's admission gate reasons about. Exits nonzero when any
/// finding fires, like `check`.
fn cmd_audit(args: &[String]) -> Result<(), String> {
    let (hosts, files) = take_flag(args, "--hosts");
    if files.is_empty() {
        return Err("audit: need at least one script file (outermost wrapper first)".into());
    }
    let itinerary: Vec<String> = hosts
        .as_deref()
        .map(|s| s.split(',').map(str::to_owned).collect())
        .unwrap_or_default();

    let mut chain = Vec::new();
    for path in &files {
        let source = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let program = compile_source(&source).map_err(|e| format!("{path}: {e}"))?;
        let report = tacoma::taxscript::analyze(&program).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: verified ({} instructions{})",
            program.instruction_count(),
            if report.flow.dynamic_travel() {
                ", dynamic travel"
            } else {
                ""
            }
        );
        chain.push((path.clone(), report));
    }

    let flows: Vec<&analysis::FlowSummary> = chain.iter().map(|(_, r)| &r.flow).collect();
    let graph = analysis::ItineraryGraph::new(&itinerary, &flows);
    println!("itinerary: {graph}");

    let findings = analysis::flow_lints(&flows, &itinerary);
    for d in &findings {
        // A chain-level finding anchors to a site in one layer's flow
        // summary; attribute it to that layer's file so the operator can
        // jump straight there.
        let file = chain
            .iter()
            .find(|(_, r)| anchors_in(&r.flow, d))
            .map_or(files[0].as_str(), |(p, _)| p.as_str());
        println!(
            "{}: {}[{}] {}",
            d.location(file),
            d.severity,
            d.code,
            d.message
        );
    }
    if findings.is_empty() {
        println!("audit: no findings across {} layer(s)", chain.len());
        Ok(())
    } else {
        Err(format!("audit: {} finding(s)", findings.len()))
    }
}

/// Whether `d`'s site appears in `flow`'s recorded ship, folder, or
/// growth-loop sites — i.e. the finding anchors in that chain layer.
fn anchors_in(flow: &analysis::FlowSummary, d: &analysis::Diagnostic) -> bool {
    let hit = |s: &analysis::FlowSite| s.function == d.function && s.offset == d.offset;
    flow.ships.iter().any(|s| hit(&s.site))
        || flow.growth_loops.iter().any(|g| hit(&g.site))
        || flow
            .writes
            .values()
            .chain(flow.reads.values())
            .chain(flow.drains.values())
            .any(hit)
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("disasm: need a script file")?;
    let source = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = compile_source(&source).map_err(|e| format!("{path}: {e}"))?;
    println!("{program}");
    let wire = program.encode();
    println!("binary: {} bytes on the wire", wire.len());
    Ok(())
}

fn cmd_uri(args: &[String]) -> Result<(), String> {
    let text = args.first().ok_or("uri: need a URI")?;
    let uri: AgentUri = text.parse().map_err(|e| format!("{text:?}: {e}"))?;
    println!("input:      {text}");
    println!("canonical:  {uri}");
    println!(
        "scope:      {}",
        if uri.is_local() {
            "local target (§3.2)"
        } else {
            "remote"
        }
    );
    if let Some(host) = uri.host() {
        println!("host:       {host}");
        println!(
            "port:       {}",
            uri.location()
                .map(HostPort::effective_port)
                .unwrap_or_default()
        );
    }
    println!(
        "principal:  {}",
        uri.principal()
            .unwrap_or("(omitted — local system or sender)")
    );
    println!(
        "name:       {}",
        uri.name().unwrap_or("(any — matches by instance)")
    );
    println!(
        "instance:   {}",
        uri.instance()
            .map_or_else(|| "(any — matches by name)".into(), ToString::to_string)
    );
    Ok(())
}

/// Pulls a `--flag value` pair out of `args`, returning the remaining
/// positional arguments untouched.
fn take_flag(args: &[String], flag: &str) -> (Option<String>, Vec<String>) {
    let mut value = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == flag {
            value = it.next().cloned();
        } else {
            rest.push(arg.clone());
        }
    }
    (value, rest)
}

/// Opens a handshaken connection to a `taxd` at `addr`, speaking as
/// `local_host`.
fn connect_to(addr: &str, local_host: &str) -> Result<Connection, String> {
    let config = ConnectConfig {
        local_host: local_host.to_owned(),
        ..ConnectConfig::default()
    };
    let nonce = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(1, |d| d.as_nanos() as u64);
    Connection::establish(addr, nonce | 1, &config).map_err(|e| format!("{addr}: {e}"))
}

/// `taxsh send` — builds the agent-transfer message `go` would emit and
/// ships it to a running `taxd` over TCP, so an operator can inject an
/// agent into a live deployment from outside any host.
fn cmd_send(args: &[String]) -> Result<(), String> {
    let (connect, rest) = take_flag(args, "--connect");
    let (to, rest) = take_flag(&rest, "--to");
    let (from, rest) = take_flag(&rest, "--from");
    let connect = connect.ok_or("send: need --connect ADDR")?;
    let to = to.ok_or("send: need --to URI (e.g. tacoma://alpha/vm_script)")?;
    let from = from.unwrap_or_else(|| "taxsh".to_owned());
    let path = rest.first().ok_or("send: need a script file")?;

    let source = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    compile_source(&source).map_err(|e| format!("{path}: {e}"))?;

    let principal = Principal::new(&from).map_err(|e| e.to_string())?;
    let spec = AgentSpec::script("taxsh", source);
    let wire = spec
        .wire_transfer(&from, &principal, &to)
        .map_err(|e| e.to_string())?;

    let mut conn = connect_to(&connect, &from)?;
    conn.send_payload(&wire)
        .map_err(|e| format!("{connect}: {e}"))?;
    println!(
        "sent {path} to {to} via {} ({} bytes acked)",
        conn.peer_host(),
        wire.len()
    );
    conn.goodbye();
    Ok(())
}

/// `taxsh stats` — asks a running `taxd` for its firewall counter line
/// (the satellite view of [`FirewallStats`], transport gauges absorbed).
///
/// [`FirewallStats`]: tacoma::firewall::FirewallStats
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (connect, _rest) = take_flag(args, "--connect");
    let connect = connect.ok_or("stats: need --connect ADDR")?;
    let mut conn = connect_to(&connect, "taxsh")?;
    let text = conn.query_stats().map_err(|e| format!("{connect}: {e}"))?;
    // The reply's first line is the firewall counter line; a journaling
    // daemon appends a `journal:` section with segment, checkpoint, and
    // replay gauges.
    let mut lines = text.lines();
    if let Some(first) = lines.next() {
        println!("{} {first}", conn.peer_host());
    }
    for section in lines {
        println!("{:>width$} {section}", "", width = conn.peer_host().len());
    }
    conn.goodbye();
    Ok(())
}

/// `taxsh scenario gen` — runs the deterministic hostile-network
/// generator and prints the scenario in its canonical JSON encoding.
/// The same seed and host count always print byte-identical output, so
/// the JSON can be checked into a repo and diffed like any fixture.
fn cmd_scenario(args: &[String]) -> Result<(), String> {
    let Some("gen") = args.first().map(String::as_str) else {
        return Err("scenario: need a subcommand (gen)".into());
    };
    let (seed, rest) = take_flag(&args[1..], "--seed");
    let (hosts, rest) = take_flag(&rest, "--hosts");
    let (name, rest) = take_flag(&rest, "--name");
    if let Some(stray) = rest.first() {
        return Err(format!("scenario gen: unexpected argument {stray:?}"));
    }
    let seed: u64 = seed
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "scenario gen: bad --seed (want an integer)")?
        .unwrap_or(1);
    let hosts: usize = hosts
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "scenario gen: bad --hosts (want an integer)")?
        .unwrap_or(100);
    if hosts == 0 || hosts > tacoma::scenario::MAX_HOSTS {
        return Err(format!(
            "scenario gen: --hosts must be 1..={}",
            tacoma::scenario::MAX_HOSTS
        ));
    }
    let mut spec = tacoma::scenario::ScenarioSpec::new(seed, hosts);
    if let Some(name) = name {
        spec.name = name;
    }
    let scenario = tacoma::scenario::generate(&spec);
    // The canonical encoding is newline-terminated already.
    print!("{}", tacoma::scenario::encode(&scenario));
    Ok(())
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let pages: usize = args
        .first()
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "scan: bad page count")?
        .unwrap_or(300);
    let bytes: u64 = args
        .get(1)
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "scan: bad byte count")?
        .unwrap_or(1_500_000);
    let params = CaseStudyParams {
        pages,
        total_bytes: bytes,
        ..CaseStudyParams::paper()
    };

    println!("scanning {pages} pages / {bytes} bytes, stationary vs mobile ...");
    let stationary = run_stationary(&params);
    let mobile = run_mobile(&params);
    println!(
        "stationary: {} | scan {:?} | {} LAN bytes",
        stationary.report.summary(),
        stationary.scan_time,
        stationary.link_bytes
    );
    println!(
        "mobile:     {} | scan {:?} | {} LAN bytes",
        mobile.report.summary(),
        mobile.scan_time,
        mobile.link_bytes
    );
    println!(
        "local scan {:.1}% faster",
        100.0 * speedup(stationary.scan_time, mobile.scan_time)
    );
    Ok(())
}
