//! Crash-recovery integration: `taxd` processes with a durable journal
//! are killed (via `--crash-after-record` fault injection, equivalent to
//! SIGKILL right after a record's fsync) at each journaled state of an
//! itinerary, restarted on the same journal directory, and checked for
//! effectively-once hop semantics — every hop executes exactly once and
//! no parked mail is lost.
//!
//! One logging caveat shapes the assertions: a display that executed
//! right before a crash is recorded in the in-memory event log but may
//! never reach stdout (events print between scheduler runs). So a
//! crashed process's log can *under*-report executions, never
//! over-report them. The exactly-once claims below therefore combine
//! "the itinerary completed exactly once downstream" with "no display
//! appears more often than in the reference run".

use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// The E6 TRAIL-accumulating hello agent, as in the loopback test.
const HELLO: &str = r#"
    fn main() {
        display("visiting " + host_name());
        bc_append("TRAIL", host_name());
        let next = bc_remove("HOSTS", 0);
        if (next == nil) { display("done"); exit(0); }
        go(next);
    }
"#;

fn taxd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_taxd"))
}

fn free_ports() -> (u16, u16) {
    let a = TcpListener::bind("127.0.0.1:0").unwrap();
    let b = TcpListener::bind("127.0.0.1:0").unwrap();
    (
        a.local_addr().unwrap().port(),
        b.local_addr().unwrap().port(),
    )
}

fn script_file(tag: &str, source: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("taxd_journal_{tag}_{}.tax", std::process::id()));
    fs::write(&path, source).unwrap();
    path
}

/// A fresh journal directory for this test run.
fn journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("taxd_jrnl_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

struct Daemon {
    child: Child,
    reader: BufReader<std::process::ChildStdout>,
    first_line: String,
}

/// Spawns a taxd and blocks until it reports its listening address.
fn spawn_daemon(args: &[String]) -> Daemon {
    let mut child = taxd()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn taxd");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    // A journaling daemon prints its replay summary before the listening
    // line; keep everything read so far as log preamble.
    let mut first_line = String::new();
    loop {
        let start = first_line.len();
        if reader.read_line(&mut first_line).unwrap() == 0 {
            panic!("taxd exited before listening:\n{first_line}");
        }
        if first_line[start..].contains("listening on") {
            break;
        }
    }
    Daemon {
        child,
        reader,
        first_line,
    }
}

impl Daemon {
    /// Waits for a clean idle-exit and returns the full stdout.
    fn finish(mut self) -> String {
        let status = self.child.wait().expect("taxd wait");
        assert!(status.success(), "taxd exited with {status}");
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest).unwrap();
        format!("{}{rest}", self.first_line)
    }

    /// Waits for the injected crash (abort) and returns whatever stdout
    /// made it out before the process died.
    fn crash_finish(mut self) -> String {
        let status = self.child.wait().expect("taxd wait");
        assert!(
            !status.success(),
            "expected a crash-injected abort, got clean exit:\n{}",
            self.first_line
        );
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest).unwrap();
        format!("{}{rest}", self.first_line)
    }
}

/// Every `display "…"` payload in a taxd log, in order.
fn displays(log: &str) -> Vec<String> {
    log.lines()
        .filter_map(|line| line.split("display \"").nth(1))
        .map(|tail| tail.trim_end().trim_end_matches('"').to_owned())
        .collect()
}

/// The stats counter line a taxd prints at exit.
fn stats_field(log: &str, key: &str) -> u64 {
    let line = log
        .lines()
        .find(|l| l.starts_with("taxd: stats "))
        .unwrap_or_else(|| panic!("no stats line in:\n{log}"));
    field_of(line, key)
}

/// The journal replay summary line a journaling taxd prints at boot.
fn replay_field(log: &str, key: &str) -> u64 {
    let line = log
        .lines()
        .find(|l| l.starts_with("taxd: journal replay "))
        .unwrap_or_else(|| panic!("no replay line in:\n{log}"));
    field_of(line, key)
}

fn field_of(line: &str, key: &str) -> u64 {
    let needle = format!("{key}=");
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        .parse()
        .unwrap()
}

/// Common argv for a journaling daemon.
#[allow(clippy::needless_pass_by_value)]
fn daemon_args(
    host: &str,
    listen: &str,
    peer: Option<(&str, &str)>,
    journal: &Path,
    idle_ms: u64,
    extra: Vec<String>,
) -> Vec<String> {
    let mut args = vec![
        "--host".into(),
        host.into(),
        "--listen".into(),
        listen.into(),
        "--journal-dir".into(),
        journal.to_string_lossy().into_owned(),
        "--idle-exit-ms".into(),
        idle_ms.to_string(),
    ];
    if let Some((name, addr)) = peer {
        args.push("--peer".into());
        args.push(format!("{name}={addr}"));
    }
    args.extend(extra);
    args
}

/// Crash the *sender* right after its outbound `hop-begin` fsyncs, before
/// the frame is transmitted. Restarting on the same journal re-ships the
/// preserved frame and the itinerary completes with every hop exactly
/// once.
#[test]
fn sender_crash_after_hop_begin_reships_and_completes_once() {
    let script = script_file("sender_begin", HELLO);
    let alpha_journal = journal_dir("sender_begin_alpha");
    let beta_journal = journal_dir("sender_begin_beta");
    let (alpha_port, beta_port) = free_ports();
    let alpha_addr = format!("127.0.0.1:{alpha_port}");
    let beta_addr = format!("127.0.0.1:{beta_port}");

    let beta = spawn_daemon(&daemon_args(
        "beta",
        &beta_addr,
        Some(("alpha", &alpha_addr)),
        &beta_journal,
        6000,
        vec![],
    ));
    let alpha1 = spawn_daemon(&daemon_args(
        "alpha",
        &alpha_addr,
        Some(("beta", &beta_addr)),
        &alpha_journal,
        4000,
        vec![
            "--launch".into(),
            script.to_string_lossy().into_owned(),
            "--itinerary".into(),
            "beta,alpha".into(),
            "--crash-after-record".into(),
            "hop-begin:1".into(),
        ],
    ));

    let alpha1_log = alpha1.crash_finish();
    // Same journal directory, no --launch: a fresh identical launch would
    // be a *different* agent; recovery must come from the journal alone.
    let alpha2 = spawn_daemon(&daemon_args(
        "alpha",
        &alpha_addr,
        Some(("beta", &beta_addr)),
        &alpha_journal,
        4000,
        vec![],
    ));

    let alpha2_log = alpha2.finish();
    let beta_log = beta.finish();
    let _ = fs::remove_file(&script);

    // The restart found exactly one open outbound hop and re-shipped it.
    assert_eq!(replay_field(&alpha2_log, "resumed-out"), 1, "{alpha2_log}");
    assert_eq!(replay_field(&alpha2_log, "resumed-in"), 0, "{alpha2_log}");

    // The itinerary completed exactly once after the re-ship: beta ran the
    // agent once, the final leg came home to the restarted alpha.
    assert_eq!(displays(&beta_log), ["visiting beta"], "{beta_log}");
    assert_eq!(
        displays(&alpha2_log),
        ["visiting alpha", "done"],
        "{alpha2_log}"
    );
    // The crashed incarnation executed the first visit (its print may be
    // lost to the crash but must never appear twice).
    assert!(displays(&alpha1_log).len() <= 1, "{alpha1_log}");
    assert_eq!(stats_field(&beta_log, "hop-dedup"), 0, "{beta_log}");

    let _ = fs::remove_dir_all(&alpha_journal);
    let _ = fs::remove_dir_all(&beta_journal);
}

/// Crash the *receiver* right after its door-side inbound `hop-begin`
/// fsyncs — the agent is durably accepted but never ran, and the sender
/// never got the ack. Restarting replays the preserved frame and installs
/// the agent; the sender's retry is deduplicated at the door.
#[test]
fn receiver_crash_after_inbound_begin_replays_agent_once_and_dedups_retry() {
    let script = script_file("recv_begin", HELLO);
    let alpha_journal = journal_dir("recv_begin_alpha");
    let beta_journal = journal_dir("recv_begin_beta");
    let (alpha_port, beta_port) = free_ports();
    let alpha_addr = format!("127.0.0.1:{alpha_port}");
    let beta_addr = format!("127.0.0.1:{beta_port}");

    let beta1 = spawn_daemon(&daemon_args(
        "beta",
        &beta_addr,
        Some(("alpha", &alpha_addr)),
        &beta_journal,
        4000,
        vec!["--crash-after-record".into(), "hop-begin:1".into()],
    ));
    let alpha = spawn_daemon(&daemon_args(
        "alpha",
        &alpha_addr,
        Some(("beta", &beta_addr)),
        &alpha_journal,
        4000,
        vec![
            "--launch".into(),
            script.to_string_lossy().into_owned(),
            "--itinerary".into(),
            "beta,alpha".into(),
        ],
    ));

    // Beta aborts before acking; alpha's transport is now inside its
    // retry/backoff budget (~5s). Restart beta on the same journal while
    // the sender is still retrying.
    let beta1_log = beta1.crash_finish();
    let beta2 = spawn_daemon(&daemon_args(
        "beta",
        &beta_addr,
        Some(("alpha", &alpha_addr)),
        &beta_journal,
        3000,
        vec![],
    ));

    let alpha_log = alpha.finish();
    let beta2_log = beta2.finish();
    let _ = fs::remove_file(&script);

    // The restart re-installed the journaled arrival...
    assert_eq!(replay_field(&beta2_log, "resumed-in"), 1, "{beta2_log}");
    // ...and the sender's retry of the same hop was acked-but-suppressed.
    assert!(
        stats_field(&beta2_log, "hop-dedup") >= 1,
        "expected the sender retry to be deduplicated:\n{beta2_log}"
    );

    // Exactly-once, end to end: the full reference display multiset, with
    // the beta visit appearing exactly once across both beta incarnations.
    assert_eq!(displays(&beta1_log), Vec::<String>::new(), "{beta1_log}");
    assert_eq!(displays(&beta2_log), ["visiting beta"], "{beta2_log}");
    assert_eq!(
        displays(&alpha_log),
        ["visiting alpha", "visiting alpha", "done"],
        "{alpha_log}"
    );
    // The transfer was never given up on.
    assert_eq!(stats_field(&alpha_log, "retry-timeouts"), 0, "{alpha_log}");

    let _ = fs::remove_dir_all(&alpha_journal);
    let _ = fs::remove_dir_all(&beta_journal);
}

/// Crash the receiver after the agent already ran and its *next* hop
/// committed. The crashed host's restart must find nothing to resume —
/// the inbound hop is subsumed by its child's journaled begin — and the
/// rest of the itinerary is untouched.
#[test]
fn receiver_crash_after_commit_resumes_nothing() {
    let script = script_file("recv_commit", HELLO);
    let alpha_journal = journal_dir("recv_commit_alpha");
    let beta_journal = journal_dir("recv_commit_beta");
    let (alpha_port, beta_port) = free_ports();
    let alpha_addr = format!("127.0.0.1:{alpha_port}");
    let beta_addr = format!("127.0.0.1:{beta_port}");

    let beta1 = spawn_daemon(&daemon_args(
        "beta",
        &beta_addr,
        Some(("alpha", &alpha_addr)),
        &beta_journal,
        4000,
        // The first hop-committed at beta is the outbound return hop's
        // commit, written right after alpha acks it: the agent has
        // executed here and moved on.
        vec!["--crash-after-record".into(), "hop-committed:1".into()],
    ));
    let alpha = spawn_daemon(&daemon_args(
        "alpha",
        &alpha_addr,
        Some(("beta", &beta_addr)),
        &alpha_journal,
        4000,
        vec![
            "--launch".into(),
            script.to_string_lossy().into_owned(),
            "--itinerary".into(),
            "beta,alpha".into(),
        ],
    ));

    let beta1_log = beta1.crash_finish();
    let beta2 = spawn_daemon(&daemon_args(
        "beta",
        &beta_addr,
        Some(("alpha", &alpha_addr)),
        &beta_journal,
        2000,
        vec![],
    ));

    let alpha_log = alpha.finish();
    let beta2_log = beta2.finish();
    let _ = fs::remove_file(&script);

    // Nothing to resume: the inbound hop was subsumed by the journaled
    // begin of the hop it sent onward, and that hop committed.
    assert!(replay_field(&beta2_log, "records") >= 3, "{beta2_log}");
    assert_eq!(replay_field(&beta2_log, "resumed-in"), 0, "{beta2_log}");
    assert_eq!(replay_field(&beta2_log, "resumed-out"), 0, "{beta2_log}");
    assert_eq!(replay_field(&beta2_log, "reparked"), 0, "{beta2_log}");

    // The agent must not run at beta a second time; downstream the
    // itinerary completed exactly once. (Beta's own "visiting beta" print
    // was lost to the crash — execution is proven by alpha receiving the
    // return hop.)
    assert_eq!(displays(&beta2_log), Vec::<String>::new(), "{beta2_log}");
    assert_eq!(
        displays(&alpha_log),
        ["visiting alpha", "visiting alpha", "done"],
        "{alpha_log}\nbeta1:\n{beta1_log}"
    );

    let _ = fs::remove_dir_all(&alpha_journal);
    let _ = fs::remove_dir_all(&beta_journal);
}

/// A round-trip agent with a per-agent marker baked into the source.
/// Hop keys are content-derived, so three agents on the same itinerary
/// must carry three distinct scripts to count as three distinct hops.
fn marked_hello(tag: &str) -> String {
    format!(
        r#"
    fn main() {{
        display("visiting {tag} " + host_name());
        let next = bc_remove("HOSTS", 0);
        if (next == nil) {{ display("home {tag}"); exit(0); }}
        go(next);
    }}
"#
    )
}

/// Kill the receiver mid-stream while several pipelined hops are in
/// various stages — durably accepted but unexecuted, executed but with
/// the return hop uncommitted, or still unacknowledged on the wire.
/// Three agents are launched back to back on the same itinerary; beta
/// aborts after its third `hop-begin` fsync, which lands while earlier
/// arrivals are still queued and the latest frame is unacked. After the
/// restart every hop must execute exactly once: the journal replays
/// accepted-but-open hops, the sender's retransmits are deduplicated at
/// the door, and all three agents come home exactly once.
#[test]
fn receiver_crash_mid_window_executes_every_hop_exactly_once() {
    let tags = ["one", "two", "three"];
    let scripts: Vec<PathBuf> = tags
        .iter()
        .map(|tag| script_file(&format!("midwin_{tag}"), &marked_hello(tag)))
        .collect();
    let alpha_journal = journal_dir("midwin_alpha");
    let beta_journal = journal_dir("midwin_beta");
    let (alpha_port, beta_port) = free_ports();
    let alpha_addr = format!("127.0.0.1:{alpha_port}");
    let beta_addr = format!("127.0.0.1:{beta_port}");

    let beta1 = spawn_daemon(&daemon_args(
        "beta",
        &beta_addr,
        Some(("alpha", &alpha_addr)),
        &beta_journal,
        6000,
        // The third hop-begin at beta lands mid-stream: depending on how
        // the door thread interleaves with the scheduler it is the third
        // arrival, or an arrival racing an outbound return hop. Either
        // way at least one accepted hop is still open and the newest
        // frame is never acked.
        vec!["--crash-after-record".into(), "hop-begin:3".into()],
    ));
    let mut alpha_extra = Vec::new();
    for script in &scripts {
        alpha_extra.push("--launch".into());
        alpha_extra.push(script.to_string_lossy().into_owned());
    }
    alpha_extra.push("--itinerary".into());
    alpha_extra.push("beta,alpha".into());
    let alpha = spawn_daemon(&daemon_args(
        "alpha",
        &alpha_addr,
        Some(("beta", &beta_addr)),
        &alpha_journal,
        6000,
        alpha_extra,
    ));

    // Beta aborts before acking the newest frame; alpha's transport is
    // retrying inside its budget. Restart beta on the same journal.
    let beta1_log = beta1.crash_finish();
    let beta2 = spawn_daemon(&daemon_args(
        "beta",
        &beta_addr,
        Some(("alpha", &alpha_addr)),
        &beta_journal,
        4000,
        vec![],
    ));

    let alpha_log = alpha.finish();
    let beta2_log = beta2.finish();
    for script in &scripts {
        let _ = fs::remove_file(script);
    }

    // Exactly-once, proven downstream: alpha never crashed, so its log is
    // complete. Every agent visited alpha twice (launch leg and return
    // leg) and came home exactly once — no lost hop, no doubled hop.
    let mut got = displays(&alpha_log);
    got.sort();
    let mut want: Vec<String> = tags
        .iter()
        .flat_map(|tag| {
            [
                format!("visiting {tag} alpha"),
                format!("visiting {tag} alpha"),
                format!("home {tag}"),
            ]
        })
        .collect();
    want.sort();
    assert_eq!(got, want, "{alpha_log}\nbeta1:\n{beta1_log}");
    // No transfer was ever given up on.
    assert_eq!(stats_field(&alpha_log, "retry-timeouts"), 0, "{alpha_log}");

    // The restart found journaled work to resume: at least one accepted
    // inbound hop or uncommitted return hop was open at the crash.
    let resumed = replay_field(&beta2_log, "resumed-in") + replay_field(&beta2_log, "resumed-out");
    assert!(resumed >= 1, "expected open hops at restart:\n{beta2_log}");

    // The agents each ran at beta at most once across both incarnations
    // (a print can be lost to the crash, never duplicated — execution is
    // proven by the completed round trips above).
    let beta2_displays = displays(&beta2_log);
    for tag in tags {
        let marker = format!("visiting {tag} beta");
        let count = displays(&beta1_log)
            .iter()
            .chain(beta2_displays.iter())
            .filter(|d| **d == marker)
            .count();
        assert!(
            count <= 1,
            "{marker} ran {count} times:\nbeta1:\n{beta1_log}\nbeta2:\n{beta2_log}"
        );
    }

    let _ = fs::remove_dir_all(&alpha_journal);
    let _ = fs::remove_dir_all(&beta_journal);
}

/// Crash right after a `mail-parked` record fsyncs (a send to an absent
/// local agent parks). The restart re-parks the message with its deadline
/// recomputed against the fresh scheduler clock — no mail lost, no stale
/// deadline.
#[test]
fn parked_mail_survives_crash_and_is_reparked() {
    let script = script_file(
        "park",
        r#"
        fn main() {
            activate("probe");
            display("sent");
        }
    "#,
    );
    let gamma_journal = journal_dir("park_gamma");
    let (gamma_port, _) = free_ports();
    let gamma_addr = format!("127.0.0.1:{gamma_port}");

    let gamma1 = spawn_daemon(&daemon_args(
        "gamma",
        &gamma_addr,
        None,
        &gamma_journal,
        3000,
        vec![
            "--launch".into(),
            script.to_string_lossy().into_owned(),
            "--crash-after-record".into(),
            "mail-parked:1".into(),
        ],
    ));
    let gamma1_log = gamma1.crash_finish();

    let gamma2 = spawn_daemon(&daemon_args(
        "gamma",
        &gamma_addr,
        None,
        &gamma_journal,
        1500,
        vec![],
    ));
    let gamma2_log = gamma2.finish();
    let _ = fs::remove_file(&script);

    assert_eq!(replay_field(&gamma2_log, "reparked"), 1, "{gamma2_log}");
    assert_eq!(stats_field(&gamma2_log, "jr-reparked"), 1, "{gamma2_log}");
    // The parked message is still live in the journal's exit checkpoint.
    let journal_line = gamma2_log
        .lines()
        .find(|l| l.starts_with("taxd: journal records="))
        .unwrap_or_else(|| panic!("no exit journal line in:\n{gamma2_log}"));
    assert_eq!(field_of(journal_line, "parked"), 1, "{gamma2_log}");
    let _ = gamma1_log;

    let _ = fs::remove_dir_all(&gamma_journal);
}
