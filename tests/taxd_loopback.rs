//! Loopback integration: two real `taxd` OS processes on localhost, an
//! agent hopping between them over TCP, checked against the same script
//! run on the in-process simulated network.

use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::Duration;

use tacoma::core::{AgentSpec, SystemBuilder};

/// The TRAIL-accumulating hello agent (Experiment E6's shape): announce
/// the host, pop the next stop, move or finish.
const HELLO: &str = r#"
    fn main() {
        display("visiting " + host_name());
        bc_append("TRAIL", host_name());
        let next = bc_remove("HOSTS", 0);
        if (next == nil) { display("done"); exit(0); }
        go(next);
    }
"#;

fn taxd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_taxd"))
}

/// Two ports that were free a moment ago.
fn free_ports() -> (u16, u16) {
    let a = TcpListener::bind("127.0.0.1:0").unwrap();
    let b = TcpListener::bind("127.0.0.1:0").unwrap();
    (
        a.local_addr().unwrap().port(),
        b.local_addr().unwrap().port(),
    )
}

fn script_file(tag: &str, source: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("taxd_loopback_{tag}_{}.tax", std::process::id()));
    fs::write(&path, source).unwrap();
    path
}

struct Daemon {
    child: Child,
    reader: BufReader<std::process::ChildStdout>,
    first_line: String,
}

/// Spawns a taxd and blocks until it reports its listening address.
fn spawn_daemon(args: &[String]) -> Daemon {
    let mut child = taxd()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn taxd");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut first_line = String::new();
    reader.read_line(&mut first_line).unwrap();
    assert!(
        first_line.contains("listening on"),
        "unexpected first line: {first_line:?}"
    );
    Daemon {
        child,
        reader,
        first_line,
    }
}

impl Daemon {
    /// Waits for idle-exit and returns the full stdout.
    fn finish(mut self) -> String {
        let status = self.child.wait().expect("taxd wait");
        assert!(status.success(), "taxd exited with {status}");
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest).unwrap();
        format!("{}{rest}", self.first_line)
    }
}

/// Every `display "…"` payload in a taxd log, in order.
fn displays(log: &str) -> Vec<String> {
    log.lines()
        .filter_map(|line| line.split("display \"").nth(1))
        .map(|tail| tail.trim_end().trim_end_matches('"').to_owned())
        .collect()
}

/// The stats counter line a taxd prints at exit.
fn stats_field(log: &str, key: &str) -> u64 {
    let line = log
        .lines()
        .find(|l| l.starts_with("taxd: stats "))
        .unwrap_or_else(|| panic!("no stats line in:\n{log}"));
    let needle = format!("{key}=");
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        .parse()
        .unwrap()
}

/// The tentpole acceptance: the E6 hello itinerary crosses two `taxd`
/// processes over real TCP and produces the same agent output as the
/// in-process simulated network.
#[test]
fn e6_hello_itinerary_across_two_processes_matches_simnet() {
    let script = script_file("e6", HELLO);
    let (alpha_port, beta_port) = free_ports();
    let alpha_addr = format!("127.0.0.1:{alpha_port}");
    let beta_addr = format!("127.0.0.1:{beta_port}");

    let beta = spawn_daemon(&[
        "--host".into(),
        "beta".into(),
        "--listen".into(),
        beta_addr.clone(),
        "--peer".into(),
        format!("alpha={alpha_addr}"),
        "--idle-exit-ms".into(),
        "2000".into(),
    ]);
    let alpha = spawn_daemon(&[
        "--host".into(),
        "alpha".into(),
        "--listen".into(),
        alpha_addr,
        "--peer".into(),
        format!("beta={beta_addr}"),
        "--launch".into(),
        script.to_string_lossy().into_owned(),
        "--itinerary".into(),
        "beta,alpha".into(),
        "--idle-exit-ms".into(),
        "2000".into(),
    ]);

    let alpha_log = alpha.finish();
    let beta_log = beta.finish();
    let _ = fs::remove_file(&script);

    // Reference: the identical script and itinerary on the simnet bus.
    let mut reference = SystemBuilder::new()
        .host("alpha")
        .unwrap()
        .host("beta")
        .unwrap()
        .build();
    reference
        .launch(
            "alpha",
            AgentSpec::script("taxd", HELLO).itinerary([
                "tacoma://beta/vm_script".to_owned(),
                "tacoma://alpha/vm_script".to_owned(),
            ]),
        )
        .unwrap();
    reference.run_until_quiet();
    let expected = reference.agent_outputs();
    assert_eq!(
        expected,
        ["visiting alpha", "visiting beta", "visiting alpha", "done"],
        "reference run surprised us"
    );

    // The TCP run's combined displays are the same multiset; per-process
    // ordering is preserved.
    assert_eq!(
        displays(&alpha_log),
        ["visiting alpha", "visiting alpha", "done"],
        "alpha log:\n{alpha_log}"
    );
    assert_eq!(
        displays(&beta_log),
        ["visiting beta"],
        "beta log:\n{beta_log}"
    );
    let mut combined = displays(&alpha_log);
    combined.extend(displays(&beta_log));
    combined.sort();
    let mut expected_sorted = expected;
    expected_sorted.sort();
    assert_eq!(combined, expected_sorted);

    // Wire accounting: each side shipped and received at least one frame.
    for log in [&alpha_log, &beta_log] {
        assert!(stats_field(log, "tx-frames") >= 1, "{log}");
        assert!(stats_field(log, "rx-frames") >= 1, "{log}");
        assert_eq!(stats_field(log, "retry-timeouts"), 0, "{log}");
    }
}

/// Starting the destination daemon *after* the agent departs exercises
/// the retry/backoff loop: the transfer survives on a later attempt and
/// the reconnect counter shows the recovery.
#[test]
fn late_starting_peer_is_reached_via_backoff() {
    let script = script_file(
        "late",
        r#"
        fn main() {
            let next = bc_remove("HOSTS", 0);
            if (next == nil) { display("landed on " + host_name()); exit(0); }
            go(next);
        }
    "#,
    );
    let (alpha_port, beta_port) = free_ports();
    let beta_addr = format!("127.0.0.1:{beta_port}");

    let alpha = spawn_daemon(&[
        "--host".into(),
        "alpha".into(),
        "--listen".into(),
        format!("127.0.0.1:{alpha_port}"),
        "--peer".into(),
        format!("beta={beta_addr}"),
        "--launch".into(),
        script.to_string_lossy().into_owned(),
        "--itinerary".into(),
        "beta".into(),
        "--idle-exit-ms".into(),
        "2500".into(),
    ]);

    // Let alpha burn a few backoff attempts against the closed port.
    thread::sleep(Duration::from_millis(700));
    let beta = spawn_daemon(&[
        "--host".into(),
        "beta".into(),
        "--listen".into(),
        beta_addr,
        "--idle-exit-ms".into(),
        "2500".into(),
    ]);

    let alpha_log = alpha.finish();
    let beta_log = beta.finish();
    let _ = fs::remove_file(&script);

    assert_eq!(
        displays(&beta_log),
        ["landed on beta"],
        "beta log:\n{beta_log}\nalpha log:\n{alpha_log}"
    );
    assert_eq!(stats_field(&alpha_log, "tx-frames"), 1, "{alpha_log}");
    assert!(
        stats_field(&alpha_log, "reconnects") >= 1,
        "expected retries against the closed port:\n{alpha_log}"
    );
    assert!(
        !alpha_log.contains("unreachable"),
        "the transfer must not be given up on:\n{alpha_log}"
    );
}
