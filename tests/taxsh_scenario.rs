//! `taxsh scenario gen` integration: the printed JSON must round-trip
//! through the decoder byte-identically and be stable across runs.

use std::process::Command;

fn taxsh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_taxsh"))
}

fn gen(args: &[&str]) -> String {
    let out = taxsh().args(args).output().expect("spawn taxsh");
    assert!(
        out.status.success(),
        "taxsh {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn scenario_gen_round_trips_exactly() {
    let stdout = gen(&["scenario", "gen", "--seed", "7", "--hosts", "16"]);
    let scenario = tacoma::scenario::decode(&stdout).expect("decode taxsh output");
    assert_eq!(scenario.seed, 7);
    assert_eq!(scenario.hosts.len(), 16);

    // Canonical encoding: re-encoding the decoded value reproduces the
    // printed bytes exactly.
    let reencoded = tacoma::scenario::encode(&scenario);
    assert_eq!(stdout, reencoded);
}

#[test]
fn scenario_gen_is_deterministic_across_runs() {
    let a = gen(&["scenario", "gen", "--seed", "42", "--hosts", "24"]);
    let b = gen(&["scenario", "gen", "--seed", "42", "--hosts", "24"]);
    assert_eq!(a, b, "same seed must print byte-identical scenarios");

    let other = gen(&["scenario", "gen", "--seed", "43", "--hosts", "24"]);
    assert_ne!(a, other, "different seeds must diverge");
}

#[test]
fn scenario_gen_rejects_bad_input() {
    let out = taxsh()
        .args(["scenario", "gen", "--hosts", "0"])
        .output()
        .expect("spawn taxsh");
    assert!(!out.status.success(), "--hosts 0 must fail");

    let out = taxsh()
        .args(["scenario", "frobnicate"])
        .output()
        .expect("spawn taxsh");
    assert!(!out.status.success(), "unknown subcommand must fail");
}

#[test]
fn scenario_gen_honors_name_flag() {
    let stdout = gen(&[
        "scenario", "gen", "--seed", "3", "--hosts", "8", "--name", "smoke",
    ]);
    let scenario = tacoma::scenario::decode(&stdout).expect("decode");
    assert_eq!(scenario.name, "smoke");
}
