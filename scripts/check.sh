#!/usr/bin/env sh
# The full local gate: formatting, lints, tests. CI runs exactly this.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --all-targets --all-features -- -D warnings

if command -v cargo-deny >/dev/null 2>&1; then
    echo "==> cargo deny (advisories, bans)"
    cargo deny check advisories bans
else
    echo "==> cargo deny: not installed, skipping (cargo install cargo-deny)"
fi

echo "==> cargo test"
cargo test -q

echo "==> crash recovery (journal kill tests, release)"
cargo test --release --test taxd_journal -q

echo "==> execution-tier differential (serial + parallel harness, release)"
cargo test --release -p tacoma-taxscript --test prop_differential -q -- --test-threads 1
cargo test --release -p tacoma-taxscript --test prop_differential -q -- --test-threads 4

echo "ok: all checks passed"
