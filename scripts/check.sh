#!/usr/bin/env sh
# The full local gate: formatting, lints, tests. CI runs exactly this.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q

echo "ok: all checks passed"
