#!/usr/bin/env sh
# Regenerates BENCH_4.json — the parallel-fleet scheduler benchmark.
#
#   scripts/bench.sh           full run, writes BENCH_4.json at the repo root
#   scripts/bench.sh --smoke   small workload, prints JSON, writes nothing
#                              (the CI smoke mode)
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--smoke" ]; then
    echo "==> bench (smoke): exp_e9_parallel_fleet"
    cargo run -q --release -p tacoma-bench --bin exp_e9_parallel_fleet -- --json --smoke
else
    echo "==> bench: exp_e9_parallel_fleet -> BENCH_4.json"
    cargo run -q --release -p tacoma-bench --bin exp_e9_parallel_fleet -- --json \
        > BENCH_4.json
    cat BENCH_4.json
fi
