#!/usr/bin/env sh
# Regenerates BENCH_6.json — the parallel-fleet scheduler benchmark plus
# the briefcase-migration (CoW vs legacy) and firewall-admission
# (cold vs warm verified-script cache) comparisons.
#
#   scripts/bench.sh           full run, writes BENCH_6.json at the repo root
#   scripts/bench.sh --smoke   small workload, prints JSON, writes nothing,
#                              and enforces the perf gates via --check
#                              (the CI smoke mode)
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--smoke" ]; then
    echo "==> bench (smoke): exp_e9_parallel_fleet --check"
    cargo run -q --release -p tacoma-bench --bin exp_e9_parallel_fleet -- --json --smoke --check
else
    echo "==> bench: exp_e9_parallel_fleet -> BENCH_6.json"
    cargo run -q --release -p tacoma-bench --bin exp_e9_parallel_fleet -- --json \
        > BENCH_6.json
    cat BENCH_6.json
fi
