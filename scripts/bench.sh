#!/usr/bin/env sh
# Regenerates the checked-in benchmark JSON — BENCH_6.json (parallel-fleet
# scheduler, briefcase CoW migration, firewall admission cache),
# BENCH_7.json (durable-journal park/ship pipeline), BENCH_8.json
# (hostile-network scenarios: track determinism, itinerary planner,
# local-vs-remote tier gap), BENCH_9.json (sharded reactor
# transport: pipelined acks vs stop-and-wait, bounded backpressure,
# peer scale), and BENCH_10.json (TaxScript compile tier: fused
# dispatch vs the legacy interpreter, cold vs warm launches).
#
#   scripts/bench.sh           full run, writes BENCH_6.json through
#                              BENCH_10.json at the repo root
#   scripts/bench.sh --smoke   small workload, prints JSON, writes nothing,
#                              and enforces the perf gates via --check
#                              (the CI smoke mode)
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--smoke" ]; then
    echo "==> bench (smoke): exp_e9_parallel_fleet --check"
    cargo run -q --release -p tacoma-bench --bin exp_e9_parallel_fleet -- --json --smoke --check
    echo "==> bench (smoke): exp_e10_durable_journal --check"
    cargo run -q --release -p tacoma-bench --bin exp_e10_durable_journal -- --json --smoke --check
    echo "==> bench (smoke): exp_e11_scenario_matrix --check"
    cargo run -q --release -p tacoma-bench --bin exp_e11_scenario_matrix -- --json --smoke --check
    echo "==> bench (smoke): exp_e12_reactor_transport --check (256-peer variant)"
    cargo run -q --release -p tacoma-bench --bin exp_e12_reactor_transport -- --json --smoke --check
    echo "==> bench (smoke): exp_e13_vm_dispatch --check"
    cargo run -q --release -p tacoma-bench --bin exp_e13_vm_dispatch -- --json --smoke --check
else
    echo "==> bench: exp_e9_parallel_fleet -> BENCH_6.json"
    cargo run -q --release -p tacoma-bench --bin exp_e9_parallel_fleet -- --json \
        > BENCH_6.json
    cat BENCH_6.json
    echo "==> bench: exp_e10_durable_journal -> BENCH_7.json"
    cargo run -q --release -p tacoma-bench --bin exp_e10_durable_journal -- --json \
        > BENCH_7.json
    cat BENCH_7.json
    echo "==> bench: exp_e11_scenario_matrix -> BENCH_8.json"
    cargo run -q --release -p tacoma-bench --bin exp_e11_scenario_matrix -- --json \
        > BENCH_8.json
    cat BENCH_8.json
    echo "==> bench: exp_e12_reactor_transport -> BENCH_9.json"
    cargo run -q --release -p tacoma-bench --bin exp_e12_reactor_transport -- --json \
        > BENCH_9.json
    cat BENCH_9.json
    echo "==> bench: exp_e13_vm_dispatch -> BENCH_10.json"
    cargo run -q --release -p tacoma-bench --bin exp_e13_vm_dispatch -- --json \
        > BENCH_10.json
    cat BENCH_10.json
fi
