#!/usr/bin/env sh
# Regenerates BENCH_5.json — the parallel-fleet scheduler benchmark plus
# the briefcase-migration (CoW vs legacy) comparison.
#
#   scripts/bench.sh           full run, writes BENCH_5.json at the repo root
#   scripts/bench.sh --smoke   small workload, prints JSON, writes nothing,
#                              and enforces the perf gates via --check
#                              (the CI smoke mode)
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--smoke" ]; then
    echo "==> bench (smoke): exp_e9_parallel_fleet --check"
    cargo run -q --release -p tacoma-bench --bin exp_e9_parallel_fleet -- --json --smoke --check
else
    echo "==> bench: exp_e9_parallel_fleet -> BENCH_5.json"
    cargo run -q --release -p tacoma-bench --bin exp_e9_parallel_fleet -- --json \
        > BENCH_5.json
    cat BENCH_5.json
fi
