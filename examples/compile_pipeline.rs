//! Figure 3: an agent carrying *source code* arrives at `vm_c`; `ag_cc`
//! extracts it, `ag_exec` runs the compiler, the binary goes back into
//! the briefcase, and `vm_bin` executes it. The numbered steps are
//! printed from the VM's execution trace.
//!
//! ```sh
//! cargo run --example compile_pipeline
//! ```

use tacoma::core::{AgentSpec, EventKind, SystemBuilder, TaxError};

fn main() -> Result<(), TaxError> {
    let mut system = SystemBuilder::new()
        .host("cl2")?
        .host("cl3")?
        .trust_all()
        .build();

    // Source in the briefcase, targeted at vm_c. After compiling on cl2
    // the agent hops to cl3 — carrying the *binary* now, so vm_bin runs
    // it there without recompiling.
    let agent = AgentSpec::script(
        "csource",
        r#"
        fn main() {
            display("running on " + host_name());
            if (host_name() == "cl2") {
                go("tacoma://cl3/vm_bin");
            }
            exit(0);
        }
        "#,
    )
    .on_vm("vm_c");

    system.launch("cl2", agent)?;
    system.run_until_quiet();

    for host in ["cl2", "cl3"] {
        println!("--- execution trace on {host} ---");
        for event in system.host(host).unwrap().events() {
            if let EventKind::ExecutionTrace(lines) = &event.kind {
                for line in lines {
                    println!("  {line}");
                }
            }
        }
    }
    println!("\nagent output: {:?}", system.agent_outputs());
    Ok(())
}
