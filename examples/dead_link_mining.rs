//! The §5 case study, end to end: mining for dead links with a mobilized
//! Webbot (Figure 5: `rwWebbot(mwWebbot(Webbot))`), compared against the
//! stationary robot.
//!
//! ```sh
//! cargo run --release --example dead_link_mining
//! ```

use tacoma::webbot::experiment::{run_mobile, run_stationary, speedup, CaseStudyParams};

fn main() {
    // A mid-size site so the example runs in a couple of seconds; the
    // full paper-scale run is `cargo run --release -p tacoma-bench --bin
    // exp_e1_webbot_local_vs_remote`.
    let params = CaseStudyParams {
        pages: 300,
        total_bytes: 1_500_000,
        ..CaseStudyParams::paper()
    }
    .with_external_checks();

    println!("scanning a {}-page site two ways...\n", params.pages);
    let stationary = run_stationary(&params);
    let mobile = run_mobile(&params);

    println!("stationary (robot at the client, pages over the LAN):");
    println!("  {}", stationary.report.summary());
    println!(
        "  scan {:?}, {} bytes over the link",
        stationary.scan_time, stationary.link_bytes
    );

    println!("\nmobile (mwWebbot carries the robot to the server):");
    println!("  {}", mobile.report.summary());
    println!(
        "  scan {:?}, {} bytes over the link",
        mobile.scan_time, mobile.link_bytes
    );

    println!(
        "\nthe local scan is {:.1}% faster and moves {:.1}x fewer bytes.",
        100.0 * speedup(stationary.scan_time, mobile.scan_time),
        stationary.link_bytes as f64 / mobile.link_bytes.max(1) as f64,
    );

    println!("\ndead links found (first five):");
    for issue in mobile.report.invalid.iter().take(5) {
        println!("  [{}] {} -> {}", issue.status, issue.referrer, issue.url);
    }
    assert!(
        stationary.report.invalid.len() >= mobile.report.invalid.len().min(1),
        "both robots find dead links"
    );
}
