//! Figure 4, line for line: the hello-world itinerary agent, including
//! the `if (go(next))` failure branch when a host is down.
//!
//! ```sh
//! cargo run --example hello_itinerary
//! ```

use tacoma::core::{AgentSpec, SystemBuilder, TaxError};

fn main() -> Result<(), TaxError> {
    let mut system = SystemBuilder::new()
        .host("tromso")?
        .host("oslo")?
        .host("bergen")?
        .host("trondheim")?
        .trust_all()
        .build();

    // bergen is down; the agent must take the failure branch there.
    system.network().with_topology(|t| {
        t.crash_host(&"bergen".parse().expect("valid host id"));
    });

    // The paper's Figure 4 agent. In the original C:
    //
    //   while (1) {
    //       displaySomehow("Hello world");
    //       e = fRemove(bcIndex(bc, "HOSTS"), 1);
    //       if (!e) exit(0);
    //       next = eData(e);
    //       if (go(next, bc)) displaySomehow("Unable to reach %s", next);
    //   }
    let agent = AgentSpec::script(
        "hello",
        r#"
        fn main() {
            while (1) {
                display("Hello world");
                let e = bc_remove("HOSTS", 0);
                if (e == nil) { exit(0); }
                if (go(e)) { display("Unable to reach " + e); }
            }
        }
        "#,
    )
    .itinerary([
        "tacoma://oslo/vm_script",
        "tacoma://bergen/vm_script",
        "tacoma://trondheim/vm_script",
    ]);

    system.launch("tromso", agent)?;
    system.run_until_quiet();

    for (host, event) in system.events() {
        println!("{host:>10}  {event}");
    }
    Ok(())
}
