//! Quickstart: a two-host TAX system, one mobile agent, one service call.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tacoma::core::{AgentSpec, SystemBuilder, TaxError};

fn main() -> Result<(), TaxError> {
    // 1. A deployment: two hosts on the default 100 Mbit LAN, trusting
    //    each other's system principals (one administrative domain).
    let mut system = SystemBuilder::new()
        .host("alpha")?
        .host("beta")?
        .trust_all()
        .build();

    // 2. An agent in TaxScript. It greets, asks the local compiler
    //    service for a build, hops to beta, and greets again — all state
    //    rides in its briefcase.
    let agent = AgentSpec::script(
        "quickstart",
        r#"
        fn main() {
            display("hello from " + host_name());
            if (host_name() == "beta") {
                display("journey complete, visited " + str(bc_len("TRAIL")) + " hosts");
                exit(0);
            }
            bc_append("TRAIL", host_name());

            // Service agents answer briefcase RPC: compile a program.
            bc_set("CMD", "compile");
            bc_set("SOURCE", "fn main() { exit(7); }");
            if (meet("ag_cc")) {
                display("ag_cc compiled " + bc_get("INSTR-COUNT", 0) + " instructions");
            }

            // And move: the briefcase travels, execution restarts at beta.
            bc_append("TRAIL", "moving");
            go("tacoma://beta/vm_script");
        }
        "#,
    );

    // 3. Launch and run the deterministic scheduler until quiet.
    system.launch("alpha", agent)?;
    system.run_until_quiet();

    // 4. Everything agents displayed, in virtual-time order.
    println!("agent output:");
    for line in system.agent_outputs() {
        println!("  {line}");
    }

    // 5. The firewalls mediated all of it (Figure 1).
    for host in ["alpha", "beta"] {
        let stats = system.host(host).unwrap().with_firewall(|fw| fw.stats());
        println!("{host} firewall: {stats}");
    }
    Ok(())
}
