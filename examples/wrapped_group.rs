//! §4's wrapper compositions: a group-communication wrapper providing
//! total (atomic) multicast order, a monitoring wrapper, and a
//! location-transparency wrapper — stacked around agents that know
//! nothing about any of it.
//!
//! ```sh
//! cargo run --example wrapped_group
//! ```

use std::sync::Arc;

use tacoma::core::wrappers::AgLocator;
use tacoma::core::{folders, AgentSpec, Briefcase, Principal, SystemBuilder, TaxError};

fn main() -> Result<(), TaxError> {
    let mut system = SystemBuilder::new()
        .host("h1")?
        .host("h2")?
        .host("h3")?
        .trust_all()
        .build();
    system
        .host("h1")
        .unwrap()
        .add_service(Arc::new(AgLocator::new()));

    // A publisher (also the group's sequencer) multicasts three updates;
    // two subscribers each deliver all three in the same total order.
    let members = "pub@h1,sub1@h2,sub2@h3";
    let publisher = AgentSpec::script(
        "pub",
        r#"
        fn main() {
            let i = 1;
            while (i <= 3) {
                bc_set("BODY", "update " + str(i));
                activate("group");
                i = i + 1;
            }
            exit(0);
        }
        "#,
    )
    .wrap(format!("group:total:{members}"))
    .wrap("monitor:tacoma://h1/ag_log");

    let subscriber = |name: &str, host: &str| {
        AgentSpec::script(
            name,
            format!(
                r#"
                fn main() {{
                    let n = 0;
                    while (n < 3) {{
                        bc_clear("BODY");
                        if (await_bc(3000)) {{
                            display("{host} delivers " + bc_get("BODY", 0));
                            n = n + 1;
                        }} else {{
                            display("{host} timed out");
                            exit(1);
                        }}
                    }}
                    exit(0);
                }}
                "#
            ),
        )
        .wrap(format!("group:total:{members}"))
    };

    system.launch("h1", publisher)?;
    system.launch("h2", subscriber("sub1", "h2"))?;
    system.launch("h3", subscriber("sub2", "h3"))?;

    // A fourth agent roams the hosts under a location wrapper; the home
    // locator always knows where it is.
    let nomad = AgentSpec::script(
        "nomad",
        r#"
        fn main() {
            let next = bc_remove("HOSTS", 0);
            if (next == nil) { exit(0); }
            go(next);
        }
        "#,
    )
    .itinerary(["tacoma://h2/vm_script", "tacoma://h3/vm_script"])
    .wrap("location:tacoma://h1/ag_locator");
    system.launch("h1", nomad)?;

    system.run_until_quiet();

    println!("total-order multicast (every subscriber sees the same sequence):");
    for line in system.agent_outputs() {
        println!("  {line}");
    }

    let principal = Principal::local_system("h1");
    let mut lookup = Briefcase::new();
    lookup.set_single(folders::COMMAND, "lookup");
    lookup.append(folders::ARGS, "nomad");
    let reply = system.call_service("h1", "ag_locator", &principal, lookup)?;
    println!(
        "\nlocator on h1: nomad -> {}",
        reply.single_str("URI").unwrap_or("(unknown)")
    );
    Ok(())
}
