//! The §4 data-mining example: an itinerant agent filters records at
//! their source and carries home only the reduced set, versus a client
//! pulling everything.
//!
//! ```sh
//! cargo run --release --example data_mining_itinerary
//! ```

use tacoma_bench::mining::{run_client_pull, run_mobile_agent, MiningParams};

fn main() {
    for selectivity in [0.02, 0.20, 0.80] {
        let params = MiningParams {
            selectivity,
            ..MiningParams::default()
        };
        let pull = run_client_pull(&params);
        let agent = run_mobile_agent(&params);
        assert_eq!(pull.matches, agent.matches, "same answer either way");
        println!(
            "selectivity {:>3.0}%: {} matches | pull moved {:>8} B in {:>8.0?} | agent moved {:>8} B in {:>8.0?} | winner: {}",
            selectivity * 100.0,
            pull.matches,
            pull.network_bytes,
            pull.elapsed,
            agent.network_bytes,
            agent.elapsed,
            if agent.network_bytes < pull.network_bytes { "agent" } else { "pull" },
        );
    }
    println!("\nthe agent wins exactly when the mining condenses the data — the paper's argument.");
}
