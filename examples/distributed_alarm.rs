//! A StormCast-flavoured distributed alarm — one of the application
//! domains the TACOMA project used agents for ("data mining, distributed
//! multi-media processing, software management, and distributed alarms").
//!
//! Sensor agents on weather-station hosts check their local readings
//! (via each station's `ag_fs`); any reading over threshold raises a
//! sealed alarm to the duty agent at the operations host. The seal
//! wrapper drops a forged alarm injected by an unsealed host.
//!
//! ```sh
//! cargo run --example distributed_alarm
//! ```

use tacoma::core::{AgentSpec, Principal, SystemBuilder, TaxError};

fn main() -> Result<(), TaxError> {
    let mut system = SystemBuilder::new()
        .host("ops")?
        .host("station1")?
        .host("station2")?
        .host("intruder")?
        .trust_all()
        .build();

    // Seed each station's virtual file system with a wind reading.
    let seed = |sys: &mut tacoma::core::TaxSystem, host: &str, value: &str| {
        let principal = Principal::local_system(host);
        let mut write = tacoma::core::Briefcase::new();
        write.set_single("CMD", "write");
        write.append("ARGS", "/sensors/wind.txt");
        write.set_single("DATA", value.as_bytes().to_vec());
        sys.call_service(host, "ag_fs", &principal, write)
            .expect("seed reading");
    };
    seed(&mut system, "station1", "17");
    seed(&mut system, "station2", "41"); // storm!

    let key = "seal:57ac0a57";

    // One itinerant inspector visits every station, reads the local
    // sensor file, and raises an alarm when over threshold.
    let inspector = AgentSpec::script(
        "inspector",
        r#"
        fn main() {
            if (host_name() != "ops") {
                bc_set("CMD", "read");
                bc_set("ARGS", "/sensors/wind.txt");
                if (meet("ag_fs")) {
                    let wind = int(bc_get("DATA", 0));
                    display(host_name() + " wind " + str(wind) + " m/s");
                    if (wind != nil && wind > 25) {
                        bc_clear("CMD");
                        bc_clear("ARGS");
                        bc_set("ALARM", "storm at " + host_name() + ": " + str(wind) + " m/s");
                        activate("tacoma://ops/duty");
                    }
                }
                bc_clear("CMD");
                bc_clear("ARGS");
                bc_clear("DATA");
                bc_clear("STATUS");
            }
            let next = bc_remove("HOSTS", 0);
            if (next == nil) { exit(0); }
            go(next);
        }
        "#,
    )
    .itinerary(["tacoma://station1/vm_script", "tacoma://station2/vm_script"])
    .wrap(key);

    // A forged alarm from a host without the seal key.
    let intruder = AgentSpec::script(
        "intruder",
        r#"
        fn main() {
            bc_set("ALARM", "FORGED: evacuate immediately");
            activate("tacoma://ops/duty");
            exit(0);
        }
        "#,
    );

    // The duty agent at ops: accepts sealed alarms only.
    let duty = AgentSpec::script(
        "duty",
        r#"
        fn main() {
            if (await_bc(5000)) {
                display("ALARM RECEIVED: " + bc_get("ALARM", 0));
            } else {
                display("shift ended, no (valid) alarms");
            }
            exit(0);
        }
        "#,
    )
    .wrap(key);

    system.launch("intruder", intruder)?; // fires first, must be dropped
    system.launch("ops", inspector)?;
    system.run_until_quiet();
    system.launch("ops", duty)?;
    system.run_until_quiet();

    for line in system.agent_outputs() {
        println!("{line}");
    }
    let out = system.agent_outputs();
    assert!(out
        .iter()
        .any(|l| l.contains("ALARM RECEIVED: storm at station2")));
    assert!(
        !out.iter().any(|l| l.contains("FORGED")),
        "the seal must drop the forgery"
    );
    Ok(())
}
