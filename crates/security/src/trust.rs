use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{Principal, PublicKey, SecurityError, Signature};

/// A host's trust store: the verification keys of the principals it
/// accepts signed agent cores from.
///
/// The firewall consults this for "first level authentication of the
/// origin of the agent" (§3.2), and `vm_bin` consults it before executing
/// a binary "signed by a trusted principal" (§3.3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrustStore {
    keys: HashMap<Principal, PublicKey>,
}

impl TrustStore {
    /// An empty store trusting no one.
    pub fn new() -> Self {
        TrustStore::default()
    }

    /// Installs a principal's verification key, trusting it. Replaces any
    /// previous key for the same principal.
    pub fn trust(&mut self, key: PublicKey) -> &mut Self {
        self.keys.insert(key.principal().clone(), key);
        self
    }

    /// Revokes trust in a principal.
    pub fn revoke(&mut self, principal: &Principal) -> bool {
        self.keys.remove(principal).is_some()
    }

    /// Whether the principal is trusted at all.
    pub fn is_trusted(&self, principal: &Principal) -> bool {
        self.keys.contains_key(principal)
    }

    /// Number of trusted principals.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store trusts no one.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Verifies that `signature` over `message` was produced by
    /// `principal`.
    ///
    /// # Errors
    ///
    /// * [`SecurityError::UnknownPrincipal`] if the principal has no key
    ///   here (untrusted).
    /// * [`SecurityError::BadSignature`] if the signature does not verify.
    pub fn verify(
        &self,
        principal: &Principal,
        message: &[u8],
        signature: &Signature,
    ) -> Result<(), SecurityError> {
        let key = self
            .keys
            .get(principal)
            .ok_or_else(|| SecurityError::UnknownPrincipal {
                name: principal.to_string(),
            })?;
        if key.verify(message, signature) {
            Ok(())
        } else {
            Err(SecurityError::BadSignature {
                principal: principal.to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keyring;

    fn setup() -> (Keyring, TrustStore) {
        let k = Keyring::generate(&Principal::new("alice@h1").unwrap(), 1);
        let mut store = TrustStore::new();
        store.trust(k.public());
        (k, store)
    }

    #[test]
    fn trusted_signature_verifies() {
        let (k, store) = setup();
        let sig = k.sign(b"core");
        assert!(store.verify(k.principal(), b"core", &sig).is_ok());
    }

    #[test]
    fn untrusted_principal_is_unknown() {
        let (_, store) = setup();
        let mallory = Keyring::generate(&Principal::new("mallory").unwrap(), 2);
        let sig = mallory.sign(b"core");
        assert!(matches!(
            store.verify(mallory.principal(), b"core", &sig),
            Err(SecurityError::UnknownPrincipal { .. })
        ));
    }

    #[test]
    fn forged_signature_detected() {
        let (k, store) = setup();
        let mallory = Keyring::generate(&Principal::new("alice@h1").unwrap(), 99);
        // Mallory generated keys claiming alice's name, but the store holds
        // the real key.
        let sig = mallory.sign(b"core");
        assert!(matches!(
            store.verify(k.principal(), b"core", &sig),
            Err(SecurityError::BadSignature { .. })
        ));
    }

    #[test]
    fn revoke_removes_trust() {
        let (k, mut store) = setup();
        assert!(store.revoke(k.principal()));
        assert!(!store.is_trusted(k.principal()));
        assert!(!store.revoke(k.principal()), "second revoke is a no-op");
        assert!(store.is_empty());
    }

    #[test]
    fn rekey_replaces() {
        let (k, mut store) = setup();
        let new = Keyring::generate(k.principal(), 500);
        store.trust(new.public());
        assert_eq!(store.len(), 1);
        assert!(store.verify(k.principal(), b"m", &new.sign(b"m")).is_ok());
        assert!(store.verify(k.principal(), b"m", &k.sign(b"m")).is_err());
    }
}
