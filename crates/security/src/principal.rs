use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SecurityError;

/// A principal: the identity on whose behalf an agent acts, e.g.
/// `tacoma@cl2.cs.uit.no` or a bare project name like `tacomaproject`
/// (Figure 2's examples).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Principal(String);

impl Principal {
    /// Validates and creates a principal name.
    ///
    /// # Errors
    ///
    /// [`SecurityError::BadPrincipal`] unless the name is non-empty
    /// `[A-Za-z0-9_.@-]`.
    pub fn new(name: impl Into<String>) -> Result<Self, SecurityError> {
        let name = name.into();
        let valid = !name.is_empty()
            && name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'@' | b'-'));
        if valid {
            Ok(Principal(name))
        } else {
            Err(SecurityError::BadPrincipal { name })
        }
    }

    /// The conventional principal for a host's own system services
    /// (`system@<host>`).
    pub fn local_system(host: &str) -> Self {
        Principal(format!("system@{host}"))
    }

    /// The principal name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Principal({})", self.0)
    }
}

impl AsRef<str> for Principal {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for Principal {
    type Err = SecurityError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Principal::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_validate() {
        assert!(Principal::new("tacoma@cl2.cs.uit.no").is_ok());
        assert!(Principal::new("tacomaproject").is_ok());
    }

    #[test]
    fn invalid_rejected() {
        assert!(Principal::new("").is_err());
        assert!(Principal::new("has space").is_err());
        assert!(Principal::new("slash/name").is_err());
    }

    #[test]
    fn local_system_is_host_scoped() {
        let p = Principal::local_system("h1.example");
        assert_eq!(p.as_str(), "system@h1.example");
        assert_ne!(p, Principal::local_system("h2.example"));
    }
}
