use std::collections::HashMap;
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

use serde::{Deserialize, Serialize};

use crate::{Principal, SecurityError};

/// A set of access rights, enforced by the firewall as it mediates
/// communication (§3.2) and by service agents guarding resources (§3.3).
///
/// Represented as a flag set (the paper's "access rights, based on first
/// level authentication of the origin of the agent").
///
/// ```
/// use tacoma_security::Rights;
///
/// let r = Rights::EXECUTE | Rights::SEND_LOCAL;
/// assert!(r.contains(Rights::EXECUTE));
/// assert!(!r.contains(Rights::ADMIN));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rights(u32);

impl Rights {
    /// No rights at all.
    pub const NONE: Rights = Rights(0);
    /// May run agent code on a VM.
    pub const EXECUTE: Rights = Rights(1 << 0);
    /// May send briefcases to agents on the same host.
    pub const SEND_LOCAL: Rights = Rights(1 << 1);
    /// May send briefcases to remote firewalls (includes `go`/`spawn`).
    pub const SEND_REMOTE: Rights = Rights(1 << 2);
    /// May read files through `ag_fs`.
    pub const FS_READ: Rights = Rights(1 << 3);
    /// May write files through `ag_fs`.
    pub const FS_WRITE: Rights = Rights(1 << 4);
    /// May list, stop, and kill other agents via the firewall.
    pub const ADMIN: Rights = Rights(1 << 5);

    /// Everything — "if sufficient trust can be achieved, an agent should
    /// have all the capabilities of a regular process" (§2).
    pub const ALL: Rights = Rights((1 << 6) - 1);

    /// The standard grant for an authenticated, trusted mobile agent:
    /// execute and communicate, but no file writes or admin.
    pub fn standard() -> Rights {
        Rights::EXECUTE | Rights::SEND_LOCAL | Rights::SEND_REMOTE | Rights::FS_READ
    }

    /// Whether every right in `needle` is present.
    pub fn contains(self, needle: Rights) -> bool {
        self.0 & needle.0 == needle.0
    }

    /// This set with `extra` added.
    pub fn with(self, extra: Rights) -> Rights {
        self | extra
    }

    /// This set with `removed` taken away.
    pub fn without(self, removed: Rights) -> Rights {
        Rights(self.0 & !removed.0)
    }

    /// Checks a single required right, producing a firewall-grade error.
    ///
    /// # Errors
    ///
    /// [`SecurityError::AccessDenied`] naming the missing right.
    pub fn require(self, needed: Rights, principal: &Principal) -> Result<(), SecurityError> {
        if self.contains(needed) {
            Ok(())
        } else {
            Err(SecurityError::AccessDenied {
                principal: principal.to_string(),
                missing: needed.name(),
            })
        }
    }

    fn name(self) -> &'static str {
        match self {
            Rights::EXECUTE => "EXECUTE",
            Rights::SEND_LOCAL => "SEND_LOCAL",
            Rights::SEND_REMOTE => "SEND_REMOTE",
            Rights::FS_READ => "FS_READ",
            Rights::FS_WRITE => "FS_WRITE",
            Rights::ADMIN => "ADMIN",
            Rights::NONE => "NONE",
            Rights::ALL => "ALL",
            _ => "COMBINATION",
        }
    }
}

impl BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitOrAssign for Rights {
    fn bitor_assign(&mut self, rhs: Rights) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            return write!(f, "Rights(NONE)");
        }
        let mut parts = Vec::new();
        for (flag, label) in [
            (Rights::EXECUTE, "EXECUTE"),
            (Rights::SEND_LOCAL, "SEND_LOCAL"),
            (Rights::SEND_REMOTE, "SEND_REMOTE"),
            (Rights::FS_READ, "FS_READ"),
            (Rights::FS_WRITE, "FS_WRITE"),
            (Rights::ADMIN, "ADMIN"),
        ] {
            if self.contains(flag) {
                parts.push(label);
            }
        }
        write!(f, "Rights({})", parts.join("|"))
    }
}

/// A host's authorization policy: what rights a principal gets, based on
/// how (and whether) it authenticated.
///
/// The paper's observation that "safety enforcement is not always needed
/// nor desired" (§2) maps to a permissive policy; the hostile-Internet
/// deployment maps to a restrictive one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Policy {
    authenticated_default: Rights,
    unauthenticated_default: Rights,
    overrides: HashMap<Principal, Rights>,
}

impl Policy {
    /// The default policy: authenticated agents get
    /// [`Rights::standard`], unauthenticated agents get nothing.
    pub fn new() -> Self {
        Policy {
            authenticated_default: Rights::standard(),
            unauthenticated_default: Rights::NONE,
            overrides: HashMap::new(),
        }
    }

    /// A fully trusting policy — every agent runs "with all the
    /// capabilities of a regular process". Suitable inside one
    /// administrative domain.
    pub fn trusting() -> Self {
        Policy {
            authenticated_default: Rights::ALL,
            unauthenticated_default: Rights::standard(),
            overrides: HashMap::new(),
        }
    }

    /// Sets the default rights for authenticated principals.
    pub fn authenticated_default(mut self, rights: Rights) -> Self {
        self.authenticated_default = rights;
        self
    }

    /// Sets the default rights for unauthenticated senders.
    pub fn unauthenticated_default(mut self, rights: Rights) -> Self {
        self.unauthenticated_default = rights;
        self
    }

    /// Grants a specific principal specific rights, overriding defaults.
    pub fn grant(&mut self, principal: Principal, rights: Rights) -> &mut Self {
        self.overrides.insert(principal, rights);
        self
    }

    /// The rights of a principal given its authentication status.
    pub fn rights_for(&self, principal: &Principal, authenticated: bool) -> Rights {
        if let Some(r) = self.overrides.get(principal) {
            return *r;
        }
        if authenticated {
            self.authenticated_default
        } else {
            self.unauthenticated_default
        }
    }
}

impl Default for Policy {
    fn default() -> Self {
        Policy::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Principal {
        Principal::new(name).unwrap()
    }

    #[test]
    fn flag_algebra() {
        let r = Rights::EXECUTE | Rights::FS_READ;
        assert!(r.contains(Rights::EXECUTE));
        assert!(r.contains(Rights::FS_READ));
        assert!(!r.contains(Rights::EXECUTE | Rights::ADMIN));
        assert!(r.without(Rights::EXECUTE) == Rights::FS_READ);
        assert!(Rights::ALL.contains(Rights::ADMIN));
    }

    #[test]
    fn require_names_the_missing_right() {
        let err = Rights::standard()
            .require(Rights::ADMIN, &p("alice"))
            .unwrap_err();
        assert!(matches!(
            err,
            SecurityError::AccessDenied {
                missing: "ADMIN",
                ..
            }
        ));
        assert!(Rights::ALL.require(Rights::ADMIN, &p("alice")).is_ok());
    }

    #[test]
    fn default_policy_distinguishes_authentication() {
        let policy = Policy::new();
        assert_eq!(policy.rights_for(&p("x"), true), Rights::standard());
        assert_eq!(policy.rights_for(&p("x"), false), Rights::NONE);
    }

    #[test]
    fn overrides_beat_defaults_even_when_unauthenticated() {
        let mut policy = Policy::new();
        policy.grant(p("admin@h1"), Rights::ALL);
        assert_eq!(policy.rights_for(&p("admin@h1"), false), Rights::ALL);
        assert_eq!(policy.rights_for(&p("other"), true), Rights::standard());
    }

    #[test]
    fn trusting_policy_is_wide_open() {
        let policy = Policy::trusting();
        assert_eq!(policy.rights_for(&p("anyone"), true), Rights::ALL);
        assert!(policy
            .rights_for(&p("anyone"), false)
            .contains(Rights::EXECUTE));
    }

    #[test]
    fn debug_lists_flags() {
        let shown = format!("{:?}", Rights::EXECUTE | Rights::ADMIN);
        assert!(shown.contains("EXECUTE") && shown.contains("ADMIN"));
        assert_eq!(format!("{:?}", Rights::NONE), "Rights(NONE)");
    }
}
