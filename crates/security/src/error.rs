use std::fmt;

/// Errors from authentication and authorization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SecurityError {
    /// A principal name failed validation.
    BadPrincipal {
        /// The rejected name.
        name: String,
    },
    /// No key is known for the principal, so nothing it signs can verify.
    UnknownPrincipal {
        /// The unknown principal name.
        name: String,
    },
    /// A signature did not verify against the principal's key.
    BadSignature {
        /// The principal whose key was used.
        principal: String,
    },
    /// A digest had the wrong length or was not valid hex.
    BadDigest,
    /// The principal is authenticated but lacks a required right.
    AccessDenied {
        /// The principal denied.
        principal: String,
        /// Human-readable name of the missing right.
        missing: &'static str,
    },
}

impl fmt::Display for SecurityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityError::BadPrincipal { name } => write!(f, "invalid principal name {name:?}"),
            SecurityError::UnknownPrincipal { name } => {
                write!(f, "no key known for principal {name}")
            }
            SecurityError::BadSignature { principal } => {
                write!(f, "signature verification failed for principal {principal}")
            }
            SecurityError::BadDigest => write!(f, "malformed digest"),
            SecurityError::AccessDenied { principal, missing } => {
                write!(f, "principal {principal} lacks right {missing}")
            }
        }
    }
}

impl std::error::Error for SecurityError {}
