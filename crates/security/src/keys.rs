use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{hash::Hasher, Digest, Principal};

/// A signature: a keyed MAC over the signed bytes. See the crate docs for
/// the security model (shared-key, simulation-grade).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature(Digest);

impl Signature {
    /// The signature's raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }

    /// Reconstructs a signature from a digest (e.g. read from a briefcase
    /// folder).
    pub fn from_digest(digest: Digest) -> Self {
        Signature(digest)
    }

    /// The underlying digest.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({}…)", self.0.short())
    }
}

/// The public (verification) half of a keyring: the principal's identity
/// plus the 32-byte MAC key. Distributing this *is* the act of trusting
/// the principal — see [`crate::TrustStore::trust`].
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    principal: Principal,
    key: [u8; 32],
}

impl PublicKey {
    /// The principal this key authenticates.
    pub fn principal(&self) -> &Principal {
        &self.principal
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        mac(&self.key, message) == signature.0
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "PublicKey({})", self.principal)
    }
}

/// A principal's signing keyring.
#[derive(Clone)]
pub struct Keyring {
    public: PublicKey,
}

impl Keyring {
    /// Deterministically generates a keyring for `principal` from a seed.
    /// Same seed, same keys — so experiments are reproducible.
    pub fn generate(principal: &Principal, seed: u64) -> Self {
        // Domain-separate by principal so two principals sharing a seed
        // still get distinct keys.
        let mut material = [0u8; 32];
        let mut rng = StdRng::seed_from_u64(seed);
        rng.fill_bytes(&mut material);
        let mut h = Hasher::new();
        h.update(principal.as_str().as_bytes()).update(&material);
        let key = *h.finalize().as_bytes();
        Keyring {
            public: PublicKey {
                principal: principal.clone(),
                key,
            },
        }
    }

    /// The principal this keyring signs for.
    pub fn principal(&self) -> &Principal {
        &self.public.principal
    }

    /// The distributable verification key.
    pub fn public(&self) -> PublicKey {
        self.public.clone()
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(mac(&self.public.key, message))
    }
}

impl fmt::Debug for Keyring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Keyring({})", self.public.principal)
    }
}

/// Keyed MAC: H(key ‖ pad ‖ message ‖ key). The sandwich construction
/// avoids trivial extension given our Merkle–Damgård hash.
fn mac(key: &[u8; 32], message: &[u8]) -> Digest {
    let mut h = Hasher::new();
    h.update(key).update(&[0x36; 8]).update(message).update(key);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> Keyring {
        Keyring::generate(&Principal::new("alice@h1").unwrap(), 7)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let k = alice();
        let sig = k.sign(b"payload");
        assert!(k.public().verify(b"payload", &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let k = alice();
        let sig = k.sign(b"payload");
        assert!(!k.public().verify(b"payloae", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let sig = alice().sign(b"payload");
        let eve = Keyring::generate(&Principal::new("eve@h9").unwrap(), 8);
        assert!(!eve.public().verify(b"payload", &sig));
    }

    #[test]
    fn generation_is_deterministic_and_domain_separated() {
        let p = Principal::new("alice@h1").unwrap();
        let a1 = Keyring::generate(&p, 7);
        let a2 = Keyring::generate(&p, 7);
        assert_eq!(a1.sign(b"m"), a2.sign(b"m"));

        let q = Principal::new("bob@h1").unwrap();
        let b = Keyring::generate(&q, 7);
        assert_ne!(
            a1.sign(b"m"),
            b.sign(b"m"),
            "same seed must not share keys across principals"
        );
    }

    #[test]
    fn debug_never_leaks_key_material() {
        let k = alice();
        let shown = format!("{:?} {:?}", k, k.public());
        assert!(!shown.contains("key"));
        assert!(shown.contains("alice@h1"));
    }
}
