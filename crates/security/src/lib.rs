//! Security substrate for the TAX firewall: principals, signatures, trust
//! stores, and access rights.
//!
//! The paper's firewall "does an initial authentication, based on
//! parameters such as the presence of a signed agent core or the presence
//! of an authenticated and trusted sender" (§3.2), and `vm_bin` "executes
//! binaries directly on top of the operating system, provided the binary is
//! signed by a trusted principal" (§3.3). This crate provides those
//! mechanisms.
//!
//! # Not cryptographically secure
//!
//! The hash ([`Digest`], [`hash_bytes`]) is a homegrown 256-bit
//! Merkle–Damgård construction and the "signatures" are keyed MACs over
//! it: signing and verification use the **same** 32-byte key, distributed
//! through the [`TrustStore`]. This faithfully reproduces the *protocol*
//! (sign the agent core, verify on arrival, derive rights from the
//! authenticated principal) while staying inside the allowed dependency
//! set; an adversarial deployment would swap in real public-key
//! signatures behind the same API. This is a documented substitution, not
//! an oversight.
//!
//! ```
//! use tacoma_security::{Keyring, Principal, TrustStore};
//!
//! # fn main() -> Result<(), tacoma_security::SecurityError> {
//! let alice = Principal::new("alice@h1")?;
//! let keyring = Keyring::generate(&alice, 42);
//!
//! let mut store = TrustStore::new();
//! store.trust(keyring.public());
//!
//! let sig = keyring.sign(b"agent core bytes");
//! assert!(store.verify(&alice, b"agent core bytes", &sig).is_ok());
//! assert!(store.verify(&alice, b"tampered bytes", &sig).is_err());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acl;
mod error;
mod hash;
mod keys;
mod principal;
mod trust;

pub use acl::{Policy, Rights};
pub use error::SecurityError;
pub use hash::{hash_bytes, Digest, Hasher};
pub use keys::{Keyring, PublicKey, Signature};
pub use principal::Principal;
pub use trust::TrustStore;
