//! A 256-bit Merkle–Damgård hash over a 64-bit ARX compression function.
//!
//! **Not cryptographically secure** — see the crate-level documentation.
//! It is deterministic, has good avalanche behaviour for accidental
//! corruption, and is collision-resistant against non-adversarial inputs,
//! which is all the simulation needs.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SecurityError;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub(crate) [u8; 32]);

impl Digest {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Parses a digest from 64 hex characters.
    ///
    /// # Errors
    ///
    /// [`SecurityError::BadDigest`] on wrong length or non-hex input.
    pub fn from_hex(hex: &str) -> Result<Self, SecurityError> {
        if hex.len() != 64 {
            return Err(SecurityError::BadDigest);
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let s = std::str::from_utf8(chunk).map_err(|_| SecurityError::BadDigest)?;
            out[i] = u8::from_str_radix(s, 16).map_err(|_| SecurityError::BadDigest)?;
        }
        Ok(Digest(out))
    }

    /// Renders the digest as 64 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// A short 16-hex-character prefix, for logs and artifact names.
    pub fn short(&self) -> String {
        self.to_hex()[..16].to_owned()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const IV: [u64; 4] = [
    0x6a09_e667_f3bc_c908,
    0xbb67_ae85_84ca_a73b,
    0x3c6e_f372_fe94_f82b,
    0xa54f_f53a_5f1d_36f1,
];

#[inline]
fn mix(state: &mut [u64; 4], block: u64) {
    // One ARX round per lane, cross-feeding lanes; constants from
    // splitmix64 so single-bit input changes avalanche across the state.
    state[0] = (state[0] ^ block).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    state[0] ^= state[0] >> 30;
    state[1] = state[1].wrapping_add(state[0]).rotate_left(13) ^ block.rotate_left(7);
    state[1] = state[1].wrapping_mul(0xbf58_476d_1ce4_e5b9);
    state[2] = (state[2] ^ state[1]).rotate_left(31).wrapping_add(block);
    state[2] = state[2].wrapping_mul(0x94d0_49bb_1331_11eb);
    state[3] = state[3].wrapping_add(state[2] ^ state[0]).rotate_left(17);
}

/// Incremental hasher; use [`hash_bytes`] for one-shot hashing.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: [u64; 4],
    buf: [u8; 8],
    buf_len: usize,
    total: u64,
}

impl Hasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Hasher {
            state: IV,
            buf: [0; 8],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorbs more input.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total = self.total.wrapping_add(data.len() as u64);
        let mut rest = data;
        while !rest.is_empty() {
            let take = (8 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 8 {
                mix(&mut self.state, u64::from_le_bytes(self.buf));
                self.buf_len = 0;
            }
        }
        self
    }

    /// Finishes and returns the digest. Padding encodes both the tail and
    /// the total length so `"ab" + "c"` and `"a" + "bc"` agree while
    /// `"abc"` and `"abc\0"` differ.
    pub fn finalize(mut self) -> Digest {
        let mut tail = [0u8; 8];
        tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        tail[7] = 0x80 | self.buf_len as u8;
        mix(&mut self.state, u64::from_le_bytes(tail));
        mix(&mut self.state, self.total);
        // Output transformation: two blank rounds, then serialize.
        mix(&mut self.state, 0x5bd1_e995);
        mix(&mut self.state, 0xc2b2_ae35);
        let mut out = [0u8; 32];
        for (i, lane) in self.state.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&lane.to_le_bytes());
        }
        Digest(out)
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// One-shot hash of a byte string.
///
/// ```
/// use tacoma_security::hash_bytes;
///
/// let a = hash_bytes(b"agent core");
/// let b = hash_bytes(b"agent core");
/// assert_eq!(a, b);
/// assert_ne!(a, hash_bytes(b"agent corE"));
/// ```
pub fn hash_bytes(data: &[u8]) -> Digest {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
    }

    #[test]
    fn single_bit_avalanche() {
        let a = hash_bytes(b"hello world");
        let b = hash_bytes(b"hello worle"); // differs in last byte by 1 bit
        let differing: u32 = a
            .as_bytes()
            .iter()
            .zip(b.as_bytes())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        // Expect roughly half of 256 bits to flip; demand at least 60.
        assert!(differing >= 60, "only {differing} bits flipped");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Hasher::new();
        h.update(b"ab").update(b"").update(b"cdefg").update(b"hij");
        assert_eq!(h.finalize(), hash_bytes(b"abcdefghij"));
    }

    #[test]
    fn length_extension_padding_distinguishes() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abc\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"12345678"), hash_bytes(b"1234567"));
    }

    #[test]
    fn hex_roundtrip() {
        let d = hash_bytes(b"roundtrip");
        let parsed = Digest::from_hex(&d.to_hex()).unwrap();
        assert_eq!(d, parsed);
    }

    #[test]
    fn bad_hex_rejected() {
        assert_eq!(Digest::from_hex("zz"), Err(SecurityError::BadDigest));
        assert_eq!(
            Digest::from_hex(&"g".repeat(64)),
            Err(SecurityError::BadDigest)
        );
    }

    #[test]
    fn no_trivial_collisions_over_small_corpus() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            assert!(
                seen.insert(hash_bytes(&i.to_le_bytes())),
                "collision at {i}"
            );
        }
    }

    #[test]
    fn short_is_prefix() {
        let d = hash_bytes(b"x");
        assert!(d.to_hex().starts_with(&d.short()));
        assert_eq!(d.short().len(), 16);
    }
}
