//! Property tests for the hash and signature scheme.

use proptest::prelude::*;
use tacoma_security::{hash_bytes, Digest, Hasher, Keyring, Principal};

proptest! {
    /// Hashing is deterministic and any single-bit flip changes the
    /// digest.
    #[test]
    fn hash_detects_any_flip(data in prop::collection::vec(any::<u8>(), 1..512), idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let original = hash_bytes(&data);
        prop_assert_eq!(original, hash_bytes(&data));
        let mut tampered = data.clone();
        let i = idx.index(tampered.len());
        tampered[i] ^= 1 << bit;
        prop_assert_ne!(original, hash_bytes(&tampered));
    }

    /// Incremental hashing agrees with one-shot hashing for every split.
    #[test]
    fn incremental_agrees(data in prop::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
        let i = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut h = Hasher::new();
        h.update(&data[..i]).update(&data[i..]);
        prop_assert_eq!(h.finalize(), hash_bytes(&data));
    }

    /// Digest hex serialization roundtrips.
    #[test]
    fn digest_hex_roundtrip(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let d = hash_bytes(&data);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }

    /// Signatures verify for the signer and fail for any other message or
    /// any other principal's key.
    #[test]
    fn signature_soundness(
        message in prop::collection::vec(any::<u8>(), 0..256),
        other in prop::collection::vec(any::<u8>(), 0..256),
        seed in any::<u64>(),
    ) {
        let alice = Keyring::generate(&Principal::new("alice").unwrap(), seed);
        let sig = alice.sign(&message);
        prop_assert!(alice.public().verify(&message, &sig));
        if other != message {
            prop_assert!(!alice.public().verify(&other, &sig));
        }
        let eve = Keyring::generate(&Principal::new("eve").unwrap(), seed.wrapping_add(1));
        prop_assert!(!eve.public().verify(&message, &sig));
    }
}
