//! The synthetic web: the substrate under the paper's §5 case study.
//!
//! The experiment needs "our local computer science department web server"
//! — 917 HTML pages totalling 3 MB, a tree reachable from the topmost
//! index page, some dead internal links, and links pointing outside the
//! department (which Webbot logs as rejected). This crate builds exactly
//! that, deterministically:
//!
//! * [`WebUrl`] — a minimal `http://host/path` URL type.
//! * [`Document`] / [`Site`] — pages with sizes, content types, ages, and
//!   link lists.
//! * [`SiteSpec`] / [`Site::generate`] — a seeded generator whose page
//!   count, byte volume, dead-link rate, and external-link rate are all
//!   dialled in (the §5 numbers are [`SiteSpec::paper_site`]).
//! * [`WebServer`] — the `ag_http` service agent: serves `get`/`head`
//!   over briefcase RPC, with response bodies padded to the page's real
//!   size so the simulated network charges real transfer costs, and a
//!   calibrated per-request server processing time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod document;
mod server;
mod site;
mod url;

pub use document::{ContentType, Document};
pub use server::{FetchOutcome, WebClient, WebServer, DEFAULT_SERVER_WORK_NS};
pub use site::{Site, SiteSpec};
pub use url::{ParseWebUrlError, WebUrl};
