use serde::{Deserialize, Serialize};

/// A document's media type, as the web server reports it. Webbot follows
/// links only inside HTML; other types are checked but not parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentType {
    /// `text/html` — parsed for links.
    Html,
    /// `image/gif` — checked, not followed.
    Image,
    /// `application/postscript` — the era's paper format.
    Postscript,
}

impl ContentType {
    /// The MIME-ish string on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ContentType::Html => "text/html",
            ContentType::Image => "image/gif",
            ContentType::Postscript => "application/postscript",
        }
    }

    /// Parses the wire string, defaulting unknown types to non-HTML.
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "text/html" => ContentType::Html,
            "image/gif" => ContentType::Image,
            _ => ContentType::Postscript,
        }
    }
}

/// One page on a [`crate::Site`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Absolute path on its site (`/research/index.html`).
    pub path: String,
    /// Body size in bytes — what a `get` transfers.
    pub size: u64,
    /// Media type.
    pub content_type: ContentType,
    /// Age in days (Webbot "can be used to gather statistics on web pages
    /// such as link validity, age, and type").
    pub age_days: u32,
    /// Link targets as they appear in the page: absolute paths for
    /// internal links, full `http://` URLs for external ones.
    pub links: Vec<String>,
    /// When set, requests for this path answer `301 Moved` pointing at
    /// the target instead of serving a body.
    pub redirect_to: Option<String>,
}

impl Document {
    /// A new HTML document.
    pub fn html(path: impl Into<String>, size: u64) -> Self {
        Document {
            path: path.into(),
            size,
            content_type: ContentType::Html,
            age_days: 0,
            links: Vec::new(),
            redirect_to: None,
        }
    }

    /// A new non-HTML asset.
    pub fn asset(path: impl Into<String>, size: u64, content_type: ContentType) -> Self {
        Document {
            path: path.into(),
            size,
            content_type,
            age_days: 0,
            links: Vec::new(),
            redirect_to: None,
        }
    }

    /// A `301 Moved Permanently` stub pointing at `target`.
    pub fn moved(path: impl Into<String>, target: impl Into<String>) -> Self {
        Document {
            path: path.into(),
            size: 0,
            content_type: ContentType::Html,
            age_days: 0,
            links: Vec::new(),
            redirect_to: Some(target.into()),
        }
    }

    /// Adds a link target.
    pub fn link(mut self, target: impl Into<String>) -> Self {
        self.links.push(target.into());
        self
    }

    /// Whether Webbot parses this page for further links.
    pub fn is_html(&self) -> bool {
        self.content_type == ContentType::Html
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_type_roundtrip() {
        for ct in [
            ContentType::Html,
            ContentType::Image,
            ContentType::Postscript,
        ] {
            assert_eq!(ContentType::from_str_lossy(ct.as_str()), ct);
        }
        assert_eq!(ContentType::from_str_lossy("wat"), ContentType::Postscript);
    }

    #[test]
    fn builders() {
        let doc = Document::html("/index.html", 1234)
            .link("/a.html")
            .link("http://other.host/b.html");
        assert!(doc.is_html());
        assert_eq!(doc.links.len(), 2);
        assert!(!Document::asset("/x.gif", 10, ContentType::Image).is_html());
    }
}
