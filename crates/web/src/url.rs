use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A minimal web URL: `http://host/path`.
///
/// ```
/// use tacoma_web::WebUrl;
///
/// let url: WebUrl = "http://www.cs.uit.no/index.html".parse().unwrap();
/// assert_eq!(url.host(), "www.cs.uit.no");
/// assert_eq!(url.path(), "/index.html");
/// assert!(url.to_string().starts_with("http://"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WebUrl {
    host: String,
    path: String,
}

/// Error from parsing a [`WebUrl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWebUrlError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseWebUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid web URL {:?} (expected http://host/path)",
            self.input
        )
    }
}

impl std::error::Error for ParseWebUrlError {}

impl WebUrl {
    /// Builds a URL from a host and an absolute path.
    pub fn new(host: impl Into<String>, path: impl Into<String>) -> Self {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        WebUrl {
            host: host.into(),
            path,
        }
    }

    /// The host part.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The absolute path part.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Resolves a link target found on this page: absolute `http://` URLs
    /// stand alone; absolute paths stay on this host.
    pub fn join(&self, target: &str) -> Result<WebUrl, ParseWebUrlError> {
        if target.starts_with("http://") {
            target.parse()
        } else if target.starts_with('/') {
            Ok(WebUrl::new(self.host.clone(), target))
        } else {
            // Relative path: resolve against this page's directory.
            let dir = match self.path.rfind('/') {
                Some(i) => &self.path[..=i],
                None => "/",
            };
            Ok(WebUrl::new(self.host.clone(), format!("{dir}{target}")))
        }
    }

    /// Whether this URL's text starts with `prefix` — Webbot's constraint
    /// ("restricting URIs checked to those matching a specific prefix").
    pub fn matches_prefix(&self, prefix: &str) -> bool {
        self.to_string().starts_with(prefix)
    }
}

impl FromStr for WebUrl {
    type Err = ParseWebUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseWebUrlError {
            input: s.to_owned(),
        };
        let rest = s.strip_prefix("http://").ok_or_else(err)?;
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host.is_empty()
            || !host
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-')
        {
            return Err(err());
        }
        Ok(WebUrl::new(host, path))
    }
}

impl fmt::Display for WebUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http://{}{}", self.host, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for text in ["http://a.b/", "http://a.b/x/y.html", "http://host/"] {
            let url: WebUrl = text.parse().unwrap();
            assert_eq!(url.to_string(), text);
        }
    }

    #[test]
    fn host_only_gets_root_path() {
        let url: WebUrl = "http://example.org".parse().unwrap();
        assert_eq!(url.path(), "/");
    }

    #[test]
    fn bad_urls_rejected() {
        assert!("ftp://x/".parse::<WebUrl>().is_err());
        assert!("http:///x".parse::<WebUrl>().is_err());
        assert!("http://bad host/".parse::<WebUrl>().is_err());
        assert!("".parse::<WebUrl>().is_err());
    }

    #[test]
    fn join_resolves_absolute_relative_and_full() {
        let page: WebUrl = "http://h/dir/page.html".parse().unwrap();
        assert_eq!(
            page.join("/top.html").unwrap().to_string(),
            "http://h/top.html"
        );
        assert_eq!(
            page.join("sib.html").unwrap().to_string(),
            "http://h/dir/sib.html"
        );
        assert_eq!(
            page.join("http://other/x").unwrap().to_string(),
            "http://other/x"
        );
    }

    #[test]
    fn prefix_constraint() {
        let url: WebUrl = "http://www.cs.uit.no/research/x.html".parse().unwrap();
        assert!(url.matches_prefix("http://www.cs.uit.no/"));
        assert!(!url.matches_prefix("http://www.uit.no/"));
    }
}
