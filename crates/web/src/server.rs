//! The `ag_http` web-server service agent and the client used by robots.
//!
//! Serving is briefcase RPC like every other TAX service: `get`/`head`
//! with the path as the argument. A `get` reply carries a body element of
//! the page's exact size, so the virtual network charges the same bytes a
//! real fetch would move; every request also costs a calibrated slice of
//! server CPU (`work_ns`), which is what makes the local-vs-remote
//! comparison of §5 behave like the paper's (processing dominates on a
//! fast LAN).

use tacoma_briefcase::{folders, Briefcase};
use tacoma_core::HostHooks;
use tacoma_core::{arg, command_of, error_reply, ok_reply, ServiceAgent, ServiceEnv};

use crate::{ContentType, Site, WebUrl};

/// Default per-request server processing cost: 1.5 ms. Calibrated so the
/// §5 experiment reproduces the paper's ~16 % local advantage on a
/// 100 Mbit LAN (see EXPERIMENTS.md).
pub const DEFAULT_SERVER_WORK_NS: u64 = 1_500_000;

/// The web server: one per hosting machine, holding one [`Site`].
#[derive(Debug)]
pub struct WebServer {
    site: Site,
    work_ns: u64,
}

impl WebServer {
    /// A server for the given site with the default processing cost.
    pub fn new(site: Site) -> Self {
        WebServer {
            site,
            work_ns: DEFAULT_SERVER_WORK_NS,
        }
    }

    /// Overrides the per-request processing cost.
    pub fn with_work_ns(mut self, work_ns: u64) -> Self {
        self.work_ns = work_ns;
        self
    }

    /// The served site.
    pub fn site(&self) -> &Site {
        &self.site
    }
}

impl ServiceAgent for WebServer {
    fn name(&self) -> &str {
        "ag_http"
    }

    fn handle(&self, request: &mut Briefcase, env: &mut ServiceEnv<'_>) -> Briefcase {
        let cmd = command_of(request).to_owned();
        let with_body = match cmd.as_str() {
            "get" => true,
            "head" => false,
            other => return error_reply(format!("ag_http: unknown command {other:?}")),
        };
        let Some(path) = arg(request, 0) else {
            return error_reply(format!("{cmd}: missing path"));
        };

        env.hooks.work_ns(self.work_ns);

        let mut reply = ok_reply();
        match self.site.get(path) {
            Some(doc) if doc.redirect_to.is_some() => {
                reply.set_single("HTTP-STATUS", 301i64);
                reply.set_single(
                    "LOCATION",
                    doc.redirect_to.clone().expect("checked is_some"),
                );
                reply.set_single("CONTENT-TYPE", doc.content_type.as_str());
                reply.set_single("SIZE", 0i64);
            }
            Some(doc) => {
                reply.set_single("HTTP-STATUS", 200i64);
                reply.set_single("CONTENT-TYPE", doc.content_type.as_str());
                reply.set_single("SIZE", doc.size as i64);
                reply.set_single("AGE-DAYS", doc.age_days as i64);
                if with_body {
                    if doc.is_html() {
                        for link in &doc.links {
                            reply.append("LINKS", link.as_str());
                        }
                    }
                    // The body: padding of the document's exact size, so
                    // the network charges real transfer bytes.
                    reply.set_single("BODY", vec![0u8; doc.size as usize]);
                }
            }
            None => {
                reply.set_single("HTTP-STATUS", 404i64);
                reply.set_single("CONTENT-TYPE", ContentType::Html.as_str());
                reply.set_single("SIZE", 0i64);
                if with_body {
                    reply.set_single("BODY", b"<html>404 not found</html>".to_vec());
                }
            }
        }
        reply
    }
}

/// The result of fetching a URL.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchOutcome {
    /// HTTP-ish status: 200, 301, or 404.
    pub status: u16,
    /// Redirect target (301 only).
    pub location: Option<String>,
    /// Declared content type.
    pub content_type: ContentType,
    /// Body size in bytes.
    pub size: u64,
    /// Page age in days.
    pub age_days: u32,
    /// Link targets (HTML `get` only).
    pub links: Vec<String>,
}

impl FetchOutcome {
    /// Whether the document exists.
    pub fn is_ok(&self) -> bool {
        self.status == 200
    }
}

/// A web client over TAX host hooks: fetches by `meet`ing the `ag_http`
/// service at the URL's host. This is the only way the Webbot touches the
/// network, so the same robot binary works stationary (remote meets) and
/// mobile (loopback meets) — the §5 trick.
pub struct WebClient<'a> {
    hooks: &'a mut dyn HostHooks,
}

impl<'a> WebClient<'a> {
    /// A client issuing requests through the given hooks.
    pub fn new(hooks: &'a mut dyn HostHooks) -> Self {
        WebClient { hooks }
    }

    fn request(&mut self, verb: &str, url: &WebUrl) -> Option<FetchOutcome> {
        let mut request = Briefcase::new();
        request.set_single(folders::COMMAND, verb);
        request.append(folders::ARGS, url.path());
        let target = format!("tacoma://{}/ag_http", url.host());
        let reply = self.hooks.meet(&target, &request)?;
        if reply.single_str(folders::STATUS) != Ok("ok") {
            return None;
        }
        let status = reply.single_i64("HTTP-STATUS").ok()? as u16;
        let location = reply.single_str("LOCATION").ok().map(str::to_owned);
        let content_type =
            ContentType::from_str_lossy(reply.single_str("CONTENT-TYPE").unwrap_or(""));
        let size = reply.single_i64("SIZE").unwrap_or(0).max(0) as u64;
        let age_days = reply.single_i64("AGE-DAYS").unwrap_or(0).max(0) as u32;
        let links = reply
            .folder("LINKS")
            .map(|f| {
                f.iter()
                    .filter_map(|e| e.as_str().ok().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        Some(FetchOutcome {
            status,
            location,
            content_type,
            size,
            age_days,
            links,
        })
    }

    /// Fetches a page (body + links). `None` means the server was
    /// unreachable — distinct from a 404, which is a successful fetch of
    /// a missing page.
    pub fn get(&mut self, url: &WebUrl) -> Option<FetchOutcome> {
        self.request("get", url)
    }

    /// Checks a page without transferring the body.
    pub fn head(&mut self, url: &WebUrl) -> Option<FetchOutcome> {
        self.request("head", url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Document, SiteSpec};
    use tacoma_core::NullHooks;
    use tacoma_core::{Architecture, NativeRegistry};
    use tacoma_core::{Principal, Rights, TrustStore};

    fn serve(site: Site, request: &mut Briefcase) -> Briefcase {
        let server = WebServer::new(site);
        let natives = NativeRegistry::new();
        let _trust = TrustStore::new();
        let mut hooks = NullHooks::default();
        let mut env = ServiceEnv {
            host: "server",
            host_arch: Architecture::simulated(),
            requester: Principal::new("tester").unwrap(),
            rights: Rights::ALL,
            now: tacoma_core::SimTime::ZERO,
            natives: &natives,
            hooks: &mut hooks,
            fuel: 1_000_000,
        };
        server.handle(request, &mut env)
    }

    fn site() -> Site {
        let mut s = Site::empty("server");
        s.add(
            Document::html("/index.html", 500)
                .link("/a.html")
                .link("/dead.html"),
        );
        s.add(Document::html("/a.html", 300));
        s
    }

    #[test]
    fn get_returns_body_and_links() {
        let mut req = Briefcase::new();
        req.set_single(folders::COMMAND, "get");
        req.append(folders::ARGS, "/index.html");
        let reply = serve(site(), &mut req);
        assert_eq!(reply.single_i64("HTTP-STATUS").unwrap(), 200);
        assert_eq!(reply.single_i64("SIZE").unwrap(), 500);
        assert_eq!(reply.element("BODY", 0).unwrap().len(), 500);
        assert_eq!(reply.folder("LINKS").unwrap().len(), 2);
    }

    #[test]
    fn head_has_no_body() {
        let mut req = Briefcase::new();
        req.set_single(folders::COMMAND, "head");
        req.append(folders::ARGS, "/index.html");
        let reply = serve(site(), &mut req);
        assert_eq!(reply.single_i64("HTTP-STATUS").unwrap(), 200);
        assert!(!reply.contains_folder("BODY"));
        assert!(!reply.contains_folder("LINKS"));
    }

    #[test]
    fn missing_page_is_404_not_error() {
        let mut req = Briefcase::new();
        req.set_single(folders::COMMAND, "get");
        req.append(folders::ARGS, "/dead.html");
        let reply = serve(site(), &mut req);
        assert_eq!(reply.single_str(folders::STATUS).unwrap(), "ok");
        assert_eq!(reply.single_i64("HTTP-STATUS").unwrap(), 404);
    }

    #[test]
    fn unknown_command_is_an_error_reply() {
        let mut req = Briefcase::new();
        req.set_single(folders::COMMAND, "delete");
        req.append(folders::ARGS, "/index.html");
        let reply = serve(site(), &mut req);
        assert!(reply
            .single_str(folders::STATUS)
            .unwrap()
            .starts_with("error"));
    }

    #[test]
    fn moved_page_answers_301_with_location() {
        let mut s = Site::empty("server");
        s.add(Document::html("/new.html", 100));
        s.add(Document::moved("/old.html", "/new.html"));
        let mut req = Briefcase::new();
        req.set_single(folders::COMMAND, "get");
        req.append(folders::ARGS, "/old.html");
        let reply = serve(s, &mut req);
        assert_eq!(reply.single_i64("HTTP-STATUS").unwrap(), 301);
        assert_eq!(reply.single_str("LOCATION").unwrap(), "/new.html");
        assert!(!reply.contains_folder("BODY"));
    }

    #[test]
    fn generated_site_is_servable() {
        let s = Site::generate(&SiteSpec::small("server", 20, 9));
        let mut req = Briefcase::new();
        req.set_single(folders::COMMAND, "get");
        req.append(folders::ARGS, "/index.html");
        let reply = serve(s, &mut req);
        assert_eq!(reply.single_i64("HTTP-STATUS").unwrap(), 200);
        assert!(!reply.element("BODY", 0).unwrap().is_empty());
    }
}
