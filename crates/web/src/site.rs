//! Sites and the seeded site generator.

use std::collections::{BTreeMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{ContentType, Document};

/// Parameters for generating a synthetic site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSpec {
    /// The host serving the site.
    pub host: String,
    /// Number of HTML pages.
    pub pages: usize,
    /// Total bytes across all documents (exact).
    pub total_bytes: u64,
    /// RNG seed: same spec, same site.
    pub seed: u64,
    /// Maximum tree depth from the index page (every page reachable
    /// within this many hops — §5's "all pages can eventually be reached
    /// from the topmost index page", within Webbot's depth-4 limit).
    pub max_depth: usize,
    /// Extra cross-links per page beyond the spanning tree.
    pub extra_links_per_page: f64,
    /// Fraction of links that dangle (point at missing local paths).
    pub broken_internal_rate: f64,
    /// Fraction of links that point at other hosts.
    pub external_rate: f64,
    /// The other hosts external links may target.
    pub external_hosts: Vec<String>,
    /// Fraction of external links that point at missing remote paths.
    pub broken_external_rate: f64,
    /// Fraction of additional non-HTML assets (relative to page count).
    pub non_html_rate: f64,
    /// Fraction of pages that additionally have a `301 Moved` alias
    /// pointing at them (old URLs that relocated).
    pub redirect_rate: f64,
}

impl SiteSpec {
    /// The §5 department server: 917 HTML pages, 3 MB, reachable within
    /// depth 4.
    pub fn paper_site(host: impl Into<String>) -> Self {
        SiteSpec {
            host: host.into(),
            pages: 917,
            total_bytes: 3_000_000,
            seed: 1900,
            max_depth: 4,
            extra_links_per_page: 4.0,
            broken_internal_rate: 0.02,
            external_rate: 0.08,
            external_hosts: Vec::new(),
            broken_external_rate: 0.25,
            non_html_rate: 0.0,
            redirect_rate: 0.01,
        }
    }

    /// A small site for unit tests.
    pub fn small(host: impl Into<String>, pages: usize, seed: u64) -> Self {
        SiteSpec {
            host: host.into(),
            pages,
            total_bytes: (pages as u64) * 2048,
            seed,
            max_depth: 4,
            extra_links_per_page: 2.0,
            broken_internal_rate: 0.05,
            external_rate: 0.1,
            external_hosts: Vec::new(),
            broken_external_rate: 0.5,
            non_html_rate: 0.1,
            redirect_rate: 0.05,
        }
    }

    /// Sets the external hosts links may point to.
    pub fn with_external_hosts<I, S>(mut self, hosts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.external_hosts = hosts.into_iter().map(Into::into).collect();
        self
    }

    /// Scales the byte volume (the E2 sweep), keeping everything else.
    pub fn with_total_bytes(mut self, total: u64) -> Self {
        self.total_bytes = total;
        self
    }
}

/// A complete web site: documents by path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    host: String,
    documents: BTreeMap<String, Document>,
}

impl Site {
    /// An empty site on `host`.
    pub fn empty(host: impl Into<String>) -> Self {
        Site {
            host: host.into(),
            documents: BTreeMap::new(),
        }
    }

    /// Adds a document (hand-built sites for tests).
    pub fn add(&mut self, doc: Document) -> &mut Self {
        self.documents.insert(doc.path.clone(), doc);
        self
    }

    /// Generates a site from a spec. Deterministic in the spec.
    pub fn generate(spec: &SiteSpec) -> Site {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut site = Site::empty(spec.host.clone());
        if spec.pages == 0 {
            return site;
        }

        // Page paths and a depth-bounded spanning tree.
        let paths: Vec<String> = (0..spec.pages)
            .map(|i| {
                if i == 0 {
                    "/index.html".to_owned()
                } else {
                    format!("/p/{i:04}.html")
                }
            })
            .collect();
        let mut depths = vec![0usize; spec.pages];
        let mut docs: Vec<Document> = paths.iter().map(|p| Document::html(p, 0)).collect();

        for i in 1..spec.pages {
            // Pick a parent that keeps this page within the depth bound.
            let parent = loop {
                let candidate = rng.random_range(0..i);
                if depths[candidate] < spec.max_depth {
                    break candidate;
                }
            };
            depths[i] = depths[parent] + 1;
            let child_path = paths[i].clone();
            docs[parent].links.push(child_path);
        }

        // Extra links: cross links, dead links, external links.
        let mut dead_counter = 0usize;
        let mut ext_counter = 0usize;
        for doc in docs.iter_mut().take(spec.pages) {
            let n_extra = rng.random_range(0.0..spec.extra_links_per_page * 2.0) as usize;
            for _ in 0..n_extra {
                let roll: f64 = rng.random();
                if roll < spec.broken_internal_rate {
                    dead_counter += 1;
                    doc.links.push(format!("/dead/{dead_counter:04}.html"));
                } else if roll < spec.broken_internal_rate + spec.external_rate
                    && !spec.external_hosts.is_empty()
                {
                    let host_idx = rng.random_range(0..spec.external_hosts.len());
                    let host = &spec.external_hosts[host_idx];
                    ext_counter += 1;
                    if rng.random::<f64>() < spec.broken_external_rate {
                        doc.links
                            .push(format!("http://{host}/missing/{ext_counter:04}.html"));
                    } else {
                        doc.links.push(format!("http://{host}/index.html"));
                    }
                } else {
                    let target = rng.random_range(0..spec.pages);
                    let target_path = paths[target].clone();
                    doc.links.push(target_path);
                }
            }
            doc.age_days = rng.random_range(0..1500);
        }

        // Moved aliases: old URLs that 301 to a live page, linked from a
        // random page so robots encounter them.
        let n_moved = (spec.pages as f64 * spec.redirect_rate) as usize;
        let mut moved = Vec::with_capacity(n_moved);
        for m in 0..n_moved {
            let target = rng.random_range(0..spec.pages);
            let path = format!("/moved/{m:04}.html");
            let owner = rng.random_range(0..spec.pages);
            docs[owner].links.push(path.clone());
            let target_path = paths[target].clone();
            moved.push(Document::moved(path, target_path));
        }

        // Non-HTML assets hanging off random pages.
        let n_assets = (spec.pages as f64 * spec.non_html_rate) as usize;
        let mut assets = Vec::with_capacity(n_assets);
        for a in 0..n_assets {
            let content_type = if rng.random::<f64>() < 0.5 {
                ContentType::Image
            } else {
                ContentType::Postscript
            };
            let path = format!(
                "/assets/{a:04}.{}",
                if content_type == ContentType::Image {
                    "gif"
                } else {
                    "ps"
                }
            );
            let owner = rng.random_range(0..spec.pages);
            docs[owner].links.push(path.clone());
            assets.push(Document::asset(path, 0, content_type));
        }

        // Distribute the byte budget exactly.
        let mut all: Vec<Document> = docs.into_iter().chain(assets).collect();
        // Moved stubs carry no bytes; append after budget distribution.
        let weights: Vec<f64> = (0..all.len()).map(|_| rng.random_range(0.2..3.0)).collect();
        let weight_sum: f64 = weights.iter().sum();
        let mut assigned = 0u64;
        for (doc, w) in all.iter_mut().zip(&weights) {
            let share = ((spec.total_bytes as f64) * w / weight_sum) as u64;
            doc.size = share.max(64);
            assigned += doc.size;
        }
        // Correct rounding drift on the index page (clamped at a floor).
        if let Some(first) = all.first_mut() {
            let drift = spec.total_bytes as i64 - assigned as i64;
            first.size = (first.size as i64 + drift).max(64) as u64;
        }

        for doc in all.into_iter().chain(moved) {
            site.add(doc);
        }
        site
    }

    /// The serving host.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Looks a document up by absolute path.
    pub fn get(&self, path: &str) -> Option<&Document> {
        self.documents.get(path)
    }

    /// Number of documents (HTML + assets).
    pub fn document_count(&self) -> usize {
        self.documents.len()
    }

    /// Number of real HTML pages (redirect stubs excluded).
    pub fn html_page_count(&self) -> usize {
        self.documents
            .values()
            .filter(|d| d.is_html() && d.redirect_to.is_none())
            .count()
    }

    /// Number of `301 Moved` stubs.
    pub fn moved_count(&self) -> usize {
        self.documents
            .values()
            .filter(|d| d.redirect_to.is_some())
            .count()
    }

    /// Total bytes across documents.
    pub fn total_bytes(&self) -> u64 {
        self.documents.values().map(|d| d.size).sum()
    }

    /// All documents in path order.
    pub fn documents(&self) -> impl Iterator<Item = &Document> {
        self.documents.values()
    }

    /// Paths reachable from `/index.html` within `max_depth` hops,
    /// following only local HTML links that resolve.
    pub fn reachable_within(&self, max_depth: usize) -> HashSet<String> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        if self.documents.contains_key("/index.html") {
            seen.insert("/index.html".to_owned());
            queue.push_back(("/index.html".to_owned(), 0usize));
        }
        while let Some((path, depth)) = queue.pop_front() {
            let Some(doc) = self.documents.get(&path) else {
                continue;
            };
            // A moved stub passes straight through to its target (the
            // robot follows the 301 without spending a depth level).
            if let Some(target) = &doc.redirect_to {
                if self.documents.contains_key(target) && seen.insert(target.clone()) {
                    queue.push_back((target.clone(), depth));
                }
                continue;
            }
            if depth >= max_depth {
                continue;
            }
            if !doc.is_html() {
                continue;
            }
            for link in &doc.links {
                if link.starts_with('/')
                    && self.documents.contains_key(link)
                    && seen.insert(link.clone())
                {
                    queue.push_back((link.clone(), depth + 1));
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_site_matches_headline_numbers() {
        let spec = SiteSpec::paper_site("server").with_external_hosts(["ext1", "ext2"]);
        let site = Site::generate(&spec);
        assert_eq!(site.html_page_count(), 917);
        assert_eq!(site.total_bytes(), 3_000_000);
        assert!(site.moved_count() > 0, "some URLs have moved");
        for doc in site.documents().filter(|d| d.redirect_to.is_some()) {
            let target = doc.redirect_to.as_deref().unwrap();
            assert!(
                site.get(target).is_some(),
                "moved stub must point at a live page"
            );
        }
        // Every real page reachable from the index within the depth bound
        // (moved stubs may also appear in the reachable set).
        let real_reachable = site
            .reachable_within(4)
            .iter()
            .filter(|p| site.get(p).is_some_and(|d| d.redirect_to.is_none()))
            .count();
        assert_eq!(real_reachable, 917);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SiteSpec::small("h", 50, 7);
        let a = Site::generate(&spec);
        let b = Site::generate(&spec);
        assert_eq!(a.total_bytes(), b.total_bytes());
        let links_a: Vec<_> = a.documents().flat_map(|d| d.links.clone()).collect();
        let links_b: Vec<_> = b.documents().flat_map(|d| d.links.clone()).collect();
        assert_eq!(links_a, links_b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Site::generate(&SiteSpec::small("h", 50, 1));
        let b = Site::generate(&SiteSpec::small("h", 50, 2));
        let links_a: Vec<_> = a.documents().flat_map(|d| d.links.clone()).collect();
        let links_b: Vec<_> = b.documents().flat_map(|d| d.links.clone()).collect();
        assert_ne!(links_a, links_b);
    }

    #[test]
    fn dead_links_exist_and_dangle() {
        let spec = SiteSpec::paper_site("server");
        let site = Site::generate(&spec);
        let dead: Vec<String> = site
            .documents()
            .flat_map(|d| d.links.iter())
            .filter(|l| l.starts_with("/dead/"))
            .cloned()
            .collect();
        assert!(!dead.is_empty(), "the case study needs dead links to find");
        for d in dead {
            assert!(site.get(&d).is_none());
        }
    }

    #[test]
    fn external_links_only_with_external_hosts() {
        let without = Site::generate(&SiteSpec::paper_site("server"));
        assert!(!without
            .documents()
            .flat_map(|d| d.links.iter())
            .any(|l| l.starts_with("http://")));

        let with = Site::generate(&SiteSpec::paper_site("server").with_external_hosts(["ext1"]));
        let externals: Vec<&String> = with
            .documents()
            .flat_map(|d| d.links.iter())
            .filter(|l| l.starts_with("http://"))
            .collect();
        assert!(!externals.is_empty());
        assert!(externals.iter().all(|l| l.starts_with("http://ext1/")));
    }

    #[test]
    fn assets_are_linked_and_not_html() {
        let spec = SiteSpec::small("h", 40, 3);
        let site = Site::generate(&spec);
        let assets: Vec<&Document> = site.documents().filter(|d| !d.is_html()).collect();
        assert!(!assets.is_empty());
        for asset in assets {
            assert!(site
                .documents()
                .any(|d| d.is_html() && d.links.contains(&asset.path)));
        }
    }

    #[test]
    fn volume_scaling_is_exact() {
        // Totals large enough that the 64-byte per-document floor never
        // binds; tiny totals are legitimately floored upward.
        for total in [1_000_000u64, 3_000_000, 30_000_000] {
            let spec = SiteSpec::paper_site("server").with_total_bytes(total);
            assert_eq!(Site::generate(&spec).total_bytes(), total, "total {total}");
        }
    }

    #[test]
    fn empty_spec_yields_empty_site() {
        let mut spec = SiteSpec::small("h", 0, 1);
        spec.total_bytes = 0;
        let site = Site::generate(&spec);
        assert_eq!(site.document_count(), 0);
        assert!(site.reachable_within(4).is_empty());
    }
}
