//! Failure injection through the kernel: lossy links, partitions, queue
//! timeouts, and hostile messages — the environments §4 says multi-hop
//! Internet agents must survive.

use std::time::Duration;

use tacoma_core::{folders, AgentSpec, Briefcase, EventKind, LinkSpec, Principal, SystemBuilder};

/// On a lossy link, `go` fails sometimes; the Figure-4 failure branch plus
/// a retry loop gets the agent through.
#[test]
fn agent_retries_through_a_lossy_link() {
    let mut system = SystemBuilder::new()
        .host("a")
        .unwrap()
        .host("b")
        .unwrap()
        .default_link(LinkSpec::lan_100mbit().with_loss(0.4))
        .seed(1234)
        .trust_all()
        .build();

    let spec = AgentSpec::script(
        "persistent",
        r#"
        fn main() {
            if (host_name() == "b") { display("made it"); exit(0); }
            let attempts = 0;
            while (attempts < 20) {
                attempts = attempts + 1;
                if (go("tacoma://b/vm_script")) {
                    display("lost in transit, attempt " + str(attempts));
                }
            }
            display("gave up");
            exit(1);
        }
        "#,
    );
    system.launch("a", spec).unwrap();
    system.run_until_quiet();

    let out = system.agent_outputs();
    assert_eq!(out.last().map(String::as_str), Some("made it"), "{out:?}");
    // With 40% loss and seed 1234 some attempts must fail; the loss is
    // visible in network stats too.
    assert!(system.network().stats().total_lost() > 0 || out.len() == 1);
}

/// A partition makes the hop fail cleanly; healing restores service for
/// the next traveller.
#[test]
fn partition_fails_cleanly_and_heals() {
    let mut system = SystemBuilder::new()
        .host("a")
        .unwrap()
        .host("b")
        .unwrap()
        .trust_all()
        .build();
    let a = "a".parse().unwrap();
    let b = "b".parse().unwrap();
    system.network().with_topology(|t| {
        t.partition(&a, &b);
    });

    let traveller = |name: &str| {
        AgentSpec::script(
            name,
            r#"
            fn main() {
                if (host_name() == "b") { display("arrived"); exit(0); }
                if (go("tacoma://b/vm_script")) { display("partitioned"); }
                exit(1);
            }
            "#,
        )
    };

    system.launch("a", traveller("first")).unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["partitioned"]);

    system.network().with_topology(|t| {
        t.heal(&a, &b);
    });
    system.launch("a", traveller("second")).unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["partitioned", "arrived"]);
}

/// Queued messages expire after their timeout (§3.2): an agent arriving
/// too late gets nothing.
#[test]
fn queued_mail_expires_before_a_late_arrival() {
    let mut system = SystemBuilder::new()
        .host("a")
        .unwrap()
        .host("b")
        .unwrap()
        .trust_all()
        .build();
    system
        .host("a")
        .unwrap()
        .with_firewall(|fw| fw.set_queue_timeout(Duration::from_millis(50)));

    // Mail for an agent that has not arrived: queued with the timeout.
    let sender = AgentSpec::script(
        "sender",
        r#"
        fn main() {
            bc_set("NOTE", "time-sensitive");
            activate("tacoma://a/latecomer");
            exit(0);
        }
        "#,
    );
    system.launch("b", sender).unwrap();
    system.run_until_quiet();
    assert_eq!(
        system
            .host("a")
            .unwrap()
            .with_firewall(|fw| fw.pending_len()),
        1
    );

    // Virtual time passes beyond the timeout; the firewall sweeps.
    system.clock().advance(Duration::from_secs(2));
    let now = system.clock().now();
    let expired = system
        .host("a")
        .unwrap()
        .with_firewall(|fw| fw.expire_pending(now));
    assert_eq!(expired, 1);

    // The latecomer arrives to an empty mailbox.
    let latecomer = AgentSpec::script(
        "latecomer",
        r#"
        fn main() {
            if (await_bc(10)) { display("got stale mail"); } else { display("mailbox empty"); }
            exit(0);
        }
        "#,
    );
    system.launch("a", latecomer).unwrap();
    system.run_until_quiet();
    assert!(system.agent_outputs().contains(&"mailbox empty".to_owned()));
}

/// The seal wrapper through the kernel: sealed peers communicate; a bare
/// sender's message never reaches the wrapped agent.
#[test]
fn seal_wrapper_blocks_unsealed_senders() {
    let mut system = SystemBuilder::new()
        .host("a")
        .unwrap()
        .host("b")
        .unwrap()
        .trust_all()
        .build();
    let key = "seal:00112233";

    let receiver = AgentSpec::script(
        "vault",
        r#"
        fn main() {
            if (await_bc(1000)) {
                display("accepted: " + bc_get("NOTE", 0));
            } else {
                display("nothing deliverable");
            }
            exit(0);
        }
        "#,
    )
    .wrap(key);

    // A hostile sender without the seal.
    let mallory = AgentSpec::script(
        "mallory",
        r#"
        fn main() {
            bc_set("NOTE", "forged");
            activate("tacoma://a/vault");
            exit(0);
        }
        "#,
    );
    // A legitimate sealed peer.
    let alice = AgentSpec::script(
        "alice",
        r#"
        fn main() {
            bc_set("NOTE", "genuine");
            activate("tacoma://a/vault");
            exit(0);
        }
        "#,
    )
    .wrap(key);

    // Hostile-only world: the vault starves.
    let mut hostile = SystemBuilder::new()
        .host("a")
        .unwrap()
        .host("b")
        .unwrap()
        .trust_all()
        .build();
    hostile.launch("b", mallory.clone()).unwrap();
    hostile.run_until_quiet();
    hostile.launch("a", receiver.clone()).unwrap();
    hostile.run_until_quiet();
    assert_eq!(hostile.agent_outputs(), vec!["nothing deliverable"]);
    let rejected =
        hostile.host("a").unwrap().events().iter().any(
            |e| matches!(&e.kind, EventKind::Wrapper { note, .. } if note.contains("unsealed")),
        );
    assert!(rejected, "the rejection must be observable");

    // Sealed peer world: the message goes through and the seal is
    // stripped before the agent reads it.
    system.launch("b", alice).unwrap();
    system.run_until_quiet();
    system.launch("a", receiver).unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["accepted: genuine"]);
}

/// ag_fs rights enforcement through the kernel: a restricted principal
/// can read but not write.
#[test]
fn ag_fs_enforces_rights() {
    use tacoma_core::{HostBuilder, Policy, Rights};

    // Authenticated agents get standard rights (no FS_WRITE).
    let host = HostBuilder::new("a").unwrap().policy(Policy::new());
    let mut system = SystemBuilder::new().host_with(host).trust_all().build();

    let spec = AgentSpec::script(
        "scribe",
        r#"
        fn main() {
            bc_set("CMD", "write");
            bc_set("ARGS", "/notes.txt");
            bc_set("DATA", "hello");
            if (meet("ag_fs")) {
                display("write: " + bc_get("STATUS", 0));
            }
            exit(0);
        }
        "#,
    )
    .owned_by(Principal::new("bob").unwrap());
    system.launch("a", spec).unwrap();
    system.run_until_quiet();
    let out = system.agent_outputs();
    assert_eq!(out.len(), 1);
    assert!(
        out[0].contains("error") && out[0].contains("FS_WRITE"),
        "{out:?}"
    );

    // Direct service access as the system principal (full rights) works.
    let principal = Principal::local_system("a");
    let mut request = Briefcase::new();
    request.set_single(folders::COMMAND, "write");
    request.append(folders::ARGS, "/notes.txt");
    request.set_single("DATA", "hello".as_bytes().to_vec());
    let reply = system
        .call_service("a", "ag_fs", &principal, request)
        .unwrap();
    assert_eq!(reply.single_str(folders::STATUS).unwrap(), "ok");

    let mut read = Briefcase::new();
    read.set_single(folders::COMMAND, "read");
    read.append(folders::ARGS, "/notes.txt");
    let reply = system.call_service("a", "ag_fs", &principal, read).unwrap();
    assert_eq!(reply.element("DATA", 0).unwrap().data(), b"hello");
    let _ = Rights::FS_WRITE; // referenced for the reader
}

/// A dead destination host mid-`spawn`: the parent sees the failure and
/// keeps running.
#[test]
fn spawn_to_dead_host_fails_softly() {
    let mut system = SystemBuilder::new()
        .host("a")
        .unwrap()
        .host("b")
        .unwrap()
        .trust_all()
        .build();
    system.network().with_topology(|t| {
        t.crash_host(&"b".parse().unwrap());
    });
    let spec = AgentSpec::script(
        "parent",
        r#"
        fn main() {
            let child = spawn("tacoma://b/vm_script");
            if (child == nil) { display("spawn failed, continuing"); }
            display("parent alive");
            exit(0);
        }
        "#,
    );
    system.launch("a", spec).unwrap();
    system.run_until_quiet();
    assert_eq!(
        system.agent_outputs(),
        vec!["spawn failed, continuing", "parent alive"]
    );
}
