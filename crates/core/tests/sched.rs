//! The tick scheduler: identical event traces across worker counts, run
//! outcomes, and step-budget exhaustion.

use proptest::prelude::*;
use tacoma_core::{
    AgentSpec, EventKind, HostEvent, LinkSpec, RunOutcome, SystemBuilder, TaxSystem,
};

const PAIRS: usize = 4;

/// A fleet of disjoint client/server pairs — the shape the parallel
/// scheduler exists for: every pair's agent works its own two hosts.
fn fleet(threads: usize, seed: u64, loss: f64) -> TaxSystem {
    let mut b = SystemBuilder::new()
        .seed(seed)
        .threads(threads)
        .default_link(LinkSpec::lan_100mbit().with_loss(loss));
    for i in 0..PAIRS {
        b = b.host(&format!("client{i}")).unwrap();
        b = b.host(&format!("server{i}")).unwrap();
    }
    b.trust_all().build()
}

fn launch_walkers(system: &mut TaxSystem) {
    for i in 0..PAIRS {
        let spec = AgentSpec::script(
            "walker",
            r#"
            fn main() {
                display("visiting " + host_name());
                bc_append("SEEN", host_name());
                let next = bc_remove("HOSTS", 0);
                if (next == nil) {
                    display("done " + str(bc_len("SEEN")));
                    exit(0);
                }
                go(next);
            }
            "#,
        )
        .itinerary([
            format!("tacoma://server{i}/vm_script"),
            format!("tacoma://client{i}/vm_script"),
            format!("tacoma://server{i}/vm_script"),
            format!("tacoma://client{i}/vm_script"),
        ]);
        system.launch(&format!("client{i}"), spec).unwrap();
    }
}

fn trace(threads: usize, seed: u64, loss: f64) -> Vec<(String, HostEvent)> {
    let mut system = fleet(threads, seed, loss);
    launch_walkers(&mut system);
    assert!(system.run_until_quiet().quiesced());
    system.events()
}

#[test]
fn tick_mode_completes_disjoint_fleets() {
    let mut system = fleet(4, 7, 0.0);
    launch_walkers(&mut system);
    let outcome = system.run_until_quiet();
    assert!(outcome.quiesced());
    let done: Vec<String> = system
        .agent_outputs()
        .into_iter()
        .filter(|l| l.starts_with("done"))
        .collect();
    assert_eq!(done.len(), PAIRS);
    assert!(done.iter().all(|l| l == "done 5"), "{done:?}");
}

/// The determinism contract: with the tick scheduler, one worker and
/// many workers produce byte-identical event traces for the same seed.
#[test]
fn one_and_four_workers_produce_identical_traces() {
    let single = trace(1, 42, 0.0);
    let multi = trace(4, 42, 0.0);
    assert!(!single.is_empty());
    assert_eq!(single, multi);
}

/// Worker-count independence holds on lossy links too — every batch's
/// loss randomness comes from its (seed, host, tick) stream, not from
/// which thread happened to run it.
#[test]
fn lossy_links_stay_deterministic_across_worker_counts() {
    let single = trace(1, 9, 0.25);
    let multi = trace(4, 9, 0.25);
    assert_eq!(single, multi);
}

#[test]
fn run_until_quiet_reports_quiescence() {
    let mut system = fleet(0, 1, 0.0);
    launch_walkers(&mut system);
    let outcome = system.run_until_quiet();
    assert!(outcome.quiesced());
    assert!(outcome.steps() > 0);
    assert!(matches!(outcome, RunOutcome::Quiesced { .. }));
}

/// An agent ping-pong loop never quiesces: `run_for` must say so
/// honestly and leave a scheduler warning in the event log.
#[test]
fn step_budget_exhaustion_is_distinguished_and_logged() {
    let mut system = SystemBuilder::new()
        .host("alpha")
        .unwrap()
        .host("beta")
        .unwrap()
        .trust_all()
        .build();
    let spec = AgentSpec::script(
        "pingpong",
        r#"
        fn main() {
            if (host_name() == "alpha") {
                go("tacoma://beta/vm_script");
            } else {
                go("tacoma://alpha/vm_script");
            }
        }
        "#,
    );
    system.launch("alpha", spec).unwrap();

    let outcome = system.run_for(40);
    assert!(!outcome.quiesced());
    assert_eq!(outcome.steps(), 40);
    assert!(matches!(
        outcome,
        RunOutcome::StepBudgetExhausted { steps: 40 }
    ));
    assert!(!system.is_quiet());

    let warned = system.events().iter().any(|(_, e)| {
        matches!(&e.kind, EventKind::Scheduler(note) if note.contains("step budget exhausted"))
    });
    assert!(warned, "exhaustion must leave a scheduler event");
}

/// Switching thread count after build (what `taxd --threads` does) keeps
/// the system functional in either direction.
#[test]
fn set_threads_switches_modes() {
    let mut system = fleet(0, 3, 0.0);
    assert_eq!(system.threads(), 0);
    system.set_threads(2);
    assert_eq!(system.threads(), 2);
    launch_walkers(&mut system);
    assert!(system.run_until_quiet().quiesced());
    let done = system
        .agent_outputs()
        .iter()
        .filter(|l| l.starts_with("done"))
        .count();
    assert_eq!(done, PAIRS);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary seeds and loss rates, the tick scheduler's trace is
    /// a pure function of the seed — never of the worker count.
    #[test]
    fn traces_are_worker_count_invariant(seed in any::<u64>(), loss_pct in 0u32..30) {
        let loss = f64::from(loss_pct) / 100.0;
        let single = trace(1, seed, loss);
        let multi = trace(4, seed, loss);
        prop_assert_eq!(single, multi);
    }
}
