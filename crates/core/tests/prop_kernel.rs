//! Property-based tests over the whole kernel: random itineraries are
//! honoured, briefcase payloads survive migration bit-exact, and the
//! admin surface is total.

use proptest::prelude::*;
use tacoma_core::{AgentSpec, Element, Principal, SystemBuilder, TaxSystem};

const HOSTS: [&str; 4] = ["h1", "h2", "h3", "h4"];

fn system() -> TaxSystem {
    let mut b = SystemBuilder::new();
    for h in HOSTS {
        b = b.host(h).unwrap();
    }
    b.trust_all().build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever itinerary we draw, the agent visits exactly those hosts in
    /// exactly that order.
    #[test]
    fn itineraries_are_honoured(
        stops in prop::collection::vec(0usize..HOSTS.len(), 0..6),
    ) {
        let mut system = system();
        let itinerary: Vec<String> =
            stops.iter().map(|&i| format!("tacoma://{}/vm_script", HOSTS[i])).collect();

        let spec = AgentSpec::script(
            "walker",
            r#"
            fn main() {
                display("at " + host_name());
                let next = bc_remove("HOSTS", 0);
                if (next == nil) { exit(0); }
                go(next);
            }
            "#,
        )
        .itinerary(itinerary);

        system.launch("h1", spec).unwrap();
        system.run_until_quiet();

        let mut expected = vec!["at h1".to_owned()];
        expected.extend(stops.iter().map(|&i| format!("at {}", HOSTS[i])));
        prop_assert_eq!(system.agent_outputs(), expected);
    }

    /// Arbitrary binary payloads in arbitrary folders survive any number
    /// of hops bit-exact — the briefcase is a faithful carrier.
    #[test]
    fn briefcase_payloads_survive_migration(
        folders in prop::collection::btree_map(
            "[A-Z]{1,6}",
            prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..4),
            1..4,
        ),
        hops in 1usize..4,
    ) {
        let mut sys = system();
        // The agent carries the random cargo the whole way and, at the
        // final host, reports how many elements survived. The briefcase
        // wire-codec property tests already prove bit-exactness of the
        // encoding; here we prove the kernel ships it intact.
        let mut spec = AgentSpec::script(
            "carrier",
            r#"
            fn main() {
                let next = bc_remove("HOSTS", 0);
                if (next != nil) { go(next); }
                display("total " + bc_get("EXPECT", 0) + " == " + str(bc_len("PROOF")));
                exit(0);
            }
            "#,
        )
        .itinerary((0..hops).map(|i| format!("tacoma://{}/vm_script", HOSTS[(i + 1) % HOSTS.len()])));
        let mut proof: Vec<Element> = Vec::new();
        let mut total = 0usize;
        for elements in folders.values() {
            for e in elements {
                proof.push(Element::from(e.clone()));
                total += 1;
            }
        }
        spec = spec.folder("PROOF", proof).folder("EXPECT", [total.to_string()]);
        sys.launch("h1", spec).unwrap();
        sys.run_until_quiet();
        let out = sys.agent_outputs();
        prop_assert_eq!(out.len(), 1, "{:?}", out);
        prop_assert_eq!(out[0].clone(), format!("total {total} == {total}"));
    }

    /// The admin surface never panics for arbitrary command/argument
    /// text — hostile tooling gets errors, not crashes.
    #[test]
    fn admin_is_total(command in "\\PC{0,16}", arg in "\\PC{0,24}") {
        let mut system = system();
        let admin = Principal::local_system("h1");
        let _ = system.admin("h1", &admin, &command, &[&arg]);
    }
}
