//! The pooled tick path stays trace-identical to the inline path.
//!
//! The scheduler clamps fan-out to `available_parallelism`, so on a
//! small CI machine the multi-worker configurations in `sched.rs` may
//! legitimately run inline. These tests force the pooled path with
//! [`SystemBuilder::scheduler_cores`] so the worker-pool machinery is
//! exercised — and proven trace-invariant — regardless of the machine
//! the suite runs on.

use proptest::prelude::*;
use tacoma_core::{AgentSpec, HostEvent, LinkSpec, SystemBuilder, TaxSystem};

const PAIRS: usize = 4;

fn fleet(threads: usize, forced_cores: Option<usize>, seed: u64, loss: f64) -> TaxSystem {
    let mut b = SystemBuilder::new()
        .seed(seed)
        .threads(threads)
        .default_link(LinkSpec::lan_100mbit().with_loss(loss));
    if let Some(cores) = forced_cores {
        b = b.scheduler_cores(cores);
    }
    for i in 0..PAIRS {
        b = b.host(&format!("client{i}")).unwrap();
        b = b.host(&format!("server{i}")).unwrap();
    }
    b.trust_all().build()
}

fn launch_walkers(system: &mut TaxSystem) {
    for i in 0..PAIRS {
        let spec = AgentSpec::script(
            "walker",
            r#"
            fn main() {
                display("visiting " + host_name());
                bc_append("SEEN", host_name());
                let next = bc_remove("HOSTS", 0);
                if (next == nil) {
                    display("done " + str(bc_len("SEEN")));
                    exit(0);
                }
                go(next);
            }
            "#,
        )
        .itinerary([
            format!("tacoma://server{i}/vm_script"),
            format!("tacoma://client{i}/vm_script"),
            format!("tacoma://server{i}/vm_script"),
            format!("tacoma://client{i}/vm_script"),
        ]);
        system.launch(&format!("client{i}"), spec).unwrap();
    }
}

fn trace(
    threads: usize,
    forced_cores: Option<usize>,
    seed: u64,
    loss: f64,
) -> Vec<(String, HostEvent)> {
    let mut system = fleet(threads, forced_cores, seed, loss);
    launch_walkers(&mut system);
    assert!(system.run_until_quiet().quiesced());
    system.events()
}

#[test]
fn forced_pool_matches_inline_trace() {
    // `scheduler_cores(1)` pins the inline path; `scheduler_cores(4)`
    // forces genuine fan-out even on a single-core machine.
    let inline = trace(4, Some(1), 42, 0.0);
    let pooled = trace(4, Some(4), 42, 0.0);
    assert!(!inline.is_empty());
    assert_eq!(inline, pooled);
}

#[test]
fn forced_pool_matches_inline_trace_with_loss() {
    let inline = trace(4, Some(1), 1900, 0.2);
    let pooled = trace(4, Some(4), 1900, 0.2);
    assert_eq!(inline, pooled);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The determinism contract holds on the pooled path for arbitrary
    /// seeds, loss rates, and worker counts.
    #[test]
    fn pooled_trace_is_worker_count_invariant(
        seed in any::<u64>(),
        loss_pct in 0u32..30,
        workers in 2u32..6,
    ) {
        let loss = f64::from(loss_pct) / 100.0;
        let workers = workers as usize;
        let inline = trace(1, Some(1), seed, loss);
        let pooled = trace(workers, Some(workers), seed, loss);
        prop_assert_eq!(inline, pooled);
    }
}
