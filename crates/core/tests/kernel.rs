//! End-to-end kernel tests: agents moving, communicating, and being
//! mediated across a multi-host system.

use tacoma_core::{
    AgentSpec, EventKind, Keyring, LinkSpec, Outcome, Principal, SystemBuilder, TaxSystem,
};

fn three_hosts() -> TaxSystem {
    SystemBuilder::new()
        .host("alpha")
        .unwrap()
        .host("beta")
        .unwrap()
        .host("gamma")
        .unwrap()
        .trust_all()
        .build()
}

/// The Figure 4 agent: hop the full itinerary, displaying at each host.
#[test]
fn figure4_itinerary_visits_every_host() {
    let mut system = three_hosts();
    let spec = AgentSpec::script(
        "hello",
        r#"
        fn main() {
            display("Hello world from " + host_name());
            let next = bc_remove("HOSTS", 0);
            if (next == nil) { exit(0); }
            if (go(next)) { display("Unable to reach " + next); }
        }
        "#,
    )
    .itinerary(["tacoma://beta/vm_script", "tacoma://gamma/vm_script"]);

    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();

    assert_eq!(
        system.agent_outputs(),
        vec![
            "Hello world from alpha",
            "Hello world from beta",
            "Hello world from gamma",
        ]
    );
    // The final host records the exit.
    let gamma = system.host("gamma").unwrap();
    assert!(gamma
        .events()
        .iter()
        .any(|e| matches!(e.kind, EventKind::Completed(Outcome::Exit(0)))));
}

/// Figure 4's failure branch: a crashed host is unreachable, the agent
/// reports it and carries on.
#[test]
fn unreachable_host_takes_failure_branch() {
    let mut system = three_hosts();
    system.network().with_topology(|t| {
        t.crash_host(&"beta".parse().unwrap());
    });

    let spec = AgentSpec::script(
        "hello",
        r#"
        fn main() {
            while (1) {
                let next = bc_remove("HOSTS", 0);
                if (next == nil) { exit(0); }
                if (go(next)) { display("Unable to reach " + next); }
            }
        }
        "#,
    )
    .itinerary(["tacoma://beta/vm_script", "tacoma://gamma/vm_script"]);

    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();
    assert_eq!(
        system.agent_outputs(),
        vec!["Unable to reach tacoma://beta/vm_script"]
    );
    // It still reached gamma afterwards.
    let gamma = system.host("gamma").unwrap();
    assert!(gamma
        .events()
        .iter()
        .any(|e| matches!(e.kind, EventKind::Installed { .. })));
}

/// The briefcase carries accumulated results home (the §4 data-mining
/// shape): state mutated at each hop survives the moves.
#[test]
fn briefcase_state_accumulates_across_hops() {
    let mut system = three_hosts();
    let spec = AgentSpec::script(
        "miner",
        r#"
        fn main() {
            bc_append("VISITED", host_name());
            let next = bc_remove("HOSTS", 0);
            if (next == nil) {
                display("route " + str(bc_len("VISITED")));
                display(bc_get("VISITED", 0) + ">" + bc_get("VISITED", 1) + ">" + bc_get("VISITED", 2));
                exit(0);
            }
            go(next);
        }
        "#,
    )
    .itinerary(["tacoma://beta/vm_script", "tacoma://gamma/vm_script"]);
    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["route 3", "alpha>beta>gamma"]);
}

/// meet() against a local service agent is synchronous RPC (§3.1).
#[test]
fn meet_local_service_round_trips() {
    let mut system = three_hosts();
    let spec = AgentSpec::script(
        "client",
        r#"
        fn main() {
            bc_set("CMD", "compile");
            bc_set("SOURCE", "fn main() { exit(3); }");
            if (meet("ag_cc")) {
                display("compiled " + bc_get("INSTR-COUNT", 0) + " instrs, status " + bc_get("STATUS", 0));
            } else {
                display("meet failed");
            }
            exit(0);
        }
        "#,
    );
    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();
    let output = system.agent_outputs();
    assert_eq!(output.len(), 1);
    assert!(
        output[0].starts_with("compiled ") && output[0].ends_with("status ok"),
        "{output:?}"
    );
}

/// meet() against a *remote* service charges the network and returns the
/// reply.
#[test]
fn meet_remote_service_charges_network() {
    let mut system = three_hosts();
    let spec = AgentSpec::script(
        "client",
        r#"
        fn main() {
            bc_set("CMD", "append");
            bc_append("ARGS", "hello from alpha");
            if (meet("tacoma://beta/ag_log")) { display("logged"); }
            exit(0);
        }
        "#,
    );
    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["logged"]);

    let net = system.network();
    let a: tacoma_core::HostId = "alpha".parse().unwrap();
    let b: tacoma_core::HostId = "beta".parse().unwrap();
    let stats = net.stats();
    assert!(
        stats.pair(&a, &b).bytes > 0,
        "request bytes must be charged"
    );
    assert!(stats.pair(&b, &a).bytes > 0, "reply bytes must be charged");
}

/// activate()/await_bc(): asynchronous send into a mailbox.
#[test]
fn activate_and_await_between_agents() {
    let mut system = three_hosts();

    // The receiver registers, then waits for mail.
    let receiver = AgentSpec::script(
        "receiver",
        r#"
        fn main() {
            if (await_bc(1000)) {
                display("got " + bc_get("PAYLOAD", 0));
            } else {
                display("no mail");
            }
            exit(0);
        }
        "#,
    );
    // The sender fires a message at the receiver by name.
    let sender = AgentSpec::script(
        "sender",
        r#"
        fn main() {
            bc_set("PAYLOAD", "ping");
            activate("tacoma://alpha/receiver");
            exit(0);
        }
        "#,
    );

    // Launch the sender first: its message is *queued* because the
    // receiver has not arrived (§3.2), then flushed on registration.
    let mut system2 = three_hosts();
    system2.launch("beta", sender.clone()).unwrap();
    system2.run_until_quiet();
    system2.launch("alpha", receiver.clone()).unwrap();
    system2.run_until_quiet();
    assert_eq!(system2.agent_outputs(), vec!["got ping"]);

    // And the no-mail branch: the receiver alone times out.
    system.launch("alpha", receiver).unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["no mail"]);
}

/// spawn(): the child gets a fresh instance reported back to the parent,
/// and both run to completion.
#[test]
fn spawn_forks_a_child_with_reported_instance() {
    let mut system = three_hosts();
    let spec = AgentSpec::script(
        "forker",
        r#"
        fn main() {
            if (bc_has("CHILD")) {
                display("child at " + host_name());
                exit(0);
            }
            bc_set("CHILD", 1);
            let inst = spawn("tacoma://beta/vm_script");
            if (inst == nil) {
                display("spawn failed");
            } else {
                display("spawned child instance " + inst);
            }
            exit(0);
        }
        "#,
    );
    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();
    let out = system.agent_outputs();
    assert_eq!(out.len(), 2, "{out:?}");
    assert!(out[0].starts_with("spawned child instance "));
    assert_eq!(out[1], "child at beta");
}

/// Signed agents are authenticated by remote firewalls; tampering or
/// unknown principals are rejected under a strict policy.
#[test]
fn strict_policy_requires_signatures() {
    use tacoma_core::{HostBuilder, Policy};
    let alice = Keyring::generate(&Principal::new("alice").unwrap(), 11);

    let strict_beta = HostBuilder::new("beta")
        .unwrap()
        .policy(Policy::new()) // authenticated-only
        .trust_key(alice.public());
    let mut system = SystemBuilder::new()
        .host("alpha")
        .unwrap()
        .host_with(strict_beta)
        .build();

    let code = r#"
        fn main() {
            let next = bc_remove("HOSTS", 0);
            if (next == nil) { display("arrived " + host_name()); exit(0); }
            if (go(next)) { display("rejected"); }
            exit(0);
        }
    "#;

    // Unsigned: beta's firewall refuses the transfer.
    let unsigned = AgentSpec::script("anon", code).itinerary(["tacoma://beta/vm_script"]);
    system.launch("alpha", unsigned).unwrap();
    system.run_until_quiet();
    let beta = system.host("beta").unwrap();
    assert!(
        beta.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Rejected(_))),
        "unsigned agent must be rejected: {:?}",
        beta.events()
    );
    assert!(!system.agent_outputs().iter().any(|l| l == "arrived beta"));

    // Signed by the trusted key: lands and runs.
    let signed = AgentSpec::script("signed", code)
        .signed_by(alice)
        .itinerary(["tacoma://beta/vm_script"]);
    system.launch("alpha", signed).unwrap();
    system.run_until_quiet();
    assert!(system.agent_outputs().iter().any(|l| l == "arrived beta"));
}

/// Admin operations: list shows registered agents; kill removes a queued
/// agent before it runs.
#[test]
fn admin_list_and_kill() {
    let mut system = three_hosts();
    let spec = AgentSpec::script("victim", r#"fn main() { display("ran"); exit(0); }"#);
    let address = system.launch("alpha", spec).unwrap();

    let admin = Principal::local_system("alpha");
    let reply = system.admin("alpha", &admin, "list", &[]).unwrap();
    let agents: Vec<String> = reply
        .folder("AGENTS")
        .map(|f| f.iter().map(|e| e.as_str().unwrap().to_owned()).collect())
        .unwrap_or_default();
    assert!(
        agents.iter().any(|line| line.contains("victim")),
        "list must show the queued agent: {agents:?}"
    );

    system
        .admin("alpha", &admin, "kill", &[&address.to_string()])
        .unwrap();
    system.run_until_quiet();
    assert!(
        system.agent_outputs().is_empty(),
        "killed agent must never run"
    );
}

/// stop parks a queued agent; resume lets it run.
#[test]
fn admin_stop_and_resume() {
    let mut system = three_hosts();
    let spec = AgentSpec::script("pausable", r#"fn main() { display("ran"); exit(0); }"#);
    let address = system.launch("alpha", spec).unwrap();
    let admin = Principal::local_system("alpha");
    system
        .admin("alpha", &admin, "stop", &[&address.to_string()])
        .unwrap();
    system.run_until_quiet();
    assert!(
        system.agent_outputs().is_empty(),
        "stopped agent must not run"
    );

    system
        .admin("alpha", &admin, "resume", &[&address.to_string()])
        .unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["ran"]);
}

/// The vm_c pipeline (Figure 3) works through the kernel: source arrives,
/// is compiled on-site, and the binary travels on the next hop.
#[test]
fn vm_c_pipeline_through_kernel() {
    let mut system = three_hosts();
    let spec = AgentSpec::script(
        "csource",
        r#"fn main() { display("compiled and ran on " + host_name()); exit(0); }"#,
    )
    .on_vm("vm_c");
    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["compiled and ran on alpha"]);
    // The execution trace records the 7 steps.
    let alpha = system.host("alpha").unwrap();
    let has_pipeline = alpha.events().iter().any(|e| match &e.kind {
        EventKind::ExecutionTrace(lines) => lines.iter().any(|l| l.starts_with("7:")),
        _ => false,
    });
    assert!(has_pipeline, "expected the Figure-3 trace");
}

/// Faulting agents are contained: the error is recorded, the system stays
/// up, and other agents keep running.
#[test]
fn agent_faults_are_contained() {
    let mut system = three_hosts();
    system
        .launch(
            "alpha",
            AgentSpec::script("crasher", "fn main() { let x = 1 / 0; }"),
        )
        .unwrap();
    system
        .launch(
            "alpha",
            AgentSpec::script("survivor", r#"fn main() { display("alive"); }"#),
        )
        .unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["alive"]);
    let alpha = system.host("alpha").unwrap();
    assert!(alpha
        .events()
        .iter()
        .any(|e| matches!(e.kind, EventKind::Faulted(_))));
}

/// Network bytes for a `go` scale with the carried briefcase: dropping
/// state before moving saves bandwidth (§3.1's "drop state no longer
/// needed").
#[test]
fn dropping_state_before_go_saves_bandwidth() {
    let payload = "x".repeat(100_000);

    let run = |drop_state: bool| {
        let mut system = SystemBuilder::new()
            .host("alpha")
            .unwrap()
            .host("beta")
            .unwrap()
            .default_link(LinkSpec::lan_100mbit())
            .trust_all()
            .build();
        let code = if drop_state {
            r#"fn main() {
                if (host_name() == "beta") { exit(0); }
                bc_clear("BULK");
                go("tacoma://beta/vm_script");
            }"#
        } else {
            r#"fn main() {
                if (host_name() == "beta") { exit(0); }
                go("tacoma://beta/vm_script");
            }"#
        };
        let spec = AgentSpec::script("mover", code).folder("BULK", [payload.as_str()]);
        system.launch("alpha", spec).unwrap();
        system.run_until_quiet();
        let stats = system.network().stats();
        stats
            .pair(&"alpha".parse().unwrap(), &"beta".parse().unwrap())
            .bytes
    };

    let heavy = run(false);
    let light = run(true);
    assert!(heavy > light + 90_000, "heavy={heavy} light={light}");
}

/// Firewall mediation is total: local sends, remote sends, and transfers
/// all show up in firewall statistics (the Figure 1 property).
#[test]
fn firewall_mediates_everything() {
    let mut system = three_hosts();
    let spec = AgentSpec::script(
        "busy",
        r#"
        fn main() {
            if (host_name() == "beta") { exit(0); }
            bc_set("CMD", "list");
            bc_append("ARGS", "/");
            activate("ag_fs");
            go("tacoma://beta/vm_script");
        }
        "#,
    );
    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();

    let alpha_stats = system.host("alpha").unwrap().with_firewall(|fw| fw.stats());
    assert!(
        alpha_stats.forwarded_remote >= 1,
        "the go() must be mediated: {alpha_stats}"
    );
    let beta_stats = system.host("beta").unwrap().with_firewall(|fw| fw.stats());
    assert!(
        beta_stats.agents_installed >= 1,
        "the arrival must be mediated: {beta_stats}"
    );
}

/// A Briefcase sent with REPLY-TO set gets the service's reply delivered
/// back asynchronously.
#[test]
fn activate_service_with_reply_to() {
    let mut system = three_hosts();
    let spec = AgentSpec::script(
        "asker",
        r#"
        fn main() {
            bc_set("CMD", "compile");
            bc_set("SOURCE", "fn main() { }");
            bc_set("REPLY-TO", "tacoma://alpha/asker");
            activate("tacoma://beta/ag_cc");
            if (await_bc(2000)) {
                display("reply status " + bc_get("STATUS", 0));
            } else {
                display("no reply");
            }
            exit(0);
        }
        "#,
    );
    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["reply status ok"]);
}

/// The admin `runtime` query reports how long an agent has been
/// registered (§3.2's "determining their run time").
#[test]
fn admin_runtime_query() {
    let mut system = three_hosts();
    // A long-lived agent that waits around.
    let spec = AgentSpec::script("lingerer", r#"fn main() { await_bc(5000); exit(0); }"#);
    let address = system.launch("alpha", spec).unwrap();

    // Let virtual time pass before asking.
    system.clock().advance(std::time::Duration::from_secs(3));
    let admin = Principal::local_system("alpha");
    let mut args_now = system.clock().now().as_nanos().to_string();
    args_now.truncate(args_now.len()); // explicit clock sample
    let reply = system
        .admin("alpha", &admin, "runtime", &[&address.to_string()])
        .unwrap();
    // The reply carries a runtime folder; without a NOW-NS hint it
    // reports relative to registration (zero or more).
    assert!(reply.single_i64("RUNTIME-MS").unwrap() >= 0);
    system.run_until_quiet();
}

/// An artifact bundle with no payload for the host's architecture faults
/// cleanly — the §5 multi-architecture list done wrong.
#[test]
fn wrong_architecture_bundle_faults_cleanly() {
    use tacoma_core::{Architecture, ArtifactBundle, BinaryArtifact};
    let mut system = three_hosts();
    let bundle = ArtifactBundle::new().with(BinaryArtifact::native(
        "x",
        Architecture::sparc_solaris(),
        "x",
        100,
    ));
    let spec = AgentSpec::bundle("misfit", bundle);
    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();
    let alpha = system.host("alpha").unwrap();
    let faulted = alpha
        .events()
        .iter()
        .any(|e| matches!(&e.kind, EventKind::Faulted(msg) if msg.contains("architecture")));
    assert!(faulted, "{:?}", alpha.events());
}

/// A bundle referencing a native program the host never installed faults
/// with a precise error (COTS binary not deployed).
#[test]
fn missing_native_program_faults_cleanly() {
    use tacoma_core::{Architecture, ArtifactBundle, BinaryArtifact};
    let mut system = three_hosts();
    let bundle = ArtifactBundle::new().with(BinaryArtifact::native(
        "ghostware",
        Architecture::simulated(),
        "ghostware",
        100,
    ));
    system
        .launch("alpha", AgentSpec::bundle("ghost", bundle))
        .unwrap();
    system.run_until_quiet();
    let alpha = system.host("alpha").unwrap();
    assert!(alpha
        .events()
        .iter()
        .any(|e| { matches!(&e.kind, EventKind::Faulted(msg) if msg.contains("ghostware")) }));
}

/// The paper's future-work "additional virtual machines": hosts can
/// expose extra script-VM landing pads, and agents address them by name.
#[test]
fn extra_script_vms_are_addressable() {
    use tacoma_core::HostBuilder;
    let beta = HostBuilder::new("beta")
        .unwrap()
        .extra_script_vms(["vm_perl", "vm_tcl"]);
    let mut system = SystemBuilder::new()
        .host("alpha")
        .unwrap()
        .host_with(beta)
        .trust_all()
        .build();
    let spec = AgentSpec::script(
        "polyglot",
        r#"
        fn main() {
            if (host_name() == "beta") { display("landed on vm_perl"); exit(0); }
            go("tacoma://beta/vm_perl");
        }
        "#,
    );
    system.launch("alpha", spec).unwrap();
    system.run_until_quiet();
    assert_eq!(system.agent_outputs(), vec!["landed on vm_perl"]);
}
