//! The §4 wrapper mechanism, end to end: stacking, monitoring, location
//! transparency, and ordered group communication — all without modifying
//! the wrapped agents.

use std::sync::Arc;

use tacoma_core::wrappers::AgLocator;
use tacoma_core::{folders, AgentSpec, Briefcase, EventKind, Principal, SystemBuilder, TaxSystem};

fn system_with(hosts: &[&str]) -> TaxSystem {
    let mut b = SystemBuilder::new();
    for h in hosts {
        b = b.host(h).unwrap();
    }
    b.trust_all().build()
}

/// The monitoring wrapper (rwWebbot): every move is reported to a log
/// service at the home host, without the agent's code mentioning it.
#[test]
fn monitor_wrapper_reports_moves_to_home_log() {
    let mut system = system_with(&["home", "s1", "s2"]);
    let spec = AgentSpec::script(
        "roamer",
        r#"
        fn main() {
            let next = bc_remove("HOSTS", 0);
            if (next == nil) { exit(0); }
            go(next);
        }
        "#,
    )
    .itinerary(["tacoma://s1/vm_script", "tacoma://s2/vm_script"])
    .wrap("monitor:tacoma://home/ag_log");

    system.launch("home", spec).unwrap();
    system.run_until_quiet();

    // The home log received one report per hop.
    let principal = Principal::local_system("home");
    let mut read = Briefcase::new();
    read.set_single(folders::COMMAND, "read");
    let reply = system
        .call_service("home", "ag_log", &principal, read)
        .unwrap();
    let lines: Vec<String> = reply
        .folder("LINES")
        .map(|f| f.iter().map(|e| e.as_str().unwrap().to_owned()).collect())
        .unwrap_or_default();
    assert_eq!(lines.len(), 2, "one report per hop: {lines:?}");
    assert!(
        lines[0].contains("home -> tacoma://s1/vm_script"),
        "{lines:?}"
    );
    assert!(
        lines[1].contains("s1 -> tacoma://s2/vm_script"),
        "{lines:?}"
    );
}

/// The monitoring wrapper absorbs status queries and answers them itself —
/// the wrapped agent never sees monitoring traffic.
#[test]
fn monitor_wrapper_answers_status_queries() {
    let mut system = system_with(&["home", "s1"]);

    // A long-lived agent that waits for real mail.
    let worker = AgentSpec::script(
        "worker",
        r#"
        fn main() {
            if (await_bc(5000)) {
                display("worker got real mail: " + bc_get("NOTE", 0));
            } else {
                display("worker got nothing");
            }
            exit(0);
        }
        "#,
    )
    .wrap("monitor:tacoma://home/ag_log");
    system.launch("s1", worker).unwrap();

    // A prober sends a status query (answered by the wrapper), then a
    // real message (passed through to the agent).
    let prober = AgentSpec::script(
        "prober",
        r#"
        fn main() {
            bc_set("CMD", "status");
            bc_set("REPLY-TO", "tacoma://home/prober");
            activate("tacoma://s1/worker");
            if (await_bc(5000)) {
                display("status says " + bc_get("LOCATION", 0));
            }
            bc_clear("CMD");
            bc_clear("REPLY-TO");
            bc_clear("LOCATION");
            bc_clear("AGENT");
            bc_clear("HOPS");
            bc_clear("STATUS");
            bc_set("NOTE", "hello");
            activate("tacoma://s1/worker");
            exit(0);
        }
        "#,
    );
    system.launch("home", prober).unwrap();
    system.run_until_quiet();

    let out = system.agent_outputs();
    assert!(out.contains(&"status says s1".to_owned()), "{out:?}");
    assert!(
        out.contains(&"worker got real mail: hello".to_owned()),
        "{out:?}"
    );
}

/// The location-transparency wrapper: a home locator service always knows
/// where the wrapped agent is.
#[test]
fn location_wrapper_tracks_the_agent() {
    let mut system = system_with(&["home", "s1", "s2"]);
    system
        .host("home")
        .unwrap()
        .add_service(Arc::new(AgLocator::new()));

    let spec = AgentSpec::script(
        "nomad",
        r#"
        fn main() {
            let next = bc_remove("HOSTS", 0);
            if (next == nil) { exit(0); }
            go(next);
        }
        "#,
    )
    .itinerary(["tacoma://s1/vm_script", "tacoma://s2/vm_script"])
    .wrap("location:tacoma://home/ag_locator");

    system.launch("home", spec).unwrap();
    system.run_until_quiet();

    let principal = Principal::local_system("home");
    let mut lookup = Briefcase::new();
    lookup.set_single(folders::COMMAND, "lookup");
    lookup.append(folders::ARGS, "nomad");
    let reply = system
        .call_service("home", "ag_locator", &principal, lookup)
        .unwrap();
    assert_eq!(
        reply.single_str("URI").unwrap(),
        "tacoma://s2/nomad",
        "locator must hold the last hop"
    );
}

/// Group communication, FIFO order: a member multicasts a sequence, the
/// other member delivers it in per-sender order. (Concurrent two-way
/// chatter needs preemptive agents; ordering under adversarial reordering
/// is covered by the `wrappers::ordering` unit tests.)
#[test]
fn group_wrapper_fifo_multicast() {
    let mut system = system_with(&["h1", "h2"]);
    let members = "ga@h1,gb@h2";

    // The sender multicasts three payloads and exits.
    let sender = AgentSpec::script(
        "ga",
        r#"
        fn main() {
            bc_set("BODY", "a1");
            activate("group");
            bc_set("BODY", "a2");
            activate("group");
            bc_set("BODY", "a3");
            activate("group");
            exit(0);
        }
        "#,
    )
    .wrap(format!("group:fifo:{members}"));

    // The receiver drains its mailbox; note the BODY clear before each
    // await, because await merges incoming folders into the briefcase.
    let receiver = AgentSpec::script(
        "gb",
        r#"
        fn main() {
            let n = 0;
            while (n < 3) {
                bc_clear("BODY");
                if (await_bc(2000)) {
                    display(host_name() + " delivered " + bc_get("BODY", 0));
                    n = n + 1;
                } else {
                    display(host_name() + " timed out");
                    exit(1);
                }
            }
            exit(0);
        }
        "#,
    )
    .wrap(format!("group:fifo:{members}"));

    system.launch("h1", sender).unwrap();
    system.launch("h2", receiver).unwrap();
    system.run_until_quiet();

    let out = system.agent_outputs();
    let deliveries: Vec<&String> = out.iter().filter(|l| l.contains("delivered")).collect();
    assert_eq!(
        deliveries,
        ["h2 delivered a1", "h2 delivered a2", "h2 delivered a3"],
        "all output: {out:?}"
    );
}

/// Total (atomic) order: every member delivers the same global sequence,
/// even for the sequencer's own messages.
#[test]
fn group_wrapper_total_order_agrees_across_members() {
    let mut system = system_with(&["h1", "h2", "h3"]);
    let members = "seq@h1,m2@h2,m3@h3";

    let sender = |name: &str, host: &str, body: &str| {
        AgentSpec::script(
            name,
            format!(
                r#"
                fn main() {{
                    bc_set("BODY", "{body}");
                    activate("group");
                    let n = 0;
                    while (n < 2) {{
                        if (await_bc(3000)) {{
                            display("{host}:" + bc_get("BODY", 0));
                            bc_clear("BODY");
                            n = n + 1;
                        }} else {{
                            exit(1);
                        }}
                    }}
                    exit(0);
                }}
                "#
            ),
        )
        .wrap(format!("group:total:{members}"))
    };

    system
        .launch("h1", sender("seq", "h1", "from-seq"))
        .unwrap();
    system.launch("h2", sender("m2", "h2", "from-m2")).unwrap();
    system.launch("h3", sender("m3", "h3", "from-m3")).unwrap();
    system.run_until_quiet();

    let out = system.agent_outputs();
    let order_of = |host: &str| -> Vec<String> {
        out.iter()
            .filter_map(|l| l.strip_prefix(&format!("{host}:")))
            .map(str::to_owned)
            .collect()
    };
    // With total order + self-delivery, each member sees 2 messages
    // (its own plus others, bounded by the await loop) in a sequence
    // consistent with the global one: every member's delivery list is a
    // subsequence of the same total order.
    let o1 = order_of("h1");
    let o2 = order_of("h2");
    let o3 = order_of("h3");
    assert!(
        !o1.is_empty() && !o2.is_empty() && !o3.is_empty(),
        "{out:?}"
    );

    fn is_subsequence(sub: &[String], full: &[String]) -> bool {
        let mut it = full.iter();
        sub.iter().all(|x| it.any(|y| y == x))
    }
    // Reconstruct the global order from the sequencer's own deliveries
    // plus any the others saw.
    let mut global = o1.clone();
    for o in [&o2, &o3] {
        for item in o.iter() {
            if !global.contains(item) {
                global.push(item.clone());
            }
        }
    }
    assert!(
        is_subsequence(&o2, &global),
        "h2 {o2:?} vs global {global:?}; out {out:?}"
    );
    assert!(
        is_subsequence(&o3, &global),
        "h3 {o3:?} vs global {global:?}; out {out:?}"
    );
}

/// Stacked wrappers compose: logging inside monitor (Figure 5 shape),
/// both observing the same move.
#[test]
fn stacked_wrappers_compose() {
    let mut system = system_with(&["home", "s1"]);
    let spec = AgentSpec::script(
        "stacked",
        r#"
        fn main() {
            let next = bc_remove("HOSTS", 0);
            if (next == nil) { exit(0); }
            go(next);
        }
        "#,
    )
    .itinerary(["tacoma://s1/vm_script"])
    .wrap("logging")
    .wrap("monitor:tacoma://home/ag_log");

    system.launch("home", spec).unwrap();
    system.run_until_quiet();

    // The logging wrapper annotated the travelling briefcase; its note is
    // in the home host's event log.
    let home = system.host("home").unwrap();
    let notes: Vec<String> = home
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Wrapper { note, .. } => Some(note.clone()),
            _ => None,
        })
        .collect();
    assert!(
        notes.iter().any(|n| n.contains("moving to")),
        "logging note missing: {notes:?}"
    );
    assert!(
        notes.iter().any(|n| n.contains("reported move")),
        "monitor note missing: {notes:?}"
    );
}
