//! Host event log: what happened on each host, for tests, examples, and
//! the monitoring tools.

use std::fmt;

use tacoma_simnet::SimTime;
use tacoma_taxscript::Outcome;
use tacoma_uri::AgentAddress;

/// One recorded host event.
#[derive(Debug, Clone, PartialEq)]
pub struct HostEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The agent involved, when known.
    pub agent: Option<AgentAddress>,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of host events.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An agent called `display(...)`.
    Display(String),
    /// An agent was installed (launched locally or arrived by transfer).
    Installed {
        /// The VM it was installed on.
        vm: String,
    },
    /// An agent left for another location (`go`).
    Departed {
        /// Destination URI text.
        to: String,
    },
    /// An agent finished its run on this host.
    Completed(Outcome),
    /// An agent faulted; the VM contained the error.
    Faulted(String),
    /// The firewall or kernel rejected something.
    Rejected(String),
    /// A wrapper emitted a note (logging wrapper, monitor reports, …).
    Wrapper {
        /// The wrapper's name.
        wrapper: String,
        /// The note.
        note: String,
    },
    /// A service agent served a request.
    Service {
        /// The service's name.
        service: String,
        /// The command verb served.
        command: String,
    },
    /// The VM's step-by-step execution trace (Figure 3's numbered arrows
    /// for `vm_c`).
    ExecutionTrace(Vec<String>),
    /// A scheduler notice (step-budget exhaustion, batch panic).
    Scheduler(String),
}

impl fmt::Display for HostEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.at)?;
        if let Some(agent) = &self.agent {
            write!(f, "{agent}: ")?;
        }
        match &self.kind {
            EventKind::Display(text) => write!(f, "display {text:?}"),
            EventKind::Installed { vm } => write!(f, "installed on {vm}"),
            EventKind::Departed { to } => write!(f, "departed for {to}"),
            EventKind::Completed(outcome) => write!(f, "completed: {outcome:?}"),
            EventKind::Faulted(err) => write!(f, "faulted: {err}"),
            EventKind::Rejected(err) => write!(f, "rejected: {err}"),
            EventKind::Wrapper { wrapper, note } => write!(f, "wrapper {wrapper}: {note}"),
            EventKind::Service { service, command } => write!(f, "service {service}: {command}"),
            EventKind::ExecutionTrace(lines) => write!(f, "trace: {} steps", lines.len()),
            EventKind::Scheduler(note) => write!(f, "scheduler: {note}"),
        }
    }
}
