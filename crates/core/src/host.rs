//! [`TaxHost`]: one machine of Figure 1 — firewall, virtual machines,
//! service agents, native programs, and the local scheduler state.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::Receiver;
use parking_lot::{Mutex, RwLock};
use tacoma_briefcase::Briefcase;
use tacoma_firewall::Firewall;
use tacoma_security::{Policy, TrustStore};
use tacoma_simnet::Envelope;
use tacoma_simnet::{HostId, SimTime};
use tacoma_uri::{AgentAddress, DEFAULT_PORT};
use tacoma_vm::{Architecture, NativeRegistry, VirtualMachine, VmBin, VmC, VmScript};

use crate::event::{EventKind, HostEvent};
use crate::sched::SystemLogHandle;
use crate::service::ServiceAgent;
use crate::services::{AgCabinet, AgCc, AgExec, AgFs, AgLog};
use crate::wrapper::{WrapperFactory, WrapperStack};
use crate::{wrappers, TaxError};

/// One agent execution scheduled on a host: run `address`'s briefcase on
/// VM `vm`. `hop` carries the journal dedup key of the migration that
/// delivered the agent, if any; the kernel commits it when the task
/// reaches a terminal outcome.
#[derive(Debug, Clone)]
pub(crate) struct AgentTask {
    pub vm: String,
    pub address: AgentAddress,
    pub briefcase: Briefcase,
    pub hop: Option<String>,
}

pub(crate) struct HostCore {
    pub name: HostId,
    pub arch: Architecture,
    pub firewall: RwLock<Firewall>,
    pub services: RwLock<BTreeMap<String, Arc<dyn ServiceAgent>>>,
    pub natives: RwLock<NativeRegistry>,
    pub vms: RwLock<BTreeMap<String, Arc<dyn VirtualMachine>>>,
    pub tasks: Mutex<VecDeque<AgentTask>>,
    pub parked: Mutex<Vec<AgentTask>>,
    pub mailboxes: Mutex<HashMap<AgentAddress, VecDeque<Briefcase>>>,
    pub wrappers: Mutex<HashMap<AgentAddress, WrapperStack>>,
    pub events: Mutex<Vec<HostEvent>>,
    pub inbox: Mutex<Option<Receiver<Envelope>>>,
    pub factory: RwLock<WrapperFactory>,
    /// The host's slot in the merged system log, attached once at
    /// `SystemBuilder::build`. Hosts built standalone (unit tests) have
    /// none and log only locally.
    pub log: std::sync::OnceLock<SystemLogHandle>,
    pub allow_unsigned: bool,
    pub fuel: u64,
    /// The host's durable journal, attached once at daemon boot (hosts in
    /// pure simulations have none). Shared with the firewall; the kernel
    /// uses this handle to commit hops when installed tasks finish.
    pub journal: std::sync::OnceLock<Arc<tacoma_journal::Journal>>,
}

/// A handle to one simulated machine. Cloning shares the host.
#[derive(Clone)]
pub struct TaxHost {
    pub(crate) core: Arc<HostCore>,
}

impl TaxHost {
    /// The host's name.
    pub fn name(&self) -> &str {
        self.core.name.as_str()
    }

    /// The host's [`HostId`].
    pub fn host_id(&self) -> &HostId {
        &self.core.name
    }

    /// The host's architecture tag.
    pub fn arch(&self) -> &Architecture {
        &self.core.arch
    }

    /// Runs `f` with the host's firewall locked for writing.
    pub fn with_firewall<R>(&self, f: impl FnOnce(&mut Firewall) -> R) -> R {
        f(&mut self.core.firewall.write())
    }

    /// Runs `f` with the host's firewall locked for reading — the fast
    /// path for status checks and rights lookups, which concurrent
    /// scheduler batches take without serializing on each other.
    pub fn with_firewall_read<R>(&self, f: impl FnOnce(&Firewall) -> R) -> R {
        f(&self.core.firewall.read())
    }

    /// Installs a native program (e.g. the Webbot binary) under `key`.
    pub fn install_native<F>(&self, key: impl Into<String>, program: F)
    where
        F: Fn(
                &mut Briefcase,
                &mut dyn tacoma_vm::HostHooks,
            ) -> Result<tacoma_vm::Outcome, tacoma_vm::VmError>
            + Send
            + Sync
            + 'static,
    {
        self.core.natives.write().install_fn(key, program);
    }

    /// Installs a native program given as a trait object.
    pub fn install_native_program(
        &self,
        key: impl Into<String>,
        program: Arc<dyn tacoma_vm::NativeProgram>,
    ) {
        self.core.natives.write().install(key, program);
    }

    /// Registers an additional service agent, addressable by its name.
    pub fn add_service(&self, service: Arc<dyn ServiceAgent>) {
        let name = service.name().to_owned();
        {
            let mut firewall = self.core.firewall.write();
            let system = firewall.local_system().clone();
            let instance = firewall.allocate_instance();
            let address = AgentAddress::new(system.as_str(), &name, instance);
            firewall.register_agent(&address, "service", SimTime::ZERO);
        }
        self.core.services.write().insert(name, service);
    }

    /// Looks up a service agent by name.
    pub fn service(&self, name: &str) -> Option<Arc<dyn ServiceAgent>> {
        self.core.services.read().get(name).cloned()
    }

    /// Registers an extra wrapper constructor on this host's factory.
    pub fn register_wrapper<F>(&self, name: impl Into<String>, constructor: F)
    where
        F: Fn(&str) -> Result<Box<dyn crate::Wrapper>, TaxError> + Send + Sync + 'static,
    {
        self.core.factory.write().register(name, constructor);
    }

    /// A snapshot of this host's event log.
    pub fn events(&self) -> Vec<HostEvent> {
        self.core.events.lock().clone()
    }

    /// Clears the event log (between experiment repetitions).
    pub fn clear_events(&self) {
        self.core.events.lock().clear();
        if let Some(handle) = self.core.log.get() {
            handle.log.clear_host(handle.host_idx);
        }
    }

    /// All `display` output recorded on this host, in order.
    pub fn displayed(&self) -> Vec<String> {
        self.core
            .events
            .lock()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Display(text) => Some(text.clone()),
                _ => None,
            })
            .collect()
    }

    /// Number of agent executions waiting on this host.
    pub fn queued_tasks(&self) -> usize {
        self.core.tasks.lock().len()
    }

    /// The briefcase of the next queued agent execution, if any — an
    /// inspection helper for tests and tooling (the queue is unchanged).
    pub fn peek_task_briefcase(&self) -> Option<Briefcase> {
        self.core.tasks.lock().front().map(|t| t.briefcase.clone())
    }

    pub(crate) fn record(&self, at: SimTime, agent: Option<AgentAddress>, kind: EventKind) {
        let event = HostEvent { at, agent, kind };
        if let Some(handle) = self.core.log.get() {
            handle
                .log
                .record(handle.host_idx, self.core.name.as_str(), event.clone());
        }
        self.core.events.lock().push(event);
    }

    pub(crate) fn push_task(&self, task: AgentTask) {
        self.core.tasks.lock().push_back(task);
    }

    pub(crate) fn pop_task(&self) -> Option<AgentTask> {
        self.core.tasks.lock().pop_front()
    }

    /// Takes every queued task at once — a tick's batch snapshot. Tasks
    /// queued afterwards (e.g. agents arriving mid-tick) wait for the
    /// next tick.
    pub(crate) fn drain_tasks(&self) -> Vec<AgentTask> {
        self.core.tasks.lock().drain(..).collect()
    }

    pub(crate) fn push_mail(&self, to: &AgentAddress, briefcase: Briefcase) {
        self.core
            .mailboxes
            .lock()
            .entry(to.clone())
            .or_default()
            .push_back(briefcase);
    }

    pub(crate) fn pop_mail(&self, of: &AgentAddress) -> Option<Briefcase> {
        self.core
            .mailboxes
            .lock()
            .get_mut(of)
            .and_then(VecDeque::pop_front)
    }

    pub(crate) fn set_inbox(&self, inbox: Receiver<Envelope>) {
        *self.core.inbox.lock() = Some(inbox);
    }

    pub(crate) fn try_recv_envelope(&self) -> Option<Envelope> {
        self.core
            .inbox
            .lock()
            .as_ref()
            .and_then(|rx| rx.try_recv().ok())
    }

    pub(crate) fn inbox_is_empty(&self) -> bool {
        self.core
            .inbox
            .lock()
            .as_ref()
            .is_none_or(crossbeam::channel::Receiver::is_empty)
    }

    pub(crate) fn drop_agent_state(&self, address: &AgentAddress) {
        self.core.mailboxes.lock().remove(address);
        self.core.wrappers.lock().remove(address);
    }

    /// Attaches the host's durable journal (at most once, at daemon
    /// boot): both the firewall (parking, shipping) and the kernel (hop
    /// completion) journal through the same handle.
    pub fn attach_journal(&self, journal: Arc<tacoma_journal::Journal>) {
        self.with_firewall(|fw| fw.set_journal(Arc::clone(&journal)));
        let _ = self.core.journal.set(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<tacoma_journal::Journal>> {
        self.core.journal.get()
    }
}

impl std::fmt::Debug for TaxHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaxHost")
            .field("name", &self.core.name)
            .field("arch", &self.core.arch)
            .field("tasks", &self.core.tasks.lock().len())
            .finish()
    }
}

/// Configures and builds one [`TaxHost`].
#[derive(Debug)]
pub struct HostBuilder {
    name: HostId,
    port: u16,
    policy: Policy,
    trust: TrustStore,
    arch: Architecture,
    fuel: u64,
    allow_unsigned: bool,
    extra_vms: Vec<String>,
}

impl HostBuilder {
    /// A builder for a host with the given name.
    ///
    /// # Errors
    ///
    /// [`TaxError::Net`] if the name is not a valid host name.
    pub fn new(name: &str) -> Result<Self, TaxError> {
        Ok(HostBuilder {
            name: HostId::new(name)?,
            port: DEFAULT_PORT,
            policy: Policy::trusting(),
            trust: TrustStore::new(),
            arch: Architecture::simulated(),
            fuel: tacoma_taxscript::DEFAULT_FUEL,
            allow_unsigned: true,
            extra_vms: Vec::new(),
        })
    }

    /// Sets the firewall's authorization policy. Setting a policy also
    /// turns off the unsigned-binary allowance; grant it back explicitly
    /// with [`HostBuilder::allow_unsigned`] if wanted.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self.allow_unsigned = false;
        self
    }

    /// Installs a trusted verification key.
    pub fn trust_key(mut self, key: tacoma_security::PublicKey) -> Self {
        self.trust.trust(key);
        self
    }

    /// Whether unsigned binaries may execute (default: yes, the
    /// single-domain deployment of §2).
    pub fn allow_unsigned(mut self, allow: bool) -> Self {
        self.allow_unsigned = allow;
        self
    }

    /// Overrides the firewall port.
    pub fn port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Overrides the architecture tag.
    pub fn arch(mut self, arch: Architecture) -> Self {
        self.arch = arch;
        self
    }

    /// Overrides the per-execution instruction budget.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The host's name.
    pub fn name(&self) -> &HostId {
        &self.name
    }

    /// Additional script-VM names to expose ("additional virtual
    /// machines" from the paper's future work): each becomes a landing
    /// pad running the TaxScript engine, e.g. `vm_perl`.
    pub fn extra_script_vms<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.extra_vms.extend(names.into_iter().map(Into::into));
        self
    }

    /// Builds the host with the standard VMs (`vm_script`, `vm_bin`,
    /// `vm_c`), standard services (`ag_exec`, `ag_cc`, `ag_fs`,
    /// `ag_cabinet`, `ag_log`), and the standard wrapper factory.
    pub fn build(self) -> TaxHost {
        // The host's own system principal always has full capabilities —
        // its service agents are the resource managers (§3.3).
        let mut policy = self.policy;
        policy.grant(
            tacoma_security::Principal::local_system(self.name.as_str()),
            tacoma_security::Rights::ALL,
        );
        let mut firewall = Firewall::new(self.name.as_str(), self.port, policy, self.trust);

        let mut vms: BTreeMap<String, Arc<dyn VirtualMachine>> = BTreeMap::new();
        let mut standard: Vec<Arc<dyn VirtualMachine>> = vec![
            Arc::new(VmScript::new()),
            Arc::new(VmBin::new()),
            Arc::new(VmC::new()),
        ];
        for extra in &self.extra_vms {
            standard.push(Arc::new(VmScript::named(extra.clone())));
        }
        for vm in standard {
            firewall.add_vm(vm.name());
            vms.insert(vm.name().to_owned(), vm);
        }

        let host = TaxHost {
            core: Arc::new(HostCore {
                name: self.name,
                arch: self.arch,
                firewall: RwLock::new(firewall),
                services: RwLock::new(BTreeMap::new()),
                natives: RwLock::new(NativeRegistry::new()),
                vms: RwLock::new(vms),
                tasks: Mutex::new(VecDeque::new()),
                parked: Mutex::new(Vec::new()),
                mailboxes: Mutex::new(HashMap::new()),
                wrappers: Mutex::new(HashMap::new()),
                events: Mutex::new(Vec::new()),
                inbox: Mutex::new(None),
                factory: RwLock::new(wrappers::standard_factory()),
                log: std::sync::OnceLock::new(),
                allow_unsigned: self.allow_unsigned,
                fuel: self.fuel,
                journal: std::sync::OnceLock::new(),
            }),
        };

        host.add_service(Arc::new(AgExec::new()));
        host.add_service(Arc::new(AgCc::new()));
        host.add_service(Arc::new(AgFs::new()));
        host.add_service(Arc::new(AgCabinet::new()));
        host.add_service(Arc::new(AgLog::new()));
        host
    }
}
