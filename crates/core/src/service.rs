//! Service agents: a host's resources behind briefcase RPC.
//!
//! "In order to manage arbitrary resources properly, resources other than
//! memory and CPU time are handled by service agents. This allows resource
//! allocation mechanisms to handle requests regardless of which VM the
//! requesting agent is running on" (§3.3).
//!
//! A service agent is a resident agent with a well-known name (`ag_exec`,
//! `ag_fs`, …) that answers `meet()` requests synchronously. Requests and
//! replies are briefcases: the `CMD` folder carries the verb, `ARGS` the
//! positional arguments, and the reply sets `STATUS` to `"ok"` or an
//! error text.

use tacoma_briefcase::{folders, Briefcase};
use tacoma_security::{Principal, Rights};
use tacoma_simnet::SimTime;
use tacoma_vm::{Architecture, HostHooks, NativeRegistry};

/// What a service agent knows about the request it is serving.
pub struct ServiceEnv<'a> {
    /// The host the service runs on.
    pub host: &'a str,
    /// This host's architecture (for `ag_exec` binary selection).
    pub host_arch: Architecture,
    /// The requesting principal.
    pub requester: Principal,
    /// The rights the firewall granted the requester.
    pub rights: Rights,
    /// Virtual time.
    pub now: SimTime,
    /// The host's native programs (for `ag_exec`).
    pub natives: &'a NativeRegistry,
    /// Host hooks the service may hand to programs it executes (`ag_exec`
    /// running the Webbot needs `meet` to reach the web server).
    pub hooks: &'a mut dyn HostHooks,
    /// Instruction budget for programs the service executes.
    pub fuel: u64,
}

/// A resident service agent.
pub trait ServiceAgent: Send + Sync {
    /// The agent's well-known name (`ag_exec`, `ag_fs`, …).
    fn name(&self) -> &str;

    /// Serves one request, returning the reply briefcase. Never panics;
    /// failures are reported in the reply's `STATUS` folder so remote
    /// callers get an answer rather than a hang.
    fn handle(&self, request: &mut Briefcase, env: &mut ServiceEnv<'_>) -> Briefcase;
}

/// Builds an `ok` reply.
pub fn ok_reply() -> Briefcase {
    let mut reply = Briefcase::new();
    reply.set_single(folders::STATUS, "ok");
    reply
}

/// Builds an error reply with a human-readable reason.
pub fn error_reply(reason: impl std::fmt::Display) -> Briefcase {
    let mut reply = Briefcase::new();
    reply.set_single(folders::STATUS, format!("error: {reason}"));
    reply
}

/// Whether a reply reports success.
pub fn reply_ok(reply: &Briefcase) -> bool {
    reply.single_str(folders::STATUS).is_ok_and(|s| s == "ok")
}

/// The command verb of a request, or empty.
pub fn command_of(request: &Briefcase) -> &str {
    request.single_str(folders::COMMAND).unwrap_or("")
}

/// The `i`-th `ARGS` element as text, if present.
pub fn arg(request: &Briefcase, i: usize) -> Option<&str> {
    request.folder(folders::ARGS)?.get(i)?.as_str().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_helpers() {
        assert!(reply_ok(&ok_reply()));
        let err = error_reply("nope");
        assert!(!reply_ok(&err));
        assert_eq!(err.single_str(folders::STATUS).unwrap(), "error: nope");
        assert!(!reply_ok(&Briefcase::new()));
    }

    #[test]
    fn request_helpers() {
        let mut req = Briefcase::new();
        req.set_single(folders::COMMAND, "read");
        req.append(folders::ARGS, "/etc/motd");
        req.append(folders::ARGS, "second");
        assert_eq!(command_of(&req), "read");
        assert_eq!(arg(&req, 0), Some("/etc/motd"));
        assert_eq!(arg(&req, 1), Some("second"));
        assert_eq!(arg(&req, 2), None);
        assert_eq!(command_of(&Briefcase::new()), "");
    }
}
