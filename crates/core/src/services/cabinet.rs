//! `ag_cabinet`: persistent briefcase storage (the paper's `ag_ccabinet`).
//!
//! Agents park whole briefcases here between visits — a filing cabinet for
//! state that should stay at a site rather than travel.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use tacoma_briefcase::Briefcase;

use crate::service::{arg, command_of, error_reply, ok_reply, ServiceAgent, ServiceEnv};

/// Request/reply folder carrying an encoded briefcase.
pub const CABINET_DATA_FOLDER: &str = "CABINET-DATA";

/// The briefcase cabinet. Commands: `store <name>` (with `CABINET-DATA`),
/// `fetch <name>` → `CABINET-DATA`, `delete <name>`, `list` → `NAMES`.
///
/// Drawers are scoped by requesting principal: agents cannot read each
/// other's parked state.
#[derive(Debug, Default)]
pub struct AgCabinet {
    drawers: Mutex<BTreeMap<(String, String), Vec<u8>>>,
}

impl AgCabinet {
    /// A new, empty cabinet.
    pub fn new() -> Self {
        AgCabinet::default()
    }
}

impl ServiceAgent for AgCabinet {
    fn name(&self) -> &str {
        "ag_cabinet"
    }

    fn handle(&self, request: &mut Briefcase, env: &mut ServiceEnv<'_>) -> Briefcase {
        let owner = env.requester.to_string();
        let mut drawers = self.drawers.lock();
        match command_of(request) {
            "store" => {
                let Some(name) = arg(request, 0).map(str::to_owned) else {
                    return error_reply("store: missing name");
                };
                let Ok(data) = request.element(CABINET_DATA_FOLDER, 0) else {
                    return error_reply("store: missing CABINET-DATA");
                };
                // Validate before accepting: a cabinet of garbage helps no
                // one.
                if Briefcase::decode(data.data()).is_err() {
                    return error_reply("store: CABINET-DATA is not a briefcase");
                }
                drawers.insert((owner, name), data.data().to_vec());
                ok_reply()
            }
            "fetch" => {
                let Some(name) = arg(request, 0).map(str::to_owned) else {
                    return error_reply("fetch: missing name");
                };
                match drawers.get(&(owner, name.clone())) {
                    Some(data) => {
                        let mut reply = ok_reply();
                        reply.set_single(CABINET_DATA_FOLDER, data.clone());
                        reply
                    }
                    None => error_reply(format!("fetch: no drawer {name:?}")),
                }
            }
            "delete" => {
                let Some(name) = arg(request, 0).map(str::to_owned) else {
                    return error_reply("delete: missing name");
                };
                if drawers.remove(&(owner, name.clone())).is_some() {
                    ok_reply()
                } else {
                    error_reply(format!("delete: no drawer {name:?}"))
                }
            }
            "list" => {
                let mut reply = ok_reply();
                for (stored_owner, name) in drawers.keys() {
                    if stored_owner == &owner {
                        reply.append("NAMES", name.as_str());
                    }
                }
                reply
            }
            other => error_reply(format!("ag_cabinet: unknown command {other:?}")),
        }
    }
}
