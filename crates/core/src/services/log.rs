//! `ag_log`: a host-local append-only log, used by monitoring wrappers to
//! report and by operators to inspect.

use parking_lot::Mutex;
use tacoma_briefcase::Briefcase;

use crate::service::{arg, command_of, error_reply, ok_reply, ServiceAgent, ServiceEnv};

/// The log service. Commands: `append <line>`, `read` → `LINES`,
/// `clear`.
#[derive(Debug, Default)]
pub struct AgLog {
    lines: Mutex<Vec<String>>,
}

impl AgLog {
    /// A new, empty log.
    pub fn new() -> Self {
        AgLog::default()
    }

    /// Snapshot of the log lines (host-side inspection).
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

impl ServiceAgent for AgLog {
    fn name(&self) -> &str {
        "ag_log"
    }

    fn handle(&self, request: &mut Briefcase, env: &mut ServiceEnv<'_>) -> Briefcase {
        match command_of(request) {
            "append" => {
                let Some(line) = arg(request, 0) else {
                    return error_reply("append: missing line");
                };
                self.lines
                    .lock()
                    .push(format!("[{}] {} {}", env.now, env.requester, line));
                ok_reply()
            }
            "read" => {
                let mut reply = ok_reply();
                for line in self.lines.lock().iter() {
                    reply.append("LINES", line.as_str());
                }
                reply
            }
            "clear" => {
                self.lines.lock().clear();
                ok_reply()
            }
            other => error_reply(format!("ag_log: unknown command {other:?}")),
        }
    }
}
