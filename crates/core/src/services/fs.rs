//! `ag_fs`: the file-system service agent.
//!
//! "To gain access to the file-system, a mobile agent interacts with the
//! ag_fs or ag_ccabinet service agents" (§3.3). The file system here is a
//! per-host virtual store, so agents cannot touch the real disk.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use tacoma_briefcase::Briefcase;
use tacoma_security::Rights;

use crate::service::{arg, command_of, error_reply, ok_reply, ServiceAgent, ServiceEnv};

/// Request/reply folder carrying file contents.
pub const DATA_FOLDER: &str = "DATA";

/// The file-system service. Commands:
///
/// * `write <path>` with `DATA` — requires [`Rights::FS_WRITE`]
/// * `read <path>` → `DATA` — requires [`Rights::FS_READ`]
/// * `stat <path>` → `SIZE` — requires [`Rights::FS_READ`]
/// * `list <prefix>` → `PATHS` — requires [`Rights::FS_READ`]
/// * `delete <path>` — requires [`Rights::FS_WRITE`]
#[derive(Debug, Default)]
pub struct AgFs {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl AgFs {
    /// A new, empty file system.
    pub fn new() -> Self {
        AgFs::default()
    }

    /// Pre-populates a file (host setup).
    pub fn preload(&self, path: impl Into<String>, data: Vec<u8>) {
        self.files.lock().insert(path.into(), data);
    }

    /// Number of files stored.
    pub fn file_count(&self) -> usize {
        self.files.lock().len()
    }
}

impl ServiceAgent for AgFs {
    fn name(&self) -> &str {
        "ag_fs"
    }

    fn handle(&self, request: &mut Briefcase, env: &mut ServiceEnv<'_>) -> Briefcase {
        let cmd = command_of(request).to_owned();
        let need = match cmd.as_str() {
            "read" | "stat" | "list" => Rights::FS_READ,
            "write" | "delete" => Rights::FS_WRITE,
            other => return error_reply(format!("ag_fs: unknown command {other:?}")),
        };
        if let Err(e) = env.rights.require(need, &env.requester) {
            return error_reply(e);
        }
        let Some(path) = arg(request, 0).map(str::to_owned) else {
            return error_reply(format!("{cmd}: missing path argument"));
        };

        let mut files = self.files.lock();
        match cmd.as_str() {
            "write" => {
                let Ok(data) = request.element(DATA_FOLDER, 0) else {
                    return error_reply("write: missing DATA folder");
                };
                files.insert(path, data.data().to_vec());
                ok_reply()
            }
            "read" => match files.get(&path) {
                Some(data) => {
                    let mut reply = ok_reply();
                    reply.set_single(DATA_FOLDER, data.clone());
                    reply
                }
                None => error_reply(format!("read: no such file {path:?}")),
            },
            "stat" => match files.get(&path) {
                Some(data) => {
                    let mut reply = ok_reply();
                    reply.set_single("SIZE", data.len() as i64);
                    reply
                }
                None => error_reply(format!("stat: no such file {path:?}")),
            },
            "list" => {
                let mut reply = ok_reply();
                for name in files.keys().filter(|k| k.starts_with(&path)) {
                    reply.append("PATHS", name.as_str());
                }
                reply
            }
            "delete" => {
                if files.remove(&path).is_some() {
                    ok_reply()
                } else {
                    error_reply(format!("delete: no such file {path:?}"))
                }
            }
            _ => unreachable!("command validated above"),
        }
    }
}
