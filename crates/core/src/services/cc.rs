//! `ag_cc`: the compiler service of the Figure 3 pipeline.

use tacoma_briefcase::{folders, Briefcase};
use tacoma_taxscript::compile_source;

use crate::service::{command_of, error_reply, ServiceAgent, ServiceEnv};

/// Request folder carrying source text.
pub const SOURCE_FOLDER: &str = "SOURCE";
/// Reply folder carrying the compiled binary (TaxScript bytecode).
pub const BINARY_FOLDER: &str = "BINARY";

/// The compiler service.
///
/// Request: `CMD = "compile"`, `SOURCE` = source text. Reply: `BINARY` =
/// encoded bytecode, plus `FN-COUNT`/`INSTR-COUNT` metadata.
#[derive(Debug, Default)]
pub struct AgCc;

impl AgCc {
    /// A new compiler service.
    pub fn new() -> Self {
        AgCc
    }
}

impl ServiceAgent for AgCc {
    fn name(&self) -> &str {
        "ag_cc"
    }

    fn handle(&self, request: &mut Briefcase, _env: &mut ServiceEnv<'_>) -> Briefcase {
        match command_of(request) {
            "compile" => {
                let Ok(source) = request.single_str(SOURCE_FOLDER) else {
                    return error_reply("compile: missing SOURCE folder");
                };
                match compile_source(source) {
                    Ok(program) => {
                        let mut reply = Briefcase::new();
                        reply.set_single(folders::STATUS, "ok");
                        reply.set_single(BINARY_FOLDER, program.encode());
                        reply.set_single("FN-COUNT", program.functions().len() as i64);
                        reply.set_single("INSTR-COUNT", program.instruction_count() as i64);
                        reply
                    }
                    Err(e) => error_reply(e),
                }
            }
            other => error_reply(format!("ag_cc: unknown command {other:?}")),
        }
    }
}
