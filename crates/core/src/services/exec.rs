//! `ag_exec`: executes binaries on behalf of agents.
//!
//! §5: "Ag_exec extracts the binary matching the architecture of the
//! local machine (an agent may submit a list of binaries matching
//! different architectures to ag_exec), and executes it with the arguments
//! called by mwWebbot."

use tacoma_briefcase::{folders, Briefcase};
use tacoma_security::Rights;
use tacoma_taxscript::{Program, Vm};
use tacoma_vm::ArtifactBundle;

use crate::service::{arg, command_of, error_reply, ok_reply, ServiceAgent, ServiceEnv};

/// The folder carrying the encoded [`ArtifactBundle`] to execute.
pub const EXEC_BIN_FOLDER: &str = "EXEC-BIN";
/// The reply folder carrying the executed program's exit code.
pub const EXIT_CODE_FOLDER: &str = "EXIT-CODE";

/// The execution service.
///
/// Request: `CMD = "exec"`, `EXEC-BIN` = encoded artifact bundle, `ARGS` =
/// program arguments. The program runs *against the request briefcase*, so
/// its results come back in the reply — which is the whole point of the
/// §5 wrapper: Webbot's logs land in the briefcase that travels home.
///
/// Authorization: the firewall authenticated the requester before the
/// request reached this host; `ag_exec` additionally requires the
/// [`Rights::EXECUTE`] right.
#[derive(Debug, Default)]
pub struct AgExec;

impl AgExec {
    /// A new execution service.
    pub fn new() -> Self {
        AgExec
    }
}

impl ServiceAgent for AgExec {
    fn name(&self) -> &str {
        "ag_exec"
    }

    fn handle(&self, request: &mut Briefcase, env: &mut ServiceEnv<'_>) -> Briefcase {
        match command_of(request) {
            "exec" => {
                if let Err(e) = env.rights.require(Rights::EXECUTE, &env.requester) {
                    return error_reply(e);
                }
                let Ok(bundle_bytes) = request.element(EXEC_BIN_FOLDER, 0) else {
                    return error_reply("exec: missing EXEC-BIN folder");
                };
                let bundle = match ArtifactBundle::decode(bundle_bytes.data()) {
                    Ok(b) => b,
                    Err(e) => return error_reply(e),
                };
                let Some(artifact) = bundle.select(&env.host_arch) else {
                    return error_reply(format!(
                        "exec: no binary for architecture {} (have {:?})",
                        env.host_arch,
                        bundle.architectures()
                    ));
                };

                // The program's briefcase is the request itself: ARGS in,
                // results out.
                let run = if let Some(key) = artifact.native_key() {
                    match env.natives.get(key) {
                        Ok(program) => program.run(request, env.hooks),
                        Err(e) => return error_reply(e),
                    }
                } else {
                    match Program::decode(&artifact.payload) {
                        Ok(program) => Vm::new(&program, HooksRef(env.hooks))
                            .with_fuel(env.fuel)
                            .run(request)
                            .map_err(Into::into),
                        Err(e) => return error_reply(e),
                    }
                };

                match run {
                    Ok(outcome) => {
                        let mut reply = request.clone();
                        reply.set_single(folders::STATUS, "ok");
                        let code = match outcome {
                            tacoma_taxscript::Outcome::Exit(c) => c,
                            _ => 0,
                        };
                        reply.set_single(EXIT_CODE_FOLDER, code);
                        // Framing folders do not belong in the reply.
                        reply.remove_folder(EXEC_BIN_FOLDER);
                        reply.remove_folder(folders::COMMAND);
                        reply
                    }
                    Err(e) => error_reply(e),
                }
            }
            "which" => {
                // Report whether a native program is installed (used by
                // launchers to pick capable hosts).
                let Some(key) = arg(request, 0) else {
                    return error_reply("which: missing program name");
                };
                let mut reply = ok_reply();
                reply.set_single(
                    "INSTALLED",
                    if env.natives.contains(key) {
                        1i64
                    } else {
                        0i64
                    },
                );
                reply
            }
            other => error_reply(format!("ag_exec: unknown command {other:?}")),
        }
    }
}

/// Borrow adapter so the taxscript VM can use `&mut dyn HostHooks`.
struct HooksRef<'a>(&'a mut dyn tacoma_vm::HostHooks);

impl tacoma_vm::HostHooks for HooksRef<'_> {
    fn display(&mut self, text: &str) {
        self.0.display(text);
    }
    fn go(&mut self, uri: &str, bc: &Briefcase) -> tacoma_taxscript::GoDecision {
        self.0.go(uri, bc)
    }
    fn spawn(&mut self, uri: &str, bc: &Briefcase) -> Option<String> {
        self.0.spawn(uri, bc)
    }
    fn activate(&mut self, uri: &str, bc: &Briefcase) -> bool {
        self.0.activate(uri, bc)
    }
    fn meet(&mut self, uri: &str, bc: &Briefcase) -> Option<Briefcase> {
        self.0.meet(uri, bc)
    }
    fn await_bc(&mut self, timeout_ms: i64) -> Option<Briefcase> {
        self.0.await_bc(timeout_ms)
    }
    fn now_ms(&mut self) -> i64 {
        self.0.now_ms()
    }
    fn host_name(&mut self) -> String {
        self.0.host_name()
    }
    fn work_ns(&mut self, nanos: u64) {
        self.0.work_ns(nanos);
    }
}
