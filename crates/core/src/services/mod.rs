//! The standard service agents every TAX site runs (§3.3, §5).

mod cabinet;
mod cc;
mod exec;
mod fs;
mod log;

pub use cabinet::AgCabinet;
pub use cc::AgCc;
pub use exec::AgExec;
pub use fs::AgFs;
pub use log::AgLog;
