use std::fmt;

use tacoma_firewall::FirewallError;
use tacoma_security::SecurityError;
use tacoma_simnet::NetError;
use tacoma_uri::ParseUriError;
use tacoma_vm::VmError;

/// Top-level errors from the TAX kernel.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TaxError {
    /// A URI failed to parse.
    Uri(ParseUriError),
    /// The network refused a transfer.
    Net(NetError),
    /// The firewall refused an operation.
    Firewall(FirewallError),
    /// Authentication or authorization failed outside the firewall.
    Security(SecurityError),
    /// A virtual machine failed to execute an agent.
    Vm(VmError),
    /// A host name is not part of this system.
    UnknownHost {
        /// The name that resolved to nothing.
        host: String,
    },
    /// An agent spec is unusable (no code, bad wrapper spec, …).
    BadAgentSpec {
        /// What was wrong.
        detail: String,
    },
    /// The scheduler hit its step limit before the system went quiet —
    /// usually a ping-pong agent loop.
    Livelock {
        /// Steps executed before giving up.
        steps: usize,
    },
}

impl fmt::Display for TaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaxError::Uri(e) => e.fmt(f),
            TaxError::Net(e) => e.fmt(f),
            TaxError::Firewall(e) => e.fmt(f),
            TaxError::Security(e) => e.fmt(f),
            TaxError::Vm(e) => e.fmt(f),
            TaxError::UnknownHost { host } => write!(f, "unknown host {host:?}"),
            TaxError::BadAgentSpec { detail } => write!(f, "bad agent spec: {detail}"),
            TaxError::Livelock { steps } => {
                write!(f, "system did not go quiet within {steps} scheduler steps")
            }
        }
    }
}

impl std::error::Error for TaxError {}

impl From<ParseUriError> for TaxError {
    fn from(e: ParseUriError) -> Self {
        TaxError::Uri(e)
    }
}

impl From<NetError> for TaxError {
    fn from(e: NetError) -> Self {
        TaxError::Net(e)
    }
}

impl From<FirewallError> for TaxError {
    fn from(e: FirewallError) -> Self {
        TaxError::Firewall(e)
    }
}

impl From<SecurityError> for TaxError {
    fn from(e: SecurityError) -> Self {
        TaxError::Security(e)
    }
}

impl From<VmError> for TaxError {
    fn from(e: VmError) -> Self {
        TaxError::Vm(e)
    }
}
