//! The **TAX 2.0 kernel**: everything that turns the substrate crates into
//! the running agent system of the paper.
//!
//! * [`TaxSystem`] — a simulated deployment: hosts over a virtual-time
//!   network, with a deterministic scheduler ([`TaxSystem::run_until_quiet`]).
//! * [`TaxHost`] — one machine (Figure 1): a firewall guarding a set of
//!   virtual machines, standard service agents, and the native-code
//!   registry.
//! * [`KernelHooks`] — the TAX library (§3.1) as seen by running agents:
//!   `go`, `spawn`, `activate`, `meet`, `await`, all mediated by the
//!   firewall and charged to the virtual network.
//! * **Service agents** (§3.3): [`services::AgExec`], [`services::AgCc`],
//!   [`services::AgFs`], [`services::AgCabinet`], [`services::AgLog`] — a
//!   host's resources behind briefcase RPC.
//! * **Wrappers** (§4): [`Wrapper`]s are stacked around agents without
//!   modifying them; [`wrappers::LoggingWrapper`],
//!   [`wrappers::MonitorWrapper`], [`wrappers::GroupWrapper`],
//!   [`wrappers::LocationWrapper`] are provided, and
//!   [`WrapperFactory`] lets applications define more.
//!
//! # Quick start
//!
//! ```
//! use tacoma_core::{AgentSpec, SystemBuilder};
//!
//! # fn main() -> Result<(), tacoma_core::TaxError> {
//! let mut system = SystemBuilder::new().host("alpha")?.host("beta")?.trust_all().build();
//!
//! // A Figure-4 style itinerant agent.
//! let code = r#"
//!     fn main() {
//!         bc_append("VISITED", host_name());
//!         let next = bc_remove("HOSTS", 0);
//!         if (next == nil) { exit(0); }
//!         go(next);
//!     }
//! "#;
//! let spec = AgentSpec::script("hello", code)
//!     .itinerary(["tacoma://beta/vm_script"]);
//! system.launch("alpha", spec)?;
//! system.run_until_quiet();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod error;
mod event;
mod hooks;
mod host;
mod sched;
mod service;
pub mod services;
mod system;
mod wrapper;
pub mod wrappers;

pub use agent::AgentSpec;
pub use error::TaxError;
pub use event::{EventKind, HostEvent};
pub use hooks::KernelHooks;
pub use host::{HostBuilder, TaxHost};
pub use sched::RunOutcome;
pub use service::{arg, command_of, error_reply, ok_reply, reply_ok, ServiceAgent, ServiceEnv};
pub use system::{RecoverySummary, StepHook, SystemBuilder, TaxSystem};
pub use wrapper::{
    Wrapper, WrapperCtx, WrapperEvent, WrapperFactory, WrapperStack, WrapperVerdict,
};

// Commonly needed re-exports so applications can depend on tacoma-core
// alone.
pub use tacoma_briefcase::{folders, Briefcase, Element, Folder};
pub use tacoma_security::{Keyring, Policy, Principal, Rights, TrustStore};
pub use tacoma_simnet::{HostId, LinkSpec, Network, SimClock, SimTime, Topology};
pub use tacoma_taxscript::{NullHooks, Outcome};
pub use tacoma_transport as transport;
pub use tacoma_uri::{AgentAddress, AgentUri, Instance};
pub use tacoma_vm::{
    Architecture, ArtifactBundle, BinaryArtifact, GoDecision, HostHooks, NativeRegistry,
};
