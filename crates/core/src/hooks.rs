//! [`KernelHooks`]: the TAX library (§3.1) as seen by running agents, and
//! the shared [`Kernel`] machinery behind it and the scheduler.
//!
//! Every primitive is firewall-mediated (Figure 1) and charged to the
//! virtual network:
//!
//! * `go`/`spawn` — agent transfers; the briefcase ships whole.
//! * `activate` — asynchronous briefcase send.
//! * `meet` — RPC; synchronous against *service agents* (local or
//!   remote). A `meet` addressed to another mobile agent degrades to a
//!   delivery (the reply would require preemptive scheduling, which the
//!   deterministic scheduler deliberately avoids); the caller gets `None`.
//! * `await` — reads the agent's mailbox, filled by earlier `activate`s.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use tacoma_briefcase::Briefcase;
use tacoma_firewall::{AgentStatus, ControlKind, Decision, Message};
use tacoma_security::{Principal, Rights};
use tacoma_simnet::{HostId, Network, SimTime};
use tacoma_taxscript::{GoDecision, Outcome};
use tacoma_uri::{AgentAddress, AgentUri};
use tacoma_vm::{ExecContext, HostHooks, VirtualMachine};

use crate::event::EventKind;
use crate::host::{AgentTask, TaxHost};
use crate::sched::TaskScope;
use crate::service::{error_reply, ServiceAgent, ServiceEnv};
use crate::TaxError;

/// The folder a requester sets to receive a service's reply
/// asynchronously (used with `activate`; `meet` replies synchronously).
pub const REPLY_TO_FOLDER: &str = "REPLY-TO";

/// Service-call recursion limit (an exec'd program meeting a service that
/// execs a program …).
const MAX_SERVICE_DEPTH: u32 = 8;

pub(crate) type Directory = Arc<RwLock<BTreeMap<String, TaxHost>>>;

/// Shared kernel context: host directory, transport, network.
#[derive(Clone)]
pub(crate) struct Kernel {
    pub directory: Directory,
    pub net: Arc<Network>,
    /// The wire every outbound firewall decision ships over — the simnet
    /// bus by default, real TCP under `taxd`.
    pub transport: Arc<dyn tacoma_transport::Transport>,
}

impl Kernel {
    pub fn host(&self, name: &str) -> Option<TaxHost> {
        self.directory.read().get(name).cloned()
    }

    /// The current virtual time: the executing batch's forked clock when
    /// a [`TaskScope`] is installed on this thread, the global clock
    /// otherwise.
    pub fn now(&self) -> SimTime {
        match TaskScope::current() {
            Some(scope) => scope.clock.now(),
            None => self.net.clock().now(),
        }
    }

    /// Advances virtual time on whichever clock [`Kernel::now`] reads.
    pub fn advance(&self, by: Duration) {
        match TaskScope::current() {
            Some(scope) => scope.clock.advance(by),
            None => self.net.clock().advance(by),
        };
    }

    /// Charges a transfer of `bytes` between two hosts to whichever
    /// clock and loss RNG the executing context owns.
    pub fn charge_transfer(
        &self,
        from: &HostId,
        to: &HostId,
        bytes: u64,
    ) -> Result<tacoma_simnet::TransferOutcome, tacoma_simnet::NetError> {
        match TaskScope::current() {
            Some(scope) => {
                self.net
                    .transfer_with(from, to, bytes, &scope.clock, &mut scope.rng.lock())
            }
            None => self.net.transfer(from, to, bytes),
        }
    }

    /// Decodes and routes one arrived envelope on `host` — zero-copy: the
    /// firewall decodes straight out of the envelope's shared buffer.
    pub fn process_envelope(&self, host: &TaxHost, envelope: &tacoma_simnet::Envelope) {
        let now = self.now();
        match host.with_firewall(|fw| fw.route_inbound_wire_bytes(&envelope.payload, now)) {
            Ok(decision) => {
                if let Err(e) = self.execute_deliver_decision(host, decision, 0) {
                    host.record(now, None, EventKind::Rejected(e.to_string()));
                }
            }
            Err(e) => host.record(now, None, EventKind::Rejected(e.to_string())),
        }
    }

    /// Routes one wire-encoded message on `host` — the shared landing path
    /// for simnet envelopes and frames a [`TransportListener`] received
    /// over TCP.
    ///
    /// [`TransportListener`]: tacoma_transport::TransportListener
    pub fn process_wire(&self, host: &TaxHost, payload: &[u8]) {
        let now = self.now();
        match host.with_firewall(|fw| fw.route_inbound_wire(payload, now)) {
            Ok(decision) => {
                if let Err(e) = self.execute_deliver_decision(host, decision, 0) {
                    host.record(now, None, EventKind::Rejected(e.to_string()));
                }
            }
            Err(e) => host.record(now, None, EventKind::Rejected(e.to_string())),
        }
    }

    /// As [`Kernel::process_wire`], but the payload shares its buffer
    /// (e.g. a frame read once off a TCP socket) and is decoded without
    /// copying.
    pub fn process_wire_bytes(&self, host: &TaxHost, payload: &bytes::Bytes) {
        let now = self.now();
        match host.with_firewall(|fw| fw.route_inbound_wire_bytes(payload, now)) {
            Ok(decision) => {
                if let Err(e) = self.execute_deliver_decision(host, decision, 0) {
                    host.record(now, None, EventKind::Rejected(e.to_string()));
                }
            }
            Err(e) => host.record(now, None, EventKind::Rejected(e.to_string())),
        }
    }

    /// Drains every envelope waiting on `host`; returns how many were
    /// processed.
    pub fn pump_inbox(&self, host: &TaxHost) -> usize {
        let mut n = 0;
        while let Some(envelope) = host.try_recv_envelope() {
            self.process_envelope(host, &envelope);
            n += 1;
        }
        n
    }

    /// Pumps every host's inbox until no envelope remains anywhere —
    /// models the other machines' firewall threads making progress while
    /// an agent blocks in `await`. Agent *tasks* are not run here; only
    /// message delivery (and the synchronous service work it triggers)
    /// proceeds.
    pub fn pump_all(&self) -> usize {
        let hosts: Vec<TaxHost> = self.directory.read().values().cloned().collect();
        let mut total = 0;
        loop {
            let mut this_pass = 0;
            for host in &hosts {
                this_pass += self.pump_inbox(host);
            }
            if this_pass == 0 {
                return total;
            }
            total += this_pass;
        }
    }

    /// Installs an agent on a host: builds its wrapper stack, registers it
    /// with the firewall, delivers any queued mail, and schedules its run.
    /// `hop` is the journal dedup key of the migration that delivered the
    /// agent (None for launches and hosts without a journal); it is
    /// committed when the scheduled task reaches a terminal outcome.
    pub fn install(
        &self,
        host: &TaxHost,
        vm: String,
        address: AgentAddress,
        briefcase: Briefcase,
        hop: Option<String>,
    ) -> Result<(), TaxError> {
        let stack = host.core.factory.read().build_stack(&briefcase)?;
        host.core.wrappers.lock().insert(address.clone(), stack);

        let pending = host.with_firewall(|fw| fw.register_agent(&address, vm.clone(), self.now()));
        host.record(
            self.now(),
            Some(address.clone()),
            EventKind::Installed { vm: vm.clone() },
        );
        for message in pending {
            self.deliver_mail(host, &address, message.briefcase);
        }
        host.push_task(AgentTask {
            vm,
            address,
            briefcase,
            hop,
        });
        Ok(())
    }

    /// Delivers a briefcase to a local mobile agent's mailbox, running its
    /// inbound wrapper chain first ("any briefcase addressed to the agent
    /// is sent to the wrapper first").
    pub fn deliver_mail(&self, host: &TaxHost, agent: &AgentAddress, mut briefcase: Briefcase) {
        let now = self.now();
        let effects = {
            let mut wrappers = host.core.wrappers.lock();
            match wrappers.get_mut(agent) {
                Some(stack) => stack.apply_inbound(&mut briefcase, agent, host.name(), now),
                None => Default::default(),
            }
        };
        for note in &effects.notes {
            host.record(
                now,
                Some(agent.clone()),
                EventKind::Wrapper {
                    wrapper: "inbound".into(),
                    note: note.clone(),
                },
            );
        }
        let absorbed = effects.absorbed;
        self.send_emissions(host, agent, effects.emit);
        if !absorbed {
            host.push_mail(agent, briefcase);
        }
    }

    /// Sends wrapper side-emissions as plain messages (no wrapper
    /// re-entry).
    pub fn send_emissions(
        &self,
        host: &TaxHost,
        from: &AgentAddress,
        emissions: Vec<(String, Briefcase)>,
    ) {
        for (to, bc) in emissions {
            let Ok(principal) = Principal::new(from.principal()) else {
                continue;
            };
            if let Err(e) = self.send_plain(host, principal, Some(from.clone()), &to, bc, 0) {
                host.record(
                    self.now(),
                    Some(from.clone()),
                    EventKind::Rejected(e.to_string()),
                );
            }
        }
    }

    /// Routes and executes a plain (wrapper-free) deliver message from a
    /// local sender.
    pub fn send_plain(
        &self,
        host: &TaxHost,
        from_principal: Principal,
        from_agent: Option<AgentAddress>,
        to: &str,
        briefcase: Briefcase,
        depth: u32,
    ) -> Result<(), TaxError> {
        let target: AgentUri = to.parse()?;
        let message = Message::deliver(host.name(), from_principal, from_agent, target, briefcase);
        let decision =
            host.with_firewall(|fw| fw.dispatch_outbound(message, self.now(), &*self.transport))?;
        self.execute_deliver_decision(host, decision, depth)
    }

    /// Carries out a routing decision for a deliver-kind message.
    pub fn execute_deliver_decision(
        &self,
        host: &TaxHost,
        decision: Decision,
        depth: u32,
    ) -> Result<(), TaxError> {
        match decision {
            Decision::DeliverLocal { vm, agent, message } if vm == "service" => {
                let _reply = self.call_service_on(host, &agent, message, depth)?;
                Ok(())
            }
            Decision::DeliverLocal { agent, message, .. } => {
                self.deliver_mail(host, &agent, message.briefcase);
                Ok(())
            }
            Decision::ForwardRemote {
                host: remote,
                port,
                message,
            } => {
                // A decision routed without dispatch (e.g. replayed from the
                // pending queue): ship it now, parking on failure.
                let now = self.now();
                host.with_firewall(|fw| fw.ship(message, &remote, port, now, &*self.transport))?;
                Ok(())
            }
            Decision::Forwarded { .. } | Decision::Queued => Ok(()),
            Decision::InstallAgent {
                vm,
                address,
                briefcase,
                hop,
                ..
            } => self.install(host, vm, address, briefcase, hop),
            Decision::Admin { reply, control } => {
                self.apply_admin(host, reply, control, depth);
                Ok(())
            }
        }
    }

    /// Invokes a *local* service agent and returns its reply; also honours
    /// the request's `REPLY-TO` folder.
    fn call_service_on(
        &self,
        host: &TaxHost,
        service_addr: &AgentAddress,
        message: Message,
        depth: u32,
    ) -> Result<Briefcase, TaxError> {
        let name = service_addr.name().to_owned();
        let Some(service) = host.service(&name) else {
            return Ok(error_reply(format!("service {name} not installed")));
        };
        let mut request = message.briefcase;
        let reply_to = request.single_str(REPLY_TO_FOLDER).ok().map(str::to_owned);
        let requester = message.from_principal.clone();
        let authenticated = message.from_host == host.name()
            || host.with_firewall_read(|fw| fw.is_sender_trusted(&message.from_host));
        let rights = host.with_firewall_read(|fw| fw.rights_of(&requester, authenticated));

        let reply = self.run_service(
            host,
            service.as_ref(),
            &mut request,
            requester.clone(),
            rights,
            depth,
        );
        host.record(
            self.now(),
            Some(service_addr.clone()),
            EventKind::Service {
                service: name,
                command: crate::service::command_of(&request).to_owned(),
            },
        );

        if let Some(reply_to) = reply_to {
            let _ = self.send_plain(host, requester, None, &reply_to, reply.clone(), depth + 1);
        }
        Ok(reply)
    }

    /// Runs a service handler with a fresh set of hooks scoped to the
    /// service's host.
    pub(crate) fn run_service(
        &self,
        host: &TaxHost,
        service: &dyn ServiceAgent,
        request: &mut Briefcase,
        requester: Principal,
        rights: Rights,
        depth: u32,
    ) -> Briefcase {
        if depth >= MAX_SERVICE_DEPTH {
            return error_reply("service call recursion limit reached");
        }
        let natives = host.core.natives.read().clone();
        let exec_address = AgentAddress::new(
            requester.as_str(),
            service.name(),
            tacoma_uri::Instance::from_u64(depth as u64),
        );
        let mut hooks = KernelHooks {
            kernel: self.clone(),
            host: host.clone(),
            agent: exec_address,
            principal: requester.clone(),
            depth: depth + 1,
            hop: None,
        };
        let mut env = ServiceEnv {
            host: host.name(),
            host_arch: host.arch().clone(),
            requester,
            rights,
            now: self.now(),
            natives: &natives,
            hooks: &mut hooks,
            fuel: host.core.fuel,
        };
        service.handle(request, &mut env)
    }

    /// Executes one queued agent task on `host`: status check, VM lookup,
    /// hook wiring, execution, and completion bookkeeping. Runs on the
    /// global clock under the sequential scheduler and on the batch's
    /// forked clock inside a tick scope.
    pub(crate) fn run_task(&self, host: &TaxHost, task: AgentTask) {
        let now = self.now();

        // Respect kill/stop decided while the task was queued.
        let status =
            host.with_firewall_read(|fw| fw.registry().get(&task.address).map(|r| r.status));
        match status {
            None => {
                // Killed by admin: the hop must never be replayed — the
                // kill was a deliberate decision about this agent.
                abort_hop(host, task.hop.as_deref());
                return;
            }
            Some(AgentStatus::Stopped) => {
                // The hop stays open; the parked task still owns it.
                host.core.parked.lock().push(task);
                return;
            }
            Some(AgentStatus::Running) => {}
        }

        let vm: Option<Arc<dyn VirtualMachine>> = host.core.vms.read().get(&task.vm).cloned();
        let Some(vm) = vm else {
            host.record(
                now,
                Some(task.address.clone()),
                EventKind::Rejected(format!("no VM named {:?}", task.vm)),
            );
            abort_hop(host, task.hop.as_deref());
            host.with_firewall(|fw| fw.unregister_agent(&task.address));
            return;
        };

        let principal = match Principal::new(task.address.principal()) {
            Ok(p) => p,
            Err(e) => {
                host.record(
                    now,
                    Some(task.address.clone()),
                    EventKind::Rejected(e.to_string()),
                );
                abort_hop(host, task.hop.as_deref());
                return;
            }
        };

        let (trust, natives) = exec_context_for(host);
        let ctx = make_ctx(host, &trust, &natives);
        let mut hooks = KernelHooks {
            kernel: self.clone(),
            host: host.clone(),
            agent: task.address.clone(),
            principal,
            depth: 0,
            hop: task.hop.clone(),
        };
        let mut briefcase = task.briefcase;
        let result = vm.execute(&mut briefcase, &mut hooks, &ctx);
        let after = self.now();

        match result {
            Ok(execution) => {
                if execution.trace.len() > 1 {
                    host.record(
                        after,
                        Some(task.address.clone()),
                        EventKind::ExecutionTrace(execution.trace.clone()),
                    );
                }
                match execution.outcome {
                    Outcome::Moved { .. } => {
                        // Departure was recorded by the go() hook; this
                        // instance is terminated.
                    }
                    outcome @ (Outcome::Finished | Outcome::Exit(_)) => {
                        host.record(
                            after,
                            Some(task.address.clone()),
                            EventKind::Completed(outcome),
                        );
                    }
                }
            }
            Err(e) => {
                host.record(
                    after,
                    Some(task.address.clone()),
                    EventKind::Faulted(e.to_string()),
                );
            }
        }
        // Every execution path above is terminal for this instance
        // (Moved, Finished, Exit, Faulted): the hop's effects happened, so
        // a crash-replay must never run it again. A departed agent's next
        // hop already subsumed this key via its journaled parent link;
        // committing again is a harmless no-op.
        commit_hop(host, task.hop.as_deref());
        host.with_firewall(|fw| fw.unregister_agent(&task.address));
        host.drop_agent_state(&task.address);
    }

    /// Applies an admin decision: deliver the reply (if the requester
    /// asked) and enforce the control action.
    pub fn apply_admin(
        &self,
        host: &TaxHost,
        _reply: Briefcase,
        control: Option<tacoma_firewall::ControlAction>,
        _depth: u32,
    ) {
        if let Some(action) = control {
            match action.kind {
                ControlKind::Kill => {
                    // Remove any queued execution and per-agent state; the
                    // registry entry was already dropped by the firewall.
                    let mut tasks = host.core.tasks.lock();
                    tasks.retain(|t| t.address != action.agent);
                    drop(tasks);
                    host.drop_agent_state(&action.agent);
                    host.record(
                        self.now(),
                        Some(action.agent),
                        EventKind::Rejected("killed by admin".into()),
                    );
                }
                ControlKind::Stop => {
                    // Status lives in the firewall registry; the scheduler
                    // parks queued tasks for stopped agents.
                }
                ControlKind::Resume => {
                    // Re-queue any executions parked while stopped.
                    let mut parked = host.core.parked.lock();
                    let mut tasks = host.core.tasks.lock();
                    let mut keep = Vec::new();
                    for task in parked.drain(..) {
                        if task.address == action.agent {
                            tasks.push_back(task);
                        } else {
                            keep.push(task);
                        }
                    }
                    *parked = keep;
                }
            }
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kernel({} hosts)", self.directory.read().len())
    }
}

/// The host-side implementation of [`HostHooks`] handed to every running
/// agent: the TAX library of §3.1.
pub struct KernelHooks {
    pub(crate) kernel: Kernel,
    pub(crate) host: TaxHost,
    pub(crate) agent: AgentAddress,
    pub(crate) principal: Principal,
    pub(crate) depth: u32,
    /// The journal key of the hop that delivered this agent here, if any;
    /// chained as the parent of the keys minted for its outgoing
    /// transfers, so a journaled begin for the next hop proves this one
    /// progressed past its send.
    pub(crate) hop: Option<String>,
}

impl KernelHooks {
    fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Runs the agent's wrapper chain for an outbound/move event. Returns
    /// `(possibly rewritten target, absorbed?)`.
    fn run_wrappers(
        &mut self,
        kind: WrapKind,
        to: &str,
        briefcase: &mut Briefcase,
    ) -> (String, bool) {
        let mut target = to.to_owned();
        let now = self.now();
        let effects = {
            let mut wrappers = self.host.core.wrappers.lock();
            match wrappers.get_mut(&self.agent) {
                Some(stack) => match kind {
                    WrapKind::Send => stack.apply_outbound(
                        &mut target,
                        briefcase,
                        &self.agent,
                        self.host.name(),
                        now,
                    ),
                    WrapKind::Move => {
                        stack.apply_move(&mut target, briefcase, &self.agent, self.host.name(), now)
                    }
                },
                None => Default::default(),
            }
        };
        for note in &effects.notes {
            self.host.record(
                now,
                Some(self.agent.clone()),
                EventKind::Wrapper {
                    wrapper: "outbound".into(),
                    note: note.clone(),
                },
            );
        }
        let absorbed = effects.absorbed;
        self.kernel
            .send_emissions(&self.host, &self.agent, effects.emit);
        (target, absorbed)
    }

    /// The shared transfer path behind `go` and `spawn`.
    fn transfer(
        &mut self,
        uri: &str,
        briefcase: &Briefcase,
        spawned: bool,
    ) -> Result<(), TaxError> {
        let mut travelling = briefcase.clone();
        let (target_text, absorbed) = self.run_wrappers(WrapKind::Move, uri, &mut travelling);
        if absorbed {
            return Err(TaxError::BadAgentSpec {
                detail: "move vetoed by wrapper".into(),
            });
        }
        let target: AgentUri = target_text.parse()?;
        let mut message = Message::transfer(
            self.host.name(),
            self.principal.clone(),
            target,
            travelling,
            spawned,
        );
        if self.host.journal().is_some() {
            let key = hop_key(&message, self.hop.as_deref());
            message = message.with_hop(key, self.hop.clone());
        }
        let now = self.now();
        let transport = Arc::clone(&self.kernel.transport);
        let decision = self
            .host
            .with_firewall(|fw| fw.dispatch_outbound(message, now, &*transport))?;
        match decision {
            Decision::Forwarded { .. } => Ok(()),
            Decision::InstallAgent {
                vm,
                address,
                briefcase,
                hop,
                ..
            } => self.kernel.install(&self.host, vm, address, briefcase, hop),
            other => Err(TaxError::BadAgentSpec {
                detail: format!("unexpected transfer decision {other:?}"),
            }),
        }
    }
}

#[derive(Clone, Copy)]
enum WrapKind {
    Send,
    Move,
}

/// Content-derived dedup key for a migration. Stable across a
/// crash-redo of the sending task (VM execution is deterministic, so a
/// replayed run rebuilds the identical message) yet distinct across
/// genuinely different sends: the parent key chains every hop to its
/// predecessor, so even a `go` back to a previously visited host under
/// the same briefcase hashes differently.
fn hop_key(message: &Message, parent: Option<&str>) -> String {
    let mut hasher = tacoma_security::Hasher::new();
    let to = message.to.to_string();
    for field in [parent.unwrap_or(""), &message.from_host, &to] {
        hasher.update(&(field.len() as u64).to_le_bytes());
        hasher.update(field.as_bytes());
    }
    let payload = message.briefcase.wire_bytes();
    hasher.update(&(payload.len() as u64).to_le_bytes());
    hasher.update(&payload);
    hasher.finalize().short()
}

/// Journals a hop-committed record for a task's terminal outcome. The
/// record is batched; losing it only risks a deduped replay, never a
/// duplicate execution, so failures are swallowed.
fn commit_hop(host: &TaxHost, hop: Option<&str>) {
    if let (Some(journal), Some(key)) = (host.journal(), hop) {
        let _ = journal.hop_committed(key);
    }
}

/// Journals a hop-aborted record when a delivered agent is deliberately
/// not run (killed, unrunnable); replaying such a hop would resurrect an
/// agent the host already decided against.
fn abort_hop(host: &TaxHost, hop: Option<&str>) {
    if let (Some(journal), Some(key)) = (host.journal(), hop) {
        let _ = journal.hop_aborted(key);
    }
}

impl HostHooks for KernelHooks {
    fn display(&mut self, text: &str) {
        self.host.record(
            self.now(),
            Some(self.agent.clone()),
            EventKind::Display(text.to_owned()),
        );
    }

    fn go(&mut self, uri: &str, briefcase: &Briefcase) -> GoDecision {
        match self.transfer(uri, briefcase, false) {
            Ok(()) => {
                self.host.record(
                    self.now(),
                    Some(self.agent.clone()),
                    EventKind::Departed { to: uri.to_owned() },
                );
                GoDecision::Moved
            }
            Err(e) => {
                self.host.record(
                    self.now(),
                    Some(self.agent.clone()),
                    EventKind::Rejected(e.to_string()),
                );
                GoDecision::Unreachable
            }
        }
    }

    fn spawn(&mut self, uri: &str, briefcase: &Briefcase) -> Option<String> {
        // Pre-allocate the child's instance so it can be reported back
        // (§3.1: "which is then reported back to the calling agent").
        let instance = self
            .host
            .with_firewall(tacoma_firewall::Firewall::allocate_instance);
        let mut child = briefcase.clone();
        child.set_single("SYS:INSTANCE", instance.as_str());
        match self.transfer(uri, &child, true) {
            Ok(()) => Some(instance.as_str().to_owned()),
            Err(e) => {
                self.host.record(
                    self.now(),
                    Some(self.agent.clone()),
                    EventKind::Rejected(e.to_string()),
                );
                None
            }
        }
    }

    fn activate(&mut self, uri: &str, briefcase: &Briefcase) -> bool {
        let mut outgoing = briefcase.clone();
        let (target, absorbed) = self.run_wrappers(WrapKind::Send, uri, &mut outgoing);
        if absorbed {
            return true; // The wrapper handled it.
        }
        match self.kernel.send_plain(
            &self.host,
            self.principal.clone(),
            Some(self.agent.clone()),
            &target,
            outgoing,
            self.depth,
        ) {
            Ok(()) => true,
            Err(e) => {
                self.host.record(
                    self.now(),
                    Some(self.agent.clone()),
                    EventKind::Rejected(e.to_string()),
                );
                false
            }
        }
    }

    fn meet(&mut self, uri: &str, briefcase: &Briefcase) -> Option<Briefcase> {
        let mut request = briefcase.clone();
        let (target_text, absorbed) = self.run_wrappers(WrapKind::Send, uri, &mut request);
        if absorbed {
            return None;
        }
        let target: AgentUri = match target_text.parse() {
            Ok(t) => t,
            Err(_) => return None,
        };
        let message = Message::deliver(
            self.host.name(),
            self.principal.clone(),
            Some(self.agent.clone()),
            target,
            request,
        );
        let request_len = message.encoded_len() as u64;
        let decision = match self
            .host
            .with_firewall(|fw| fw.route_outbound(message, self.now()))
        {
            Ok(d) => d,
            Err(e) => {
                self.host.record(
                    self.now(),
                    Some(self.agent.clone()),
                    EventKind::Rejected(e.to_string()),
                );
                return None;
            }
        };

        match decision {
            // Local service: loopback-cost RPC.
            Decision::DeliverLocal { vm, agent, message } if vm == "service" => {
                let self_id = self.host.host_id().clone();
                let _ = self.kernel.charge_transfer(&self_id, &self_id, request_len);
                let reply = self
                    .kernel
                    .call_service_on(&self.host, &agent, message, self.depth)
                    .ok()?;
                let _ = self
                    .kernel
                    .charge_transfer(&self_id, &self_id, reply.encoded_len() as u64);
                Some(reply)
            }
            // Remote target: ship the request; if it lands on a service,
            // RPC synchronously and ship the reply back.
            Decision::ForwardRemote {
                host: remote,
                port,
                message,
            } => {
                let Some(remote_host) = self.kernel.host(&remote) else {
                    // The host lives in another process: ship the request
                    // over the transport (parking on failure) and degrade
                    // to a delivery — the reply, if any, arrives via the
                    // caller's mailbox.
                    let now = self.now();
                    let transport = Arc::clone(&self.kernel.transport);
                    if let Err(e) = self
                        .host
                        .with_firewall(|fw| fw.ship(message, &remote, port, now, &*transport))
                    {
                        self.host.record(
                            now,
                            Some(self.agent.clone()),
                            EventKind::Rejected(e.to_string()),
                        );
                    }
                    return None;
                };
                let remote_id = HostId::new(&remote).ok()?;
                self.kernel
                    .charge_transfer(self.host.host_id(), &remote_id, request_len)
                    .ok()?;
                let inbound =
                    remote_host.with_firewall(|fw| fw.route_inbound(message, self.kernel.now()));
                match inbound {
                    Ok(Decision::DeliverLocal { vm, agent, message }) if vm == "service" => {
                        let reply = self
                            .kernel
                            .call_service_on(&remote_host, &agent, message, self.depth)
                            .ok()?;
                        self.kernel
                            .charge_transfer(
                                &remote_id,
                                self.host.host_id(),
                                reply.encoded_len() as u64,
                            )
                            .ok()?;
                        Some(reply)
                    }
                    Ok(other) => {
                        // Not a service: degrade to a delivery.
                        let _ =
                            self.kernel
                                .execute_deliver_decision(&remote_host, other, self.depth);
                        None
                    }
                    Err(e) => {
                        self.host.record(
                            self.now(),
                            Some(self.agent.clone()),
                            EventKind::Rejected(e.to_string()),
                        );
                        None
                    }
                }
            }
            // A local mobile agent: deliver, no synchronous reply.
            Decision::DeliverLocal { agent, message, .. } => {
                self.kernel
                    .deliver_mail(&self.host, &agent, message.briefcase);
                None
            }
            Decision::Admin { reply, control } => {
                self.kernel
                    .apply_admin(&self.host, reply.clone(), control, self.depth);
                Some(reply)
            }
            Decision::Queued => None,
            // route_outbound never produces Forwarded (only dispatch does).
            Decision::Forwarded { .. } | Decision::InstallAgent { .. } => None,
        }
    }

    fn await_bc(&mut self, timeout_ms: i64) -> Option<Briefcase> {
        // Inside a scheduler batch other hosts' inboxes belong to other
        // batches, so the wait cannot pump them; deferred sends flush at
        // the tick barrier and arrive next tick via the agent's mailbox.
        let scoped = TaskScope::current().is_some();
        if let Some(mail) = self.host.pop_mail(&self.agent) {
            return Some(mail);
        }
        // While this agent blocks, every host's firewall thread keeps
        // delivering — in-flight request/reply chains complete.
        if !scoped {
            self.kernel.pump_all();
            if let Some(mail) = self.host.pop_mail(&self.agent) {
                return Some(mail);
            }
        }
        // Model the blocking wait: virtual time passes, then one last
        // delivery check.
        if timeout_ms > 0 {
            self.kernel
                .advance(Duration::from_millis(timeout_ms as u64));
        }
        if !scoped {
            self.kernel.pump_all();
        }
        self.host.pop_mail(&self.agent)
    }

    fn now_ms(&mut self) -> i64 {
        (self.now().as_nanos() / 1_000_000) as i64
    }

    fn host_name(&mut self) -> String {
        self.host.name().to_owned()
    }

    fn work_ns(&mut self, nanos: u64) {
        self.kernel.advance(Duration::from_nanos(nanos));
    }
}

impl std::fmt::Debug for KernelHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KernelHooks({} on {})", self.agent, self.host.name())
    }
}

/// Builds a VM execution context for a task on `host`. The trust store is
/// snapshotted so the firewall lock is not held across agent execution.
pub(crate) fn exec_context_for(
    host: &TaxHost,
) -> (tacoma_security::TrustStore, tacoma_vm::NativeRegistry) {
    let trust = host.with_firewall_read(|fw| fw.trust().clone());
    let natives = host.core.natives.read().clone();
    (trust, natives)
}

/// Assembles an [`ExecContext`] from snapshotted parts.
pub(crate) fn make_ctx<'a>(
    host: &TaxHost,
    trust: &'a tacoma_security::TrustStore,
    natives: &'a tacoma_vm::NativeRegistry,
) -> ExecContext<'a> {
    let mut ctx = ExecContext::new(trust, natives)
        .with_arch(host.arch().clone())
        .with_fuel(host.core.fuel);
    if host.core.allow_unsigned {
        ctx = ctx.allow_unsigned();
    }
    ctx
}
