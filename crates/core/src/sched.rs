//! The parallel tick scheduler's machinery: per-batch execution scopes,
//! the merged system event log, the worker pool, and the deferred simnet
//! transport.
//!
//! # The tick model
//!
//! [`TaxSystem::step`](crate::TaxSystem::step) in tick mode (enabled with
//! [`SystemBuilder::threads`](crate::SystemBuilder::threads)) is a
//! bulk-synchronous step:
//!
//! 1. **Pump** — every host's inbox drains in host order, exactly as the
//!    classic scheduler does (message delivery and the synchronous
//!    service work it triggers run on the global clock).
//! 2. **Execute** — each host's queued agent tasks are snapshotted into
//!    one *batch* per host. Batches run concurrently on the worker pool;
//!    tasks within a batch run in FIFO order (one CPU per machine).
//!    Every batch executes inside a [`TaskScope`]: a private virtual
//!    clock forked from the global clock at tick start, a loss RNG seeded
//!    from `(system seed, host, tick)`, and a buffer of deferred sends.
//! 3. **Barrier** — deferred envelopes flush to the message bus in host
//!    order, and the global clock advances to the *maximum* of the
//!    batches' final clocks (parallel work overlaps in virtual time, so
//!    the tick's virtual cost is its makespan, not its sum).
//!
//! Because a batch's clock, RNG, and send buffer are all derived from
//! per-tick state that does not depend on how many worker threads drain
//! the batch queue, a run with one worker and a run with N workers
//! produce identical event traces. See `docs/scheduler.md` for the exact
//! determinism contract.

use std::cell::RefCell;
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tacoma_simnet::{Envelope, HostId, MessageBus, NetError, Network, SimClock, SimTime};
use tacoma_transport::{Transport, TransportCounters, TransportError, TransportStats};

use crate::event::{EventKind, HostEvent};

// ---------------------------------------------------------------------------
// Task scopes
// ---------------------------------------------------------------------------

/// The execution context of one host batch during a parallel tick: a
/// forked clock, a deterministic loss RNG, and the tick's deferred sends.
///
/// Installed thread-locally while the batch runs; every kernel primitive
/// that touches virtual time, loss randomness, or the simnet bus checks
/// [`TaskScope::current`] first.
pub(crate) struct TaskScope {
    /// Private virtual clock, forked from the global clock at tick start.
    pub clock: SimClock,
    /// Loss RNG seeded from `(system seed, host index, tick)`.
    pub rng: Mutex<StdRng>,
    /// Envelopes charged during the batch, delivered at the barrier.
    pub sends: Mutex<Vec<Envelope>>,
}

thread_local! {
    static CURRENT_SCOPE: RefCell<Option<Arc<TaskScope>>> = const { RefCell::new(None) };
}

impl TaskScope {
    /// A scope starting at `start` with the given RNG seed.
    pub fn new(start: SimTime, rng_seed: u64) -> Arc<TaskScope> {
        Arc::new(TaskScope {
            clock: SimClock::starting_at(start),
            rng: Mutex::new(StdRng::seed_from_u64(rng_seed)),
            sends: Mutex::new(Vec::new()),
        })
    }

    /// Re-arms an already allocated scope for a new batch: clock forked
    /// from `start`, RNG reseeded, sends cleared (capacity kept).
    ///
    /// A reset scope is indistinguishable from a fresh [`TaskScope::new`],
    /// so the scheduler reuses scope allocations (and their send-buffer
    /// capacity) across ticks without affecting the deterministic trace.
    pub fn reset(&self, start: SimTime, rng_seed: u64) {
        self.clock.reset();
        self.clock.advance_to(start);
        *self.rng.lock() = StdRng::seed_from_u64(rng_seed);
        self.sends.lock().clear();
    }

    /// The scope installed on this thread, if a batch is executing.
    pub fn current() -> Option<Arc<TaskScope>> {
        CURRENT_SCOPE.with(|c| c.borrow().clone())
    }

    /// Installs `scope` on this thread until the guard drops.
    pub fn enter(scope: Arc<TaskScope>) -> ScopeGuard {
        CURRENT_SCOPE.with(|c| *c.borrow_mut() = Some(scope));
        ScopeGuard
    }
}

/// Clears the thread's scope on drop (including on unwind, so a panicking
/// batch cannot leak its scope into the next job on the worker).
pub(crate) struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT_SCOPE.with(|c| *c.borrow_mut() = None);
    }
}

/// Mixes the system seed, a host index, and a tick counter into one RNG
/// seed (splitmix64 finalizer), so every batch draws losses from its own
/// deterministic stream.
pub(crate) fn batch_seed(seed: u64, host_idx: u64, tick: u64) -> u64 {
    let mut x = seed
        ^ host_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ tick.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// The merged system log
// ---------------------------------------------------------------------------

/// One entry in the merged log: where it happened plus the event.
struct LogEntry {
    at: SimTime,
    host_idx: u32,
    host: String,
    event: HostEvent,
}

struct LogInner {
    entries: Vec<LogEntry>,
    sorted: bool,
}

/// The system-wide event log, maintained incrementally as hosts record.
///
/// Entries are appended in recording order and lazily stable-sorted by
/// `(virtual time, host index)` — which reproduces exactly the order the
/// classic `events()` produced by concatenating per-host logs in host
/// order and stable-sorting by time, without re-cloning and re-sorting
/// every log on every call.
pub(crate) struct SystemLog {
    inner: Mutex<LogInner>,
}

impl SystemLog {
    pub fn new() -> SystemLog {
        SystemLog {
            inner: Mutex::new(LogInner {
                entries: Vec::new(),
                sorted: true,
            }),
        }
    }

    /// Appends one event recorded on the host with index `host_idx`.
    pub fn record(&self, host_idx: u32, host: &str, event: HostEvent) {
        let mut inner = self.inner.lock();
        // Appending in timestamp order (the overwhelmingly common case)
        // keeps the log sorted without paying for a sort later.
        let in_order = inner
            .entries
            .last()
            .is_none_or(|last| (last.at, last.host_idx) <= (event.at, host_idx));
        inner.sorted = inner.sorted && in_order;
        inner.entries.push(LogEntry {
            at: event.at,
            host_idx,
            host: host.to_owned(),
            event,
        });
    }

    /// Drops every entry recorded on the host with index `host_idx`
    /// (mirrors [`TaxHost::clear_events`](crate::TaxHost::clear_events)).
    pub fn clear_host(&self, host_idx: u32) {
        self.inner.lock().entries.retain(|e| e.host_idx != host_idx);
    }

    fn ensure_sorted(inner: &mut LogInner) {
        if !inner.sorted {
            // Stable: entries with equal (time, host) keep recording
            // order, which is each host's per-event sequence.
            inner.entries.sort_by_key(|e| (e.at, e.host_idx));
            inner.sorted = true;
        }
    }

    /// The whole log in `(time, host index, per-host sequence)` order.
    pub fn snapshot(&self) -> Vec<(String, HostEvent)> {
        let mut inner = self.inner.lock();
        SystemLog::ensure_sorted(&mut inner);
        inner
            .entries
            .iter()
            .map(|e| (e.host.clone(), e.event.clone()))
            .collect()
    }

    /// Every `display` line, in log order, without cloning other events.
    pub fn displays(&self) -> Vec<String> {
        let mut inner = self.inner.lock();
        SystemLog::ensure_sorted(&mut inner);
        inner
            .entries
            .iter()
            .filter_map(|e| match &e.event.kind {
                EventKind::Display(text) => Some(text.clone()),
                _ => None,
            })
            .collect()
    }
}

/// A host's handle into the merged log: the log plus the host's index in
/// directory (host-name) order.
#[derive(Clone)]
pub(crate) struct SystemLogHandle {
    pub log: Arc<SystemLog>,
    pub host_idx: u32,
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of scheduler workers draining a shared injector
/// channel — whichever worker is free steals the next host batch, so a
/// tick's wall time tracks its largest batch rather than its batch count.
pub(crate) struct WorkerPool {
    injector: Option<crossbeam::channel::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Persistent completion channel, reused across ticks instead of
    /// allocating a fresh channel per tick. Exactly `n` completions are
    /// consumed per `n` submissions, so the channel is empty between
    /// ticks.
    done_tx: crossbeam::channel::Sender<()>,
    done_rx: crossbeam::channel::Receiver<()>,
}

impl WorkerPool {
    /// Spawns `size` workers.
    pub fn new(size: usize) -> WorkerPool {
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<()>();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("tax-sched-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn scheduler worker")
            })
            .collect();
        WorkerPool {
            injector: Some(tx),
            workers,
            done_tx,
            done_rx,
        }
    }

    /// Queues one batch job.
    pub fn submit(&self, job: Job) {
        if let Some(tx) = &self.injector {
            let _ = tx.send(job);
        }
    }

    /// A sender jobs use to signal completion to [`WorkerPool::wait`].
    pub fn done_sender(&self) -> crossbeam::channel::Sender<()> {
        self.done_tx.clone()
    }

    /// Blocks until `n` completion signals have arrived.
    pub fn wait(&self, n: usize) {
        for _ in 0..n {
            let _ = self.done_rx.recv();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector ends every worker's recv loop.
        self.injector = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Run outcome
// ---------------------------------------------------------------------------

/// How a [`run_until_quiet`](crate::TaxSystem::run_until_quiet) call
/// ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No messages or tasks remained: the system genuinely went quiet.
    Quiesced {
        /// Scheduler steps executed before quiescence.
        steps: usize,
    },
    /// The step budget ran out with work still outstanding — almost
    /// always an agent ping-pong loop. A warning event is recorded.
    StepBudgetExhausted {
        /// Scheduler steps executed (the budget).
        steps: usize,
    },
}

impl RunOutcome {
    /// Scheduler steps executed.
    pub fn steps(&self) -> usize {
        match self {
            RunOutcome::Quiesced { steps } | RunOutcome::StepBudgetExhausted { steps } => *steps,
        }
    }

    /// Whether the system went quiet (as opposed to hitting the budget).
    pub fn quiesced(&self) -> bool {
        matches!(self, RunOutcome::Quiesced { .. })
    }
}

// ---------------------------------------------------------------------------
// Deferred simnet transport
// ---------------------------------------------------------------------------

/// The default outbound transport: the simnet bus, with sends deferred to
/// the tick barrier while a [`TaskScope`] is active.
///
/// Outside a scope it behaves exactly like
/// [`SimTransport`](tacoma_transport::SimTransport): charge the transfer
/// to the global clock and deliver immediately. Inside a scope the
/// transfer is charged to the batch's clock and loss RNG, and the
/// resulting envelope is buffered so the barrier can hand envelopes to
/// the bus in deterministic host order.
pub(crate) struct DeferredSimTransport {
    bus: MessageBus,
    net: Arc<Network>,
    counters: TransportCounters,
}

impl DeferredSimTransport {
    /// A transport over the given bus and network.
    pub fn new(bus: MessageBus, net: Arc<Network>) -> DeferredSimTransport {
        DeferredSimTransport {
            bus,
            net,
            counters: TransportCounters::new(),
        }
    }

    fn send_deferred(
        &self,
        scope: &TaskScope,
        from: &HostId,
        to: &HostId,
        payload: &[u8],
    ) -> Result<(), NetError> {
        // Mirror MessageBus::send: a missing destination must not consume
        // virtual time.
        if !self.bus.has_endpoint(to) {
            return Err(NetError::NoEndpoint { host: to.clone() });
        }
        // Single copy into the refcounted envelope buffer; `to_vec().into()`
        // would copy twice (Vec, then Arc storage).
        let payload = Bytes::copy_from_slice(payload);
        let outcome = self.net.transfer_with(
            from,
            to,
            payload.len() as u64,
            &scope.clock,
            &mut scope.rng.lock(),
        )?;
        scope.sends.lock().push(Envelope {
            from: from.clone(),
            to: to.clone(),
            payload,
            departed: outcome.departed,
            arrived: outcome.arrived,
            cost: outcome.cost,
        });
        Ok(())
    }
}

impl std::fmt::Debug for DeferredSimTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DeferredSimTransport")
    }
}

fn host_id(name: &str) -> Result<HostId, TransportError> {
    HostId::new(name).map_err(|e| TransportError::Unreachable {
        host: name.to_owned(),
        detail: e.to_string(),
    })
}

impl Transport for DeferredSimTransport {
    fn send(
        &self,
        from: &str,
        to_host: &str,
        _to_port: u16,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        let from = host_id(from)?;
        let to = host_id(to_host)?;
        let result = match TaskScope::current() {
            Some(scope) => self.send_deferred(&scope, &from, &to, payload),
            None => self.bus.send(&from, &to, Bytes::copy_from_slice(payload)),
        };
        match result {
            Ok(()) => {
                self.counters.add_sent(payload.len() as u64);
                Ok(())
            }
            // Churn (crashed host, severed link) is a distinct outcome from
            // random loss: the destination is *unreachable*, not unlucky.
            Err(
                e @ (NetError::NoEndpoint { .. }
                | NetError::EndpointClosed { .. }
                | NetError::HostDown { .. }
                | NetError::Partitioned { .. }),
            ) => {
                self.counters.add_retry_timeout();
                Err(TransportError::Unreachable {
                    host: to_host.to_owned(),
                    detail: e.to_string(),
                })
            }
            Err(e) => {
                self.counters.add_retry_timeout();
                Err(TransportError::Io {
                    detail: e.to_string(),
                })
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    fn kind(&self) -> &'static str {
        // Same wire as SimTransport; tooling treats them identically.
        "simnet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_is_thread_local_and_guard_clears() {
        assert!(TaskScope::current().is_none());
        let scope = TaskScope::new(SimTime::ZERO, 7);
        {
            let _guard = TaskScope::enter(Arc::clone(&scope));
            assert!(TaskScope::current().is_some());
            // Another thread sees no scope.
            std::thread::spawn(|| assert!(TaskScope::current().is_none()))
                .join()
                .unwrap();
        }
        assert!(TaskScope::current().is_none());
    }

    #[test]
    fn batch_seed_distinguishes_host_and_tick() {
        let base = batch_seed(1, 0, 1);
        assert_ne!(base, batch_seed(1, 1, 1));
        assert_ne!(base, batch_seed(1, 0, 2));
        assert_ne!(base, batch_seed(2, 0, 1));
        assert_eq!(base, batch_seed(1, 0, 1));
    }

    #[test]
    fn system_log_orders_like_the_classic_merge() {
        let log = SystemLog::new();
        let ev = |at: u64| HostEvent {
            at: SimTime::from_nanos(at),
            agent: None,
            kind: EventKind::Display(format!("t{at}")),
        };
        // Interleaved recording, including a late out-of-order entry.
        log.record(1, "beta", ev(10));
        log.record(0, "alpha", ev(10));
        log.record(0, "alpha", ev(20));
        log.record(1, "beta", ev(5));
        let order: Vec<(String, u64)> = log
            .snapshot()
            .into_iter()
            .map(|(h, e)| (h, e.at.as_nanos()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("beta".to_owned(), 5),
                ("alpha".to_owned(), 10),
                ("beta".to_owned(), 10),
                ("alpha".to_owned(), 20),
            ]
        );
        log.clear_host(1);
        assert_eq!(log.snapshot().len(), 2);
        assert_eq!(log.displays(), vec!["t10", "t20"]);
    }

    #[test]
    fn worker_pool_runs_jobs_and_drains_on_drop() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = crossbeam::channel::unbounded();
        for i in 0..8u32 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                let _ = tx.send(i);
            }));
        }
        drop(tx);
        let mut got: Vec<u32> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        drop(pool);
    }
}
