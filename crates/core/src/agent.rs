//! [`AgentSpec`]: how applications describe an agent before launching it.

use tacoma_briefcase::{folders, Briefcase, Element};
use tacoma_security::{Keyring, Principal};
use tacoma_taxscript::Program;
use tacoma_vm::{code_types, ArtifactBundle};

use crate::wrapper::WRAPPERS_FOLDER;
use crate::TaxError;

/// What kind of code the agent carries.
#[derive(Debug, Clone)]
enum AgentCode {
    /// TaxScript source — the Figure 4 style of agent; runs on `vm_script`
    /// (or `vm_c` if explicitly targeted, which compiles it first).
    Script(String),
    /// Pre-compiled bytecode; runs on `vm_bin`.
    Bytecode(Program),
    /// A bundle of per-architecture binaries; runs on `vm_bin`.
    Bundle(ArtifactBundle),
}

/// A launchable agent description: code, identity, initial state, and
/// wrappers.
///
/// ```
/// use tacoma_core::AgentSpec;
///
/// let spec = AgentSpec::script("hello", r#"fn main() { display("hi"); }"#)
///     .folder("RESULTS", ["seed"])
///     .wrap("logging");
/// # let _ = spec;
/// ```
#[derive(Debug, Clone)]
pub struct AgentSpec {
    name: String,
    code: AgentCode,
    vm: Option<String>,
    principal: Option<Principal>,
    keyring: Option<Keyring>,
    wrappers: Vec<String>,
    state: Vec<(String, Vec<Element>)>,
}

impl AgentSpec {
    /// An agent carrying TaxScript source.
    pub fn script(name: impl Into<String>, source: impl Into<String>) -> Self {
        AgentSpec {
            name: name.into(),
            code: AgentCode::Script(source.into()),
            vm: None,
            principal: None,
            keyring: None,
            wrappers: Vec::new(),
            state: Vec::new(),
        }
    }

    /// An agent carrying pre-compiled bytecode.
    pub fn bytecode(name: impl Into<String>, program: Program) -> Self {
        AgentSpec {
            name: name.into(),
            code: AgentCode::Bytecode(program),
            vm: None,
            principal: None,
            keyring: None,
            wrappers: Vec::new(),
            state: Vec::new(),
        }
    }

    /// An agent carrying a bundle of per-architecture binaries (the §5
    /// Webbot shape).
    pub fn bundle(name: impl Into<String>, bundle: ArtifactBundle) -> Self {
        AgentSpec {
            name: name.into(),
            code: AgentCode::Bundle(bundle),
            vm: None,
            principal: None,
            keyring: None,
            wrappers: Vec::new(),
            state: Vec::new(),
        }
    }

    /// The agent's symbolic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Targets a specific VM instead of the code kind's default.
    pub fn on_vm(mut self, vm: impl Into<String>) -> Self {
        self.vm = Some(vm.into());
        self
    }

    /// Sets the owning principal (defaults to the launching host's system
    /// principal).
    pub fn owned_by(mut self, principal: Principal) -> Self {
        self.principal = Some(principal);
        self
    }

    /// Signs the agent core at launch so remote firewalls can
    /// authenticate it; also sets the principal from the keyring.
    pub fn signed_by(mut self, keyring: Keyring) -> Self {
        self.principal = Some(keyring.principal().clone());
        self.keyring = Some(keyring);
        self
    }

    /// Adds a wrapper spec *around* the current stack (first call is
    /// innermost, matching Figure 5 where `mwWebbot` is added before
    /// `rwWebbot`).
    pub fn wrap(mut self, spec: impl Into<String>) -> Self {
        self.wrappers.push(spec.into());
        self
    }

    /// Seeds a briefcase folder with text elements.
    pub fn folder<I, E>(mut self, name: impl Into<String>, elements: I) -> Self
    where
        I: IntoIterator<Item = E>,
        E: Into<Element>,
    {
        self.state
            .push((name.into(), elements.into_iter().map(Into::into).collect()));
        self
    }

    /// Seeds the `HOSTS` itinerary folder (Figure 4).
    pub fn itinerary<I, S>(self, hosts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.folder(
            folders::HOSTS,
            hosts.into_iter().map(|h| Element::from(h.into())),
        )
    }

    /// Builds the wire form of the agent-transfer message `go` would
    /// emit, for tooling (`taxsh send --connect`) that injects this agent
    /// into a remote `taxd` over TCP. The message claims `from_host` as
    /// its origin and targets the agent URI `to`.
    ///
    /// # Errors
    ///
    /// [`TaxError::BadAgentSpec`] on an inconsistent spec, or a URI parse
    /// failure on `to`.
    pub fn wire_transfer(
        &self,
        from_host: &str,
        principal: &Principal,
        to: &str,
    ) -> Result<Vec<u8>, TaxError> {
        let briefcase = self.build_briefcase(principal)?;
        let target: tacoma_uri::AgentUri = to.parse()?;
        Ok(tacoma_firewall::Message::transfer(
            from_host,
            principal.clone(),
            target,
            briefcase,
            false,
        )
        .encode())
    }

    /// The VM this agent should start on.
    pub(crate) fn target_vm(&self) -> String {
        if let Some(vm) = &self.vm {
            return vm.clone();
        }
        match self.code {
            AgentCode::Script(_) => "vm_script".to_owned(),
            AgentCode::Bytecode(_) | AgentCode::Bundle(_) => "vm_bin".to_owned(),
        }
    }

    /// The principal this agent runs as, given the launching host's system
    /// principal as default.
    pub(crate) fn resolve_principal(&self, local_system: &Principal) -> Principal {
        self.principal
            .clone()
            .unwrap_or_else(|| local_system.clone())
    }

    /// Assembles the agent's briefcase: code, name, state, wrappers, and
    /// (if a keyring was provided) the signature over the code.
    ///
    /// # Errors
    ///
    /// [`TaxError::BadAgentSpec`] if the spec is internally inconsistent.
    pub(crate) fn build_briefcase(&self, principal: &Principal) -> Result<Briefcase, TaxError> {
        let mut bc = Briefcase::new();
        bc.set_single(folders::AGENT_NAME, self.name.as_str());
        bc.set_single(folders::PRINCIPAL, principal.as_str());

        let (code, code_type): (Vec<u8>, &str) = match &self.code {
            AgentCode::Script(source) => {
                if source.trim().is_empty() {
                    return Err(TaxError::BadAgentSpec {
                        detail: "empty source".into(),
                    });
                }
                (source.clone().into_bytes(), code_types::TAXSCRIPT_SOURCE)
            }
            AgentCode::Bytecode(program) => (program.encode(), code_types::TAXSCRIPT_BYTECODE),
            AgentCode::Bundle(bundle) => {
                if bundle.artifacts().is_empty() {
                    return Err(TaxError::BadAgentSpec {
                        detail: "empty artifact bundle".into(),
                    });
                }
                (bundle.encode(), code_types::BINARY_ARTIFACT)
            }
        };
        if let Some(keyring) = &self.keyring {
            bc.set_single(folders::SIGNATURE, keyring.sign(&code).digest().to_hex());
        }
        bc.append(folders::CODE, code);
        bc.set_single(folders::CODE_TYPE, code_type);

        for spec in &self.wrappers {
            bc.append(WRAPPERS_FOLDER, spec.as_str());
        }
        for (name, elements) in &self.state {
            let folder = bc.ensure_folder(name);
            folder.extend(elements.iter().cloned());
        }
        Ok(bc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_spec_builds_briefcase() {
        let p = Principal::new("alice").unwrap();
        let bc = AgentSpec::script("hello", "fn main() { }")
            .itinerary(["tacoma://h2/vm_script"])
            .wrap("logging")
            .build_briefcase(&p)
            .unwrap();
        assert_eq!(bc.single_str(folders::AGENT_NAME).unwrap(), "hello");
        assert_eq!(bc.single_str(folders::PRINCIPAL).unwrap(), "alice");
        assert_eq!(
            bc.single_str(folders::CODE_TYPE).unwrap(),
            code_types::TAXSCRIPT_SOURCE
        );
        assert_eq!(bc.folder(folders::HOSTS).unwrap().len(), 1);
        assert_eq!(bc.folder(WRAPPERS_FOLDER).unwrap().len(), 1);
    }

    #[test]
    fn signing_adds_verifiable_signature() {
        use tacoma_security::TrustStore;
        let keys = Keyring::generate(&Principal::new("alice").unwrap(), 5);
        let bc = AgentSpec::script("a", "fn main() { }")
            .signed_by(keys.clone())
            .build_briefcase(keys.principal())
            .unwrap();
        let mut trust = TrustStore::new();
        trust.trust(keys.public());
        let sig = tacoma_security::Signature::from_digest(
            tacoma_security::Digest::from_hex(bc.single_str(folders::SIGNATURE).unwrap()).unwrap(),
        );
        let code = bc.element(folders::CODE, 0).unwrap();
        assert!(trust.verify(keys.principal(), code.data(), &sig).is_ok());
    }

    #[test]
    fn default_vm_tracks_code_kind() {
        assert_eq!(AgentSpec::script("a", "x").target_vm(), "vm_script");
        let program = tacoma_taxscript::compile_source("fn main() { }").unwrap();
        assert_eq!(AgentSpec::bytecode("a", program).target_vm(), "vm_bin");
        assert_eq!(
            AgentSpec::script("a", "x").on_vm("vm_c").target_vm(),
            "vm_c"
        );
    }

    #[test]
    fn empty_specs_rejected() {
        let p = Principal::new("p").unwrap();
        assert!(AgentSpec::script("a", "  ").build_briefcase(&p).is_err());
        assert!(AgentSpec::bundle("a", ArtifactBundle::new())
            .build_briefcase(&p)
            .is_err());
    }
}
