//! The monitoring wrapper — the `rwWebbot` of Figure 5.
//!
//! > "This wrapper reports back to a monitoring tool about the location of
//! > the agent it wraps (mwWebbot and Webbot) and can be queried about the
//! > status of the computation."

use tacoma_briefcase::{folders, Briefcase};

use crate::hooks::REPLY_TO_FOLDER;
use crate::wrapper::{Wrapper, WrapperCtx, WrapperEvent, WrapperVerdict};

/// Spec: `monitor:<report-uri>`, e.g. `monitor:tacoma://home/ag_log`.
///
/// * On every move, reports the new location to the monitoring URI (an
///   `ag_log append` request, so any host's log service can be the tool).
/// * Absorbs inbound briefcases whose `CMD` is `status` and answers them
///   directly (to the query's `REPLY-TO`) with the agent's current host —
///   the wrapped agent never sees monitoring traffic.
#[derive(Debug)]
pub struct MonitorWrapper {
    report_to: String,
    hops: u64,
}

impl MonitorWrapper {
    /// A monitor reporting to the given URI.
    pub fn new(report_to: impl Into<String>) -> Self {
        MonitorWrapper {
            report_to: report_to.into(),
            hops: 0,
        }
    }

    /// Parses the `monitor:<uri>` spec.
    pub fn from_spec(spec: &str) -> Result<Self, crate::TaxError> {
        match spec.split_once(':') {
            Some(("monitor", uri)) if !uri.is_empty() => Ok(MonitorWrapper::new(uri)),
            _ => Err(crate::TaxError::BadAgentSpec {
                detail: format!("monitor spec must be monitor:<uri>, got {spec:?}"),
            }),
        }
    }

    fn report(&self, ctx: &mut WrapperCtx<'_>, line: String) {
        let mut request = Briefcase::new();
        request.set_single(folders::COMMAND, "append");
        request.append(folders::ARGS, line);
        ctx.emit.push((self.report_to.clone(), request));
    }
}

impl Wrapper for MonitorWrapper {
    fn name(&self) -> &str {
        "monitor"
    }

    fn on_event(
        &mut self,
        event: &mut WrapperEvent<'_>,
        ctx: &mut WrapperCtx<'_>,
    ) -> WrapperVerdict {
        match event {
            WrapperEvent::Move { dest, .. } => {
                self.hops += 1;
                let line = format!("{} hop {} : {} -> {}", ctx.agent, self.hops, ctx.host, dest);
                self.report(ctx, line);
                ctx.notes
                    .push(format!("reported move to {}", self.report_to));
                WrapperVerdict::Continue
            }
            WrapperEvent::Inbound { briefcase } => {
                if briefcase.single_str(folders::COMMAND) == Ok("status") {
                    if let Ok(reply_to) = briefcase.single_str(REPLY_TO_FOLDER) {
                        let mut reply = Briefcase::new();
                        reply.set_single(folders::STATUS, "ok");
                        reply.set_single("LOCATION", ctx.host);
                        reply.set_single("AGENT", ctx.agent.to_string());
                        reply.set_single("HOPS", self.hops as i64);
                        ctx.emit.push((reply_to.to_owned(), reply));
                    }
                    ctx.notes.push("answered status query".to_owned());
                    return WrapperVerdict::Absorb;
                }
                WrapperVerdict::Continue
            }
            WrapperEvent::Outbound { .. } => WrapperVerdict::Continue,
        }
    }
}
