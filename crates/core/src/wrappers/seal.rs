//! The integrity (seal) wrapper: an example of agents "carrying with
//! them the system support they need" (§4) for hostile networks — every
//! outbound briefcase is MACed, every inbound briefcase is verified, and
//! tampered messages never reach the wrapped agent.

use tacoma_briefcase::Briefcase;
use tacoma_security::{Digest, Hasher};

use crate::wrapper::{Wrapper, WrapperCtx, WrapperEvent, WrapperVerdict};

/// The folder carrying the seal.
pub const SEAL_FOLDER: &str = "WRAP:SEAL";

/// Spec: `seal:<hex-key>`. Both endpoints must be wrapped with the same
/// key (distributed out of band, e.g. at launch).
///
/// * Outbound briefcases get a `WRAP:SEAL` folder: a MAC over every other
///   folder's contents.
/// * Inbound briefcases without a valid seal are absorbed, with a note on
///   the host event log; sealed-and-valid ones pass through (seal
///   stripped).
/// * Moves are left alone — agent transfers are already authenticated by
///   the firewall's signature check.
#[derive(Debug)]
pub struct SealWrapper {
    key: Vec<u8>,
    rejected: u64,
}

impl SealWrapper {
    /// A wrapper sealing with the given key bytes.
    pub fn new(key: Vec<u8>) -> Self {
        SealWrapper { key, rejected: 0 }
    }

    /// Parses the `seal:<hex>` spec.
    pub fn from_spec(spec: &str) -> Result<Self, crate::TaxError> {
        let bad = |detail: String| crate::TaxError::BadAgentSpec { detail };
        let Some(("seal", hex)) = spec.split_once(':') else {
            return Err(bad(format!(
                "seal spec must be seal:<hex-key>, got {spec:?}"
            )));
        };
        if hex.is_empty() || hex.len() % 2 != 0 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(bad(format!("seal key must be non-empty hex, got {hex:?}")));
        }
        let key = (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("validated hex"))
            .collect();
        Ok(SealWrapper::new(key))
    }

    /// MAC over every folder except the seal itself, order-independent
    /// thanks to the briefcase's sorted iteration.
    fn mac(&self, bc: &Briefcase) -> Digest {
        let mut h = Hasher::new();
        h.update(&self.key);
        for folder in bc.iter() {
            if folder.name() == SEAL_FOLDER {
                continue;
            }
            h.update(folder.name().as_bytes()).update(&[0]);
            for element in folder {
                h.update(&(element.len() as u64).to_le_bytes());
                h.update(element.data());
            }
        }
        h.update(&self.key);
        h.finalize()
    }

    /// Messages this wrapper has rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

impl Wrapper for SealWrapper {
    fn name(&self) -> &str {
        "seal"
    }

    fn on_event(
        &mut self,
        event: &mut WrapperEvent<'_>,
        ctx: &mut WrapperCtx<'_>,
    ) -> WrapperVerdict {
        match event {
            WrapperEvent::Outbound { briefcase, .. } => {
                let mac = self.mac(briefcase);
                briefcase.set_single(SEAL_FOLDER, mac.to_hex());
                WrapperVerdict::Continue
            }
            WrapperEvent::Inbound { briefcase } => {
                let presented = briefcase
                    .single_str(SEAL_FOLDER)
                    .ok()
                    .and_then(|hex| Digest::from_hex(hex).ok());
                let expected = self.mac(briefcase);
                match presented {
                    Some(d) if d == expected => {
                        briefcase.remove_folder(SEAL_FOLDER);
                        WrapperVerdict::Continue
                    }
                    Some(_) => {
                        self.rejected += 1;
                        ctx.notes
                            .push("seal: rejected tampered briefcase".to_owned());
                        WrapperVerdict::Absorb
                    }
                    None => {
                        self.rejected += 1;
                        ctx.notes
                            .push("seal: rejected unsealed briefcase".to_owned());
                        WrapperVerdict::Absorb
                    }
                }
            }
            WrapperEvent::Move { .. } => WrapperVerdict::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_simnet::SimTime;
    use tacoma_uri::{AgentAddress, Instance};

    fn ctx_parts() -> AgentAddress {
        AgentAddress::new("p", "a", Instance::from_u64(1))
    }

    fn run_event(
        w: &mut SealWrapper,
        mut event: WrapperEvent<'_>,
    ) -> (WrapperVerdict, Vec<String>) {
        let agent = ctx_parts();
        let mut notes = Vec::new();
        let mut emit = Vec::new();
        let mut ctx = WrapperCtx {
            agent: &agent,
            host: "h",
            now: SimTime::ZERO,
            notes: &mut notes,
            emit: &mut emit,
        };
        let verdict = w.on_event(&mut event, &mut ctx);
        (verdict, notes)
    }

    #[test]
    fn spec_parsing() {
        assert!(SealWrapper::from_spec("seal:deadbeef").is_ok());
        assert!(SealWrapper::from_spec("seal:").is_err());
        assert!(SealWrapper::from_spec("seal:xyz").is_err());
        assert!(SealWrapper::from_spec("seal:abc").is_err(), "odd length");
        assert!(SealWrapper::from_spec("banana:aa").is_err());
    }

    #[test]
    fn sealed_roundtrip_passes_and_strips() {
        let mut sender = SealWrapper::from_spec("seal:0102").unwrap();
        let mut receiver = SealWrapper::from_spec("seal:0102").unwrap();
        let mut bc = Briefcase::new();
        bc.set_single("PAYLOAD", "secret");

        let mut to = "x".to_owned();
        run_event(
            &mut sender,
            WrapperEvent::Outbound {
                to: &mut to,
                briefcase: &mut bc,
            },
        );
        assert!(bc.contains_folder(SEAL_FOLDER));

        let (verdict, _) = run_event(&mut receiver, WrapperEvent::Inbound { briefcase: &mut bc });
        assert_eq!(verdict, WrapperVerdict::Continue);
        assert!(
            !bc.contains_folder(SEAL_FOLDER),
            "seal stripped before the agent sees it"
        );
        assert_eq!(bc.single_str("PAYLOAD").unwrap(), "secret");
    }

    #[test]
    fn tampering_is_detected() {
        let mut sender = SealWrapper::from_spec("seal:0102").unwrap();
        let mut receiver = SealWrapper::from_spec("seal:0102").unwrap();
        let mut bc = Briefcase::new();
        bc.set_single("PAYLOAD", "secret");
        let mut to = "x".to_owned();
        run_event(
            &mut sender,
            WrapperEvent::Outbound {
                to: &mut to,
                briefcase: &mut bc,
            },
        );

        bc.set_single("PAYLOAD", "forged");
        let (verdict, notes) =
            run_event(&mut receiver, WrapperEvent::Inbound { briefcase: &mut bc });
        assert_eq!(verdict, WrapperVerdict::Absorb);
        assert!(notes[0].contains("tampered"));
        assert_eq!(receiver.rejected(), 1);
    }

    #[test]
    fn wrong_key_is_detected() {
        let mut sender = SealWrapper::from_spec("seal:0102").unwrap();
        let mut receiver = SealWrapper::from_spec("seal:0103").unwrap();
        let mut bc = Briefcase::new();
        bc.set_single("PAYLOAD", "secret");
        let mut to = "x".to_owned();
        run_event(
            &mut sender,
            WrapperEvent::Outbound {
                to: &mut to,
                briefcase: &mut bc,
            },
        );
        let (verdict, _) = run_event(&mut receiver, WrapperEvent::Inbound { briefcase: &mut bc });
        assert_eq!(verdict, WrapperVerdict::Absorb);
    }

    #[test]
    fn unsealed_messages_are_rejected() {
        let mut receiver = SealWrapper::from_spec("seal:0102").unwrap();
        let mut bc = Briefcase::new();
        bc.set_single("PAYLOAD", "bare");
        let (verdict, notes) =
            run_event(&mut receiver, WrapperEvent::Inbound { briefcase: &mut bc });
        assert_eq!(verdict, WrapperVerdict::Absorb);
        assert!(notes[0].contains("unsealed"));
    }

    #[test]
    fn adding_a_folder_breaks_the_seal() {
        let mut sender = SealWrapper::from_spec("seal:0102").unwrap();
        let mut receiver = SealWrapper::from_spec("seal:0102").unwrap();
        let mut bc = Briefcase::new();
        bc.set_single("PAYLOAD", "secret");
        let mut to = "x".to_owned();
        run_event(
            &mut sender,
            WrapperEvent::Outbound {
                to: &mut to,
                briefcase: &mut bc,
            },
        );
        bc.set_single("INJECTED", "extra");
        let (verdict, _) = run_event(&mut receiver, WrapperEvent::Inbound { briefcase: &mut bc });
        assert_eq!(verdict, WrapperVerdict::Absorb);
    }
}
