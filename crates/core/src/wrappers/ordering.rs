//! Message-ordering machinery for the group-communication wrapper:
//! FIFO (per-sender sequence numbers), causal (vector clocks), and total
//! (fixed sequencer) — the "desired properties of communication (casual,
//! FIFO, atomic, etc)" of §4.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

/// A vector clock over member names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock {
    counters: BTreeMap<String, u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The counter for `member`.
    pub fn get(&self, member: &str) -> u64 {
        self.counters.get(member).copied().unwrap_or(0)
    }

    /// Increments `member`'s counter, returning the new value.
    pub fn tick(&mut self, member: &str) -> u64 {
        let c = self.counters.entry(member.to_owned()).or_insert(0);
        *c += 1;
        *c
    }

    /// Pointwise maximum with another clock.
    pub fn merge(&mut self, other: &VectorClock) {
        for (member, &count) in &other.counters {
            let c = self.counters.entry(member.clone()).or_insert(0);
            *c = (*c).max(count);
        }
    }

    /// Whether a message stamped `msg` from `sender` is causally
    /// deliverable at a receiver whose clock is `self`:
    /// `msg[sender] == self[sender] + 1` and `msg[m] <= self[m]` for every
    /// other member.
    pub fn deliverable(&self, sender: &str, msg: &VectorClock) -> bool {
        if msg.get(sender) != self.get(sender) + 1 {
            return false;
        }
        msg.counters
            .iter()
            .all(|(member, &count)| member == sender || count <= self.get(member))
    }

    /// Serializes to `member=count` pairs joined by `,` for carrying in a
    /// briefcase element.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .counters
            .iter()
            .map(|(m, c)| format!("{m}={c}"))
            .collect();
        parts.join(",")
    }

    /// Parses the [`VectorClock::render`] format. Unparseable entries are
    /// dropped (hostile metadata degrades, it does not crash).
    pub fn parse(text: &str) -> Self {
        let mut vc = VectorClock::new();
        for part in text.split(',').filter(|p| !p.is_empty()) {
            if let Some((member, count)) = part.split_once('=') {
                if let Ok(count) = count.parse::<u64>() {
                    vc.counters.insert(member.to_owned(), count);
                }
            }
        }
        vc
    }
}

/// A message queued inside an ordering buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Held<T> {
    /// The sending member.
    pub sender: String,
    /// Sequence metadata (per-sender or global, depending on the order).
    pub seq: u64,
    /// Vector timestamp (causal order only).
    pub clock: VectorClock,
    /// The payload.
    pub payload: T,
}

/// A FIFO-order delivery buffer: messages from each sender are released in
/// per-sender sequence order; cross-sender order is unconstrained.
#[derive(Debug, Clone, Default)]
pub struct FifoBuffer<T> {
    next: BTreeMap<String, u64>,
    held: Vec<Held<T>>,
}

impl<T> FifoBuffer<T> {
    /// An empty buffer.
    pub fn new() -> Self {
        FifoBuffer {
            next: BTreeMap::new(),
            held: Vec::new(),
        }
    }

    /// Offers a message; returns every message now deliverable, in order.
    pub fn offer(&mut self, sender: &str, seq: u64, payload: T) -> Vec<T> {
        self.held.push(Held {
            sender: sender.to_owned(),
            seq,
            clock: VectorClock::new(),
            payload,
        });
        self.drain_ready()
    }

    /// Messages still held back.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    fn drain_ready(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        loop {
            let next = &self.next;
            let pos = self
                .held
                .iter()
                .position(|h| h.seq == next.get(&h.sender).copied().unwrap_or(0) + 1);
            match pos {
                Some(i) => {
                    let h = self.held.remove(i);
                    self.next.insert(h.sender.clone(), h.seq);
                    out.push(h.payload);
                }
                None => return out,
            }
        }
    }
}

/// A causal-order delivery buffer over vector clocks.
#[derive(Debug, Clone, Default)]
pub struct CausalBuffer<T> {
    clock: VectorClock,
    held: Vec<Held<T>>,
}

impl<T> CausalBuffer<T> {
    /// An empty buffer.
    pub fn new() -> Self {
        CausalBuffer {
            clock: VectorClock::new(),
            held: Vec::new(),
        }
    }

    /// The receiver's current vector clock.
    pub fn clock(&self) -> &VectorClock {
        &self.clock
    }

    /// Stamps an outgoing message: ticks `sender`'s own entry (a send is
    /// causally after everything delivered so far) and returns the stamp.
    pub fn stamp_send(&mut self, sender: &str) -> VectorClock {
        self.clock.tick(sender);
        self.clock.clone()
    }

    /// Offers a stamped message; returns everything now deliverable, in
    /// causal order.
    pub fn offer(&mut self, sender: &str, stamp: VectorClock, payload: T) -> Vec<T> {
        self.held.push(Held {
            sender: sender.to_owned(),
            seq: 0,
            clock: stamp,
            payload,
        });
        let mut out = Vec::new();
        loop {
            let pos = self
                .held
                .iter()
                .position(|h| self.clock.deliverable(&h.sender, &h.clock));
            match pos {
                Some(i) => {
                    let h = self.held.remove(i);
                    self.clock.merge(&h.clock);
                    out.push(h.payload);
                }
                None => return out,
            }
        }
    }

    /// Messages still held back.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }
}

/// A total-order delivery buffer: a single global sequence, released
/// gaplessly.
#[derive(Debug, Clone, Default)]
pub struct TotalBuffer<T> {
    next: u64,
    held: BTreeMap<u64, T>,
}

impl<T> TotalBuffer<T> {
    /// An empty buffer expecting global sequence 1 first.
    pub fn new() -> Self {
        TotalBuffer {
            next: 1,
            held: BTreeMap::new(),
        }
    }

    /// Offers a message with its global sequence number; returns
    /// everything now deliverable, in sequence order. Duplicate sequence
    /// numbers keep the first.
    pub fn offer(&mut self, seq: u64, payload: T) -> Vec<T> {
        if seq >= self.next {
            self.held.entry(seq).or_insert(payload);
        }
        let mut out = Vec::new();
        while let Some(p) = self.held.remove(&self.next) {
            out.push(p);
            self.next += 1;
        }
        out
    }

    /// Messages still held back.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }
}

/// Outbound sequence-number allocation for FIFO senders.
#[derive(Debug, Clone, Default)]
pub struct FifoSender {
    seq: u64,
}

impl FifoSender {
    /// Allocates the next per-sender sequence number (starting at 1).
    pub fn allocate(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

/// A simple reorder queue used in tests to model adversarial delivery.
#[derive(Debug, Default)]
pub struct Scrambler<T> {
    items: VecDeque<T>,
}

impl<T> Scrambler<T> {
    /// An empty scrambler.
    pub fn new() -> Self {
        Scrambler {
            items: VecDeque::new(),
        }
    }

    /// Adds an item.
    pub fn push(&mut self, item: T) {
        self.items.push_back(item);
    }

    /// Removes items in reversed order (worst case for FIFO).
    pub fn drain_reversed(&mut self) -> Vec<T> {
        let mut v: Vec<T> = self.items.drain(..).collect();
        v.reverse();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_clock_tick_merge() {
        let mut a = VectorClock::new();
        a.tick("p");
        a.tick("p");
        let mut b = VectorClock::new();
        b.tick("q");
        b.merge(&a);
        assert_eq!(b.get("p"), 2);
        assert_eq!(b.get("q"), 1);
    }

    #[test]
    fn vector_clock_render_parse_roundtrip() {
        let mut vc = VectorClock::new();
        vc.tick("alpha");
        vc.tick("beta");
        vc.tick("beta");
        assert_eq!(VectorClock::parse(&vc.render()), vc);
        assert_eq!(VectorClock::parse(""), VectorClock::new());
        assert_eq!(VectorClock::parse("garbage,x=y,ok=3").get("ok"), 3);
    }

    #[test]
    fn causal_deliverability_rule() {
        let mut receiver = VectorClock::new();
        // First message from p: p=1.
        let mut m1 = VectorClock::new();
        m1.tick("p");
        assert!(receiver.deliverable("p", &m1));
        // p=2 is not deliverable before p=1.
        let mut m2 = m1.clone();
        m2.tick("p");
        assert!(!receiver.deliverable("p", &m2));
        receiver.merge(&m1);
        assert!(receiver.deliverable("p", &m2));
        // A message from q that depends on p=1 is blocked until p=1 seen.
        let mut fresh = VectorClock::new();
        let mut mq = m1.clone();
        mq.tick("q");
        assert!(!fresh.deliverable("q", &mq));
        fresh.merge(&m1);
        assert!(fresh.deliverable("q", &mq));
    }

    #[test]
    fn fifo_buffer_reorders_per_sender() {
        let mut buf = FifoBuffer::new();
        assert!(buf.offer("p", 2, "p2").is_empty());
        assert!(buf.offer("p", 3, "p3").is_empty());
        assert_eq!(
            buf.offer("q", 1, "q1"),
            vec!["q1"],
            "other senders are independent"
        );
        assert_eq!(buf.offer("p", 1, "p1"), vec!["p1", "p2", "p3"]);
        assert_eq!(buf.held_count(), 0);
    }

    #[test]
    fn fifo_buffer_is_robust_to_reversal() {
        let mut scrambler = Scrambler::new();
        for seq in 1..=10u64 {
            scrambler.push(seq);
        }
        let mut buf = FifoBuffer::new();
        let mut delivered = Vec::new();
        for seq in scrambler.drain_reversed() {
            delivered.extend(buf.offer("s", seq, seq));
        }
        assert_eq!(delivered, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn causal_buffer_respects_dependencies() {
        // p sends m1; q receives m1 then sends m2. A third member must
        // deliver m1 before m2 even if m2 arrives first.
        let mut p = VectorClock::new();
        p.tick("p"); // m1 stamp: p=1
        let m1_stamp = p.clone();

        let mut q = VectorClock::new();
        q.merge(&m1_stamp);
        q.tick("q"); // m2 stamp: p=1, q=1
        let m2_stamp = q.clone();

        let mut third = CausalBuffer::new();
        assert!(
            third.offer("q", m2_stamp, "m2").is_empty(),
            "m2 must wait for m1"
        );
        assert_eq!(third.offer("p", m1_stamp, "m1"), vec!["m1", "m2"]);
        assert_eq!(third.held_count(), 0);
    }

    #[test]
    fn total_buffer_releases_gaplessly() {
        let mut buf = TotalBuffer::new();
        assert!(buf.offer(3, "c").is_empty());
        assert!(buf.offer(2, "b").is_empty());
        assert_eq!(buf.offer(1, "a"), vec!["a", "b", "c"]);
        // Duplicates and stale sequence numbers are ignored.
        assert!(buf.offer(2, "b-dup").is_empty());
        assert_eq!(buf.offer(4, "d"), vec!["d"]);
    }

    #[test]
    fn fifo_sender_counts_from_one() {
        let mut s = FifoSender::default();
        assert_eq!(s.allocate(), 1);
        assert_eq!(s.allocate(), 2);
    }
}
