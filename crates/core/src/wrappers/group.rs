//! The group-communication wrapper of §4.
//!
//! > "For instance, a group communication wrapper can be used to wrap an
//! > application agent. As the wrapper is instantiated, it is given
//! > parameters such as group membership (all agents sharing common
//! > class), and desired properties of communication (casual, FIFO,
//! > atomic, etc)."
//!
//! The wrapped agent multicasts by sending a briefcase to the literal
//! target `group`; the wrapper absorbs it and fans it out to every member
//! with ordering metadata. Inbound group messages are buffered until the
//! chosen order allows delivery, then re-injected to the agent.

use tacoma_briefcase::Briefcase;

use crate::wrapper::{Wrapper, WrapperCtx, WrapperEvent, WrapperVerdict};
use crate::wrappers::ordering::{CausalBuffer, FifoBuffer, FifoSender, TotalBuffer, VectorClock};
use crate::TaxError;

/// The literal send target the wrapped agent uses to multicast.
pub const GROUP_TARGET: &str = "group";

mod meta {
    pub const SENDER: &str = "GRP:SENDER";
    pub const SEQ: &str = "GRP:SEQ";
    pub const VCLOCK: &str = "GRP:VC";
    pub const FORWARD: &str = "GRP:FORWARD";
    pub const DELIVERED: &str = "GRP:DELIVERED";
}

/// The ordering property the group enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupOrder {
    /// Per-sender FIFO.
    Fifo,
    /// Causal order via vector clocks.
    Causal,
    /// Total (atomic) order via a fixed sequencer — the first member.
    Total,
}

/// One group member: a stable name and the host it lives on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// The member's agent name.
    pub name: String,
    /// The member's host.
    pub host: String,
}

impl Member {
    fn uri(&self) -> String {
        format!("tacoma://{}/{}", self.host, self.name)
    }
}

enum Buffer {
    Fifo(FifoBuffer<Briefcase>),
    Causal(CausalBuffer<Briefcase>),
    Total(TotalBuffer<Briefcase>),
}

/// Spec: `group:<order>:<name@host,name@host,...>` with order one of
/// `fifo`, `causal`, `total`. The wrapped agent's own name must be one of
/// the members.
pub struct GroupWrapper {
    order: GroupOrder,
    members: Vec<Member>,
    fifo_sender: FifoSender,
    total_seq: u64,
    buffer: Buffer,
}

impl GroupWrapper {
    /// Builds a group wrapper from its parts.
    pub fn new(order: GroupOrder, members: Vec<Member>) -> Self {
        let buffer = match order {
            GroupOrder::Fifo => Buffer::Fifo(FifoBuffer::new()),
            GroupOrder::Causal => Buffer::Causal(CausalBuffer::new()),
            GroupOrder::Total => Buffer::Total(TotalBuffer::new()),
        };
        GroupWrapper {
            order,
            members,
            fifo_sender: FifoSender::default(),
            total_seq: 0,
            buffer,
        }
    }

    /// Parses the `group:<order>:<members>` spec.
    ///
    /// # Errors
    ///
    /// [`TaxError::BadAgentSpec`] on malformed order or member list.
    pub fn from_spec(spec: &str) -> Result<Self, TaxError> {
        let bad = |detail: String| TaxError::BadAgentSpec { detail };
        let mut parts = spec.splitn(3, ':');
        let _ = parts.next(); // "group"
        let order = match parts.next() {
            Some("fifo") => GroupOrder::Fifo,
            Some("causal") => GroupOrder::Causal,
            Some("total") => GroupOrder::Total,
            other => return Err(bad(format!("unknown group order {other:?}"))),
        };
        let members_text = parts
            .next()
            .ok_or_else(|| bad("missing member list".into()))?;
        let mut members = Vec::new();
        for entry in members_text.split(',').filter(|e| !e.is_empty()) {
            let (name, host) = entry
                .split_once('@')
                .ok_or_else(|| bad(format!("member {entry:?} must be name@host")))?;
            members.push(Member {
                name: name.to_owned(),
                host: host.to_owned(),
            });
        }
        if members.is_empty() {
            return Err(bad("empty member list".into()));
        }
        Ok(GroupWrapper::new(order, members))
    }

    fn sequencer(&self) -> &Member {
        &self.members[0]
    }

    fn is_sequencer(&self, ctx: &WrapperCtx<'_>) -> bool {
        self.sequencer().name == ctx.agent.name()
    }

    /// Fans a payload out to the members; when `include_self` is false,
    /// the wrapped agent's own member entry is skipped.
    fn multicast(&self, payload: &Briefcase, include_self: bool, ctx: &mut WrapperCtx<'_>) {
        for member in &self.members {
            if !include_self && member.name == ctx.agent.name() {
                continue;
            }
            ctx.emit.push((member.uri(), payload.clone()));
        }
    }

    /// Assigns the next global sequence number (sequencer only).
    fn assign_total(&mut self, payload: &mut Briefcase) {
        self.total_seq += 1;
        payload.set_single(meta::SEQ, self.total_seq as i64);
        payload.remove_folder(meta::FORWARD);
    }

    fn deliver_ready(&mut self, ready: Vec<Briefcase>, ctx: &mut WrapperCtx<'_>) {
        let self_uri = ctx.agent.to_uri().to_string();
        for mut bc in ready {
            bc.set_single(meta::DELIVERED, 1i64);
            ctx.emit.push((self_uri.clone(), bc));
        }
    }
}

impl Wrapper for GroupWrapper {
    fn name(&self) -> &str {
        "group"
    }

    fn on_event(
        &mut self,
        event: &mut WrapperEvent<'_>,
        ctx: &mut WrapperCtx<'_>,
    ) -> WrapperVerdict {
        match event {
            WrapperEvent::Outbound { to, briefcase } => {
                if to.as_str() != GROUP_TARGET {
                    return WrapperVerdict::Continue;
                }
                let mut payload = briefcase.clone();
                payload.set_single(meta::SENDER, ctx.agent.name());
                match self.order {
                    GroupOrder::Fifo => {
                        payload.set_single(meta::SEQ, self.fifo_sender.allocate() as i64);
                        self.multicast(&payload, false, ctx);
                    }
                    GroupOrder::Causal => {
                        let stamp = match &mut self.buffer {
                            Buffer::Causal(buf) => buf.stamp_send(ctx.agent.name()),
                            _ => VectorClock::new(),
                        };
                        payload.set_single(meta::VCLOCK, stamp.render());
                        self.multicast(&payload, false, ctx);
                    }
                    GroupOrder::Total => {
                        if self.is_sequencer(ctx) {
                            self.assign_total(&mut payload);
                            self.multicast(&payload, true, ctx);
                        } else {
                            payload.set_single(meta::FORWARD, 1i64);
                            ctx.emit.push((self.sequencer().uri(), payload));
                        }
                    }
                }
                ctx.notes.push(format!("multicast as {:?}", self.order));
                WrapperVerdict::Absorb
            }
            WrapperEvent::Inbound { briefcase } => {
                // Already-ordered re-injections pass through to the agent.
                if briefcase.contains_folder(meta::DELIVERED) {
                    briefcase.remove_folder(meta::DELIVERED);
                    return WrapperVerdict::Continue;
                }
                // Sequencer duty: order forwarded sends.
                if briefcase.contains_folder(meta::FORWARD) {
                    if self.order == GroupOrder::Total && self.is_sequencer(ctx) {
                        let mut payload = briefcase.clone();
                        self.assign_total(&mut payload);
                        self.multicast(&payload, true, ctx);
                        ctx.notes.push("sequenced forwarded multicast".to_owned());
                    }
                    return WrapperVerdict::Absorb;
                }
                let Ok(sender) = briefcase.single_str(meta::SENDER).map(str::to_owned) else {
                    // Not a group message; let it through untouched.
                    return WrapperVerdict::Continue;
                };
                let ready = match &mut self.buffer {
                    Buffer::Fifo(buf) => {
                        let seq = briefcase.single_i64(meta::SEQ).unwrap_or(0).max(0) as u64;
                        buf.offer(&sender, seq, briefcase.clone())
                    }
                    Buffer::Causal(buf) => {
                        let stamp =
                            VectorClock::parse(briefcase.single_str(meta::VCLOCK).unwrap_or(""));
                        buf.offer(&sender, stamp, briefcase.clone())
                    }
                    Buffer::Total(buf) => {
                        let seq = briefcase.single_i64(meta::SEQ).unwrap_or(0).max(0) as u64;
                        buf.offer(seq, briefcase.clone())
                    }
                };
                if !ready.is_empty() {
                    ctx.notes
                        .push(format!("released {} ordered message(s)", ready.len()));
                }
                self.deliver_ready(ready, ctx);
                WrapperVerdict::Absorb
            }
            WrapperEvent::Move { .. } => {
                // Moving resets in-memory ordering state; note it so
                // operators can see why a moved member re-syncs.
                ctx.notes
                    .push("group member moving; ordering buffers reset at destination".into());
                WrapperVerdict::Continue
            }
        }
    }
}

impl std::fmt::Debug for GroupWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GroupWrapper({:?}, {} members)",
            self.order,
            self.members.len()
        )
    }
}
