//! The location-transparency wrapper of §4: "if the agents are to move,
//! one can add a location transparent wrapper".
//!
//! A home host runs the `ag_locator` service (a name → URI registry); the
//! wrapper updates the registry on every move, so tools and other agents
//! can always resolve the wrapped agent's stable name to its current
//! location.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use tacoma_briefcase::{folders, Briefcase};

use crate::service::{arg, command_of, error_reply, ok_reply, ServiceAgent, ServiceEnv};
use crate::wrapper::{Wrapper, WrapperCtx, WrapperEvent, WrapperVerdict};

/// The home-base name registry service. Commands:
/// `update <name> <uri>`, `lookup <name>` → `URI`, `forget <name>`.
#[derive(Debug, Default)]
pub struct AgLocator {
    locations: Mutex<BTreeMap<String, String>>,
}

impl AgLocator {
    /// A new, empty locator.
    pub fn new() -> Self {
        AgLocator::default()
    }
}

impl ServiceAgent for AgLocator {
    fn name(&self) -> &str {
        "ag_locator"
    }

    fn handle(&self, request: &mut Briefcase, _env: &mut ServiceEnv<'_>) -> Briefcase {
        let mut locations = self.locations.lock();
        match command_of(request) {
            "update" => {
                let (Some(name), Some(uri)) = (arg(request, 0), arg(request, 1)) else {
                    return error_reply("update: need name and uri");
                };
                locations.insert(name.to_owned(), uri.to_owned());
                ok_reply()
            }
            "lookup" => {
                let Some(name) = arg(request, 0) else {
                    return error_reply("lookup: need name");
                };
                match locations.get(name) {
                    Some(uri) => {
                        let mut reply = ok_reply();
                        reply.set_single("URI", uri.as_str());
                        reply
                    }
                    None => error_reply(format!("lookup: {name:?} unknown")),
                }
            }
            "forget" => {
                let Some(name) = arg(request, 0) else {
                    return error_reply("forget: need name");
                };
                locations.remove(name);
                ok_reply()
            }
            other => error_reply(format!("ag_locator: unknown command {other:?}")),
        }
    }
}

/// Spec: `location:<locator-uri>`, e.g.
/// `location:tacoma://home/ag_locator`. On every move, sends
/// `update <agent-name> tacoma://<dest-host>/<agent-name>` to the locator.
#[derive(Debug)]
pub struct LocationWrapper {
    locator: String,
}

impl LocationWrapper {
    /// A wrapper registering with the given locator service URI.
    pub fn new(locator: impl Into<String>) -> Self {
        LocationWrapper {
            locator: locator.into(),
        }
    }

    /// Parses the `location:<uri>` spec.
    pub fn from_spec(spec: &str) -> Result<Self, crate::TaxError> {
        match spec.split_once(':') {
            Some(("location", uri)) if !uri.is_empty() => Ok(LocationWrapper::new(uri)),
            _ => Err(crate::TaxError::BadAgentSpec {
                detail: format!("location spec must be location:<uri>, got {spec:?}"),
            }),
        }
    }
}

impl Wrapper for LocationWrapper {
    fn name(&self) -> &str {
        "location"
    }

    fn on_event(
        &mut self,
        event: &mut WrapperEvent<'_>,
        ctx: &mut WrapperCtx<'_>,
    ) -> WrapperVerdict {
        if let WrapperEvent::Move { dest, .. } = event {
            // The stable handle is the agent's name; its new address is
            // host-qualified.
            let host = dest
                .parse::<tacoma_uri::AgentUri>()
                .ok()
                .and_then(|u| u.host().map(str::to_owned))
                .unwrap_or_else(|| ctx.host.to_owned());
            let new_uri = format!("tacoma://{host}/{}", ctx.agent.name());
            let mut request = Briefcase::new();
            request.set_single(folders::COMMAND, "update");
            request.append(folders::ARGS, ctx.agent.name());
            request.append(folders::ARGS, new_uri);
            ctx.emit.push((self.locator.clone(), request));
            ctx.notes
                .push(format!("location registered with {}", self.locator));
        }
        WrapperVerdict::Continue
    }
}
