//! A logging wrapper: observes every interaction of the wrapped agent and
//! records it, without the agent knowing (Figure 5's "Logging" layer).

use crate::wrapper::{Wrapper, WrapperCtx, WrapperEvent, WrapperVerdict};

/// Spec: `logging`. Appends a `LOG` entry to every briefcase the agent
/// sends and notes every event on the host log.
#[derive(Debug, Default)]
pub struct LoggingWrapper {
    events_seen: u64,
}

impl LoggingWrapper {
    /// A new logging wrapper.
    pub fn new() -> Self {
        LoggingWrapper::default()
    }
}

impl Wrapper for LoggingWrapper {
    fn name(&self) -> &str {
        "logging"
    }

    fn on_event(
        &mut self,
        event: &mut WrapperEvent<'_>,
        ctx: &mut WrapperCtx<'_>,
    ) -> WrapperVerdict {
        self.events_seen += 1;
        match event {
            WrapperEvent::Outbound { to, briefcase } => {
                briefcase.append(
                    tacoma_briefcase::folders::LOG,
                    format!(
                        "[{}] {} -> {} (event {})",
                        ctx.now, ctx.agent, to, self.events_seen
                    ),
                );
                ctx.notes.push(format!("send to {to}"));
            }
            WrapperEvent::Inbound { .. } => {
                ctx.notes.push("received briefcase".to_owned());
            }
            WrapperEvent::Move { dest, briefcase } => {
                briefcase.append(
                    tacoma_briefcase::folders::LOG,
                    format!(
                        "[{}] {} moving {} -> {}",
                        ctx.now, ctx.agent, ctx.host, dest
                    ),
                );
                ctx.notes.push(format!("moving to {dest}"));
            }
        }
        WrapperVerdict::Continue
    }
}
