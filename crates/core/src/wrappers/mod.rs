//! The stock wrappers (§4) and the standard factory every host starts
//! with.

mod group;
mod location;
mod logging;
mod monitor;
pub mod ordering;
mod seal;

pub use group::{GroupOrder, GroupWrapper, Member, GROUP_TARGET};
pub use location::{AgLocator, LocationWrapper};
pub use logging::LoggingWrapper;
pub use monitor::MonitorWrapper;
pub use seal::{SealWrapper, SEAL_FOLDER};

use crate::wrapper::WrapperFactory;

/// The factory installed on every host: knows `logging`,
/// `monitor:<uri>`, `location:<uri>`, `group:<order>:<name@host,...>`,
/// and `seal:<hex-key>`.
pub fn standard_factory() -> WrapperFactory {
    let mut factory = WrapperFactory::new();
    factory.register("logging", |_spec| Ok(Box::new(LoggingWrapper::new())));
    factory.register("monitor", |spec| {
        Ok(Box::new(MonitorWrapper::from_spec(spec)?))
    });
    factory.register("location", |spec| {
        Ok(Box::new(LocationWrapper::from_spec(spec)?))
    });
    factory.register("group", |spec| Ok(Box::new(GroupWrapper::from_spec(spec)?)));
    factory.register("seal", |spec| Ok(Box::new(SealWrapper::from_spec(spec)?)));
    factory
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_factory_knows_stock_wrappers() {
        let factory = standard_factory();
        assert!(factory.build("logging").is_ok());
        assert!(factory.build("monitor:tacoma://h/ag_log").is_ok());
        assert!(factory.build("location:tacoma://h/ag_locator").is_ok());
        assert!(factory.build("group:fifo:a@h1,b@h2").is_ok());
        assert!(factory.build("group:causal:a@h1,b@h2,c@h3").is_ok());
        assert!(factory.build("group:total:a@h1,b@h2").is_ok());
        assert!(factory.build("seal:c0ffee").is_ok());
    }

    #[test]
    fn malformed_specs_rejected() {
        let factory = standard_factory();
        assert!(factory.build("monitor").is_err());
        assert!(factory.build("monitor:").is_err());
        assert!(factory.build("location").is_err());
        assert!(factory.build("group:banana:a@h1").is_err());
        assert!(factory.build("group:fifo:").is_err());
        assert!(factory.build("group:fifo:no-at-sign").is_err());
        assert!(factory.build("unknown").is_err());
    }
}
