//! [`TaxSystem`]: a whole simulated deployment, with a deterministic
//! scheduler.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use tacoma_briefcase::{folders, Briefcase};
use tacoma_firewall::{AgentStatus, Message};
use tacoma_security::{Keyring, Principal};
use tacoma_simnet::{LinkSpec, MessageBus, Network, SimClock, Topology};
use tacoma_taxscript::Outcome;
use tacoma_uri::AgentAddress;
use tacoma_vm::VirtualMachine;

use crate::agent::AgentSpec;
use crate::event::{EventKind, HostEvent};
use crate::hooks::{exec_context_for, make_ctx, Kernel, KernelHooks};
use crate::host::{HostBuilder, TaxHost};
use crate::TaxError;

/// Hard cap on scheduler steps per [`TaxSystem::run_until_quiet`] call —
/// a backstop against agent ping-pong loops.
const MAX_STEPS: usize = 1_000_000;

/// Builds a [`TaxSystem`].
pub struct SystemBuilder {
    hosts: Vec<HostBuilder>,
    default_link: LinkSpec,
    links: Vec<(String, String, LinkSpec)>,
    seed: u64,
    trust_all: bool,
    transport: Option<Arc<dyn tacoma_transport::Transport>>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("hosts", &self.hosts)
            .field("seed", &self.seed)
            .field("trust_all", &self.trust_all)
            .field("transport", &self.transport.as_ref().map(|t| t.kind()))
            .finish_non_exhaustive()
    }
}

impl SystemBuilder {
    /// An empty deployment with the paper's 100 Mbit LAN as the default
    /// link.
    pub fn new() -> Self {
        SystemBuilder {
            hosts: Vec::new(),
            default_link: LinkSpec::lan_100mbit(),
            links: Vec::new(),
            seed: 1,
            trust_all: false,
            transport: None,
        }
    }

    /// Adds a host with default configuration.
    ///
    /// # Errors
    ///
    /// [`TaxError::Net`] on an invalid host name.
    pub fn host(mut self, name: &str) -> Result<Self, TaxError> {
        self.hosts.push(HostBuilder::new(name)?);
        Ok(self)
    }

    /// Adds a fully configured host.
    pub fn host_with(mut self, builder: HostBuilder) -> Self {
        self.hosts.push(builder);
        self
    }

    /// Sets the link used by host pairs without an explicit one.
    pub fn default_link(mut self, link: LinkSpec) -> Self {
        self.default_link = link;
        self
    }

    /// Sets a specific link between two hosts.
    pub fn link(mut self, a: &str, b: &str, link: LinkSpec) -> Self {
        self.links.push((a.to_owned(), b.to_owned(), link));
        self
    }

    /// Seeds the network's loss randomness (and the system keyrings).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates a system keyring per host and cross-installs all
    /// verification keys: every host trusts every other host's system
    /// principal (one administrative domain, the paper's deployment).
    pub fn trust_all(mut self) -> Self {
        self.trust_all = true;
        self
    }

    /// Overrides the outbound transport. Defaults to the in-process
    /// simnet bus; `taxd` installs a [`TcpTransport`] here so the same
    /// kernel ships messages over real sockets.
    ///
    /// [`TcpTransport`]: tacoma_transport::TcpTransport
    pub fn transport(mut self, transport: Arc<dyn tacoma_transport::Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Builds the system.
    pub fn build(self) -> TaxSystem {
        let mut topology = Topology::new(self.default_link);
        for hb in &self.hosts {
            topology.add_host(hb.name().clone());
        }
        for (a, b, link) in &self.links {
            if let (Ok(a), Ok(b)) = (
                tacoma_simnet::HostId::new(a.clone()),
                tacoma_simnet::HostId::new(b.clone()),
            ) {
                topology.set_link(&a, &b, *link);
            }
        }
        let net = Arc::new(Network::new(topology, self.seed));
        let bus = MessageBus::new(Arc::clone(&net));

        let mut hosts = BTreeMap::new();
        let mut keyrings = BTreeMap::new();

        let built: Vec<TaxHost> = self.hosts.into_iter().map(HostBuilder::build).collect();

        if self.trust_all {
            for (i, host) in built.iter().enumerate() {
                let system = Principal::local_system(host.name());
                let keyring = Keyring::generate(&system, self.seed.wrapping_add(i as u64));
                keyrings.insert(host.name().to_owned(), keyring);
            }
            for host in &built {
                host.with_firewall(|fw| {
                    for keyring in keyrings.values() {
                        fw.trust_mut().trust(keyring.public());
                    }
                });
            }
        }

        for host in built {
            let inbox = bus.register(host.host_id().clone());
            host.set_inbox(inbox);
            hosts.insert(host.name().to_owned(), host);
        }

        let directory = Arc::new(RwLock::new(hosts));
        let transport = self
            .transport
            .unwrap_or_else(|| Arc::new(tacoma_transport::SimTransport::new(bus.clone())));
        TaxSystem {
            kernel: Kernel {
                directory,
                net,
                transport,
            },
            keyrings,
        }
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

/// A running deployment: hosts, network, and the deterministic scheduler.
pub struct TaxSystem {
    kernel: Kernel,
    keyrings: BTreeMap<String, Keyring>,
}

impl TaxSystem {
    /// The host with the given name.
    pub fn host(&self, name: &str) -> Option<TaxHost> {
        self.kernel.host(name)
    }

    /// All host names, sorted.
    pub fn host_names(&self) -> Vec<String> {
        self.kernel.directory.read().keys().cloned().collect()
    }

    /// The simulated network (stats, fault injection, clock).
    pub fn network(&self) -> Arc<Network> {
        Arc::clone(&self.kernel.net)
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> SimClock {
        self.kernel.net.clock().clone()
    }

    /// The system keyring generated for a host by
    /// [`SystemBuilder::trust_all`], if any.
    pub fn keyring(&self, host: &str) -> Option<&Keyring> {
        self.keyrings.get(host)
    }

    /// The transport outbound messages ship over.
    pub fn transport(&self) -> Arc<dyn tacoma_transport::Transport> {
        Arc::clone(&self.kernel.transport)
    }

    /// Routes a wire-encoded message that arrived from outside the
    /// process (a frame a [`TransportListener`] accepted over TCP) into
    /// `host_name`'s firewall, exactly as a simnet envelope would be.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] when the host is not in this process.
    ///
    /// [`TransportListener`]: tacoma_transport::TransportListener
    pub fn inject_wire(&mut self, host_name: &str, payload: &[u8]) -> Result<(), TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        self.kernel.process_wire(&host, payload);
        Ok(())
    }

    /// Retries transport delivery of messages parked in `host_name`'s
    /// pending queue for remote hosts. Returns `(delivered, reparked)`.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] when the host is not in this process.
    pub fn redeliver_remote_pending(
        &mut self,
        host_name: &str,
    ) -> Result<(usize, usize), TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        let now = self.kernel.now();
        let transport = Arc::clone(&self.kernel.transport);
        Ok(host.with_firewall(|fw| fw.redeliver_remote_pending(now, &*transport)))
    }

    /// Installs a user keyring's verification key on every host.
    pub fn trust_everywhere(&self, keyring: &Keyring) {
        for host in self.kernel.directory.read().values() {
            host.with_firewall(|fw| {
                fw.trust_mut().trust(keyring.public());
            });
        }
    }

    /// Launches an agent on a host; returns its address.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] or spec/install failures.
    #[allow(clippy::needless_pass_by_value)] // a spec describes exactly one launch; taking it keeps call sites builder-shaped
    pub fn launch(&mut self, host_name: &str, spec: AgentSpec) -> Result<AgentAddress, TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        let local_system = host.with_firewall(|fw| fw.local_system().clone());
        let principal = spec.resolve_principal(&local_system);
        let briefcase = spec.build_briefcase(&principal)?;
        let instance = host.with_firewall(tacoma_firewall::Firewall::allocate_instance);
        let address = AgentAddress::new(principal.as_str(), spec.name(), instance);
        self.kernel
            .install(&host, spec.target_vm(), address.clone(), briefcase)?;
        Ok(address)
    }

    /// Sends an admin command (`list`, `runtime`, `stop`, `resume`,
    /// `kill`) to a host's firewall on behalf of `principal`, returning
    /// the reply.
    ///
    /// # Errors
    ///
    /// Firewall denials and admin errors.
    pub fn admin(
        &mut self,
        host_name: &str,
        principal: &Principal,
        command: &str,
        args: &[&str],
    ) -> Result<Briefcase, TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        let mut request = Briefcase::new();
        request.set_single(folders::COMMAND, command);
        for a in args {
            request.append(folders::ARGS, *a);
        }
        let message = Message::deliver(
            host.name(),
            principal.clone(),
            None,
            tacoma_firewall::FIREWALL_AGENT_NAME.parse()?,
            request,
        );
        let now = self.kernel.now();
        let decision = host.with_firewall(|fw| fw.route_outbound(message, now))?;
        match decision {
            tacoma_firewall::Decision::Admin { reply, control } => {
                self.kernel.apply_admin(&host, reply.clone(), control, 0);
                Ok(reply)
            }
            other => Err(TaxError::BadAgentSpec {
                detail: format!("admin produced unexpected decision {other:?}"),
            }),
        }
    }

    /// Calls a service agent on a host directly (tooling path — e.g. an
    /// operator fetching a parked report from `ag_cabinet`). The call is
    /// authorized as `principal` with its authenticated rights.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] / [`TaxError::BadAgentSpec`] when the
    /// host or service does not exist.
    pub fn call_service(
        &mut self,
        host_name: &str,
        service_name: &str,
        principal: &Principal,
        mut request: Briefcase,
    ) -> Result<Briefcase, TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        let service = host
            .service(service_name)
            .ok_or_else(|| TaxError::BadAgentSpec {
                detail: format!("no service {service_name:?} on {host_name}"),
            })?;
        let rights = host.with_firewall(|fw| fw.rights_of(principal, true));
        Ok(self.kernel.run_service(
            &host,
            service.as_ref(),
            &mut request,
            principal.clone(),
            rights,
            0,
        ))
    }

    /// Performs one unit of scheduler work: drains arrived messages on
    /// every host, then executes at most one queued agent task. Returns
    /// whether anything happened.
    pub fn step(&mut self) -> bool {
        let mut worked = false;

        // Phase 1: message delivery, every host, deterministic order.
        let host_names = self.host_names();
        for name in &host_names {
            let Some(host) = self.host(name) else {
                continue;
            };
            if self.kernel.pump_inbox(&host) > 0 {
                worked = true;
            }
        }

        // Phase 2: run one agent task (first host in order with work).
        for name in &host_names {
            let Some(host) = self.host(name) else {
                continue;
            };
            if let Some(task) = host.pop_task() {
                self.run_task(&host, task);
                worked = true;
                break;
            }
        }
        worked
    }

    /// Runs the scheduler until no work remains (or a million steps, as a
    /// livelock backstop). Returns the number of steps executed.
    pub fn run_until_quiet(&mut self) -> usize {
        let mut steps = 0;
        while steps < MAX_STEPS && self.step() {
            steps += 1;
        }
        steps
    }

    /// Whether no messages or tasks are outstanding.
    pub fn is_quiet(&self) -> bool {
        self.kernel
            .directory
            .read()
            .values()
            .all(|h| h.inbox_is_empty() && h.queued_tasks() == 0)
    }

    /// All events across hosts, ordered by virtual time.
    pub fn events(&self) -> Vec<(String, HostEvent)> {
        let mut all: Vec<(String, HostEvent)> = Vec::new();
        for (name, host) in self.kernel.directory.read().iter() {
            for event in host.events() {
                all.push((name.clone(), event));
            }
        }
        all.sort_by_key(|(_, e)| e.at);
        all
    }

    /// Every `display` line across all hosts, in virtual-time order.
    pub fn agent_outputs(&self) -> Vec<String> {
        self.events()
            .into_iter()
            .filter_map(|(_, e)| match e.kind {
                EventKind::Display(text) => Some(text),
                _ => None,
            })
            .collect()
    }

    fn run_task(&mut self, host: &TaxHost, task: crate::host::AgentTask) {
        let now = self.kernel.now();

        // Respect kill/stop decided while the task was queued.
        let status = host.with_firewall(|fw| fw.registry().get(&task.address).map(|r| r.status));
        match status {
            None => return, // killed
            Some(AgentStatus::Stopped) => {
                host.core.parked.lock().push(task);
                return;
            }
            Some(AgentStatus::Running) => {}
        }

        let vm: Option<Arc<dyn VirtualMachine>> = host.core.vms.read().get(&task.vm).cloned();
        let Some(vm) = vm else {
            host.record(
                now,
                Some(task.address.clone()),
                EventKind::Rejected(format!("no VM named {:?}", task.vm)),
            );
            host.with_firewall(|fw| fw.unregister_agent(&task.address));
            return;
        };

        let principal = match Principal::new(task.address.principal()) {
            Ok(p) => p,
            Err(e) => {
                host.record(
                    now,
                    Some(task.address.clone()),
                    EventKind::Rejected(e.to_string()),
                );
                return;
            }
        };

        let (trust, natives) = exec_context_for(host);
        let ctx = make_ctx(host, &trust, &natives);
        let mut hooks = KernelHooks {
            kernel: self.kernel.clone(),
            host: host.clone(),
            agent: task.address.clone(),
            principal,
            depth: 0,
        };
        let mut briefcase = task.briefcase;
        let result = vm.execute(&mut briefcase, &mut hooks, &ctx);
        let after = self.kernel.now();

        match result {
            Ok(execution) => {
                if execution.trace.len() > 1 {
                    host.record(
                        after,
                        Some(task.address.clone()),
                        EventKind::ExecutionTrace(execution.trace.clone()),
                    );
                }
                match execution.outcome {
                    Outcome::Moved { .. } => {
                        // Departure was recorded by the go() hook; this
                        // instance is terminated.
                    }
                    outcome @ (Outcome::Finished | Outcome::Exit(_)) => {
                        host.record(
                            after,
                            Some(task.address.clone()),
                            EventKind::Completed(outcome),
                        );
                    }
                }
            }
            Err(e) => {
                host.record(
                    after,
                    Some(task.address.clone()),
                    EventKind::Faulted(e.to_string()),
                );
            }
        }
        host.with_firewall(|fw| fw.unregister_agent(&task.address));
        host.drop_agent_state(&task.address);
    }
}

impl std::fmt::Debug for TaxSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaxSystem({:?})", self.host_names())
    }
}
