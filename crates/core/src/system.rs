//! [`TaxSystem`]: a whole simulated deployment, with a deterministic
//! scheduler.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use tacoma_briefcase::{folders, Briefcase};
use tacoma_firewall::Message;
use tacoma_security::{Keyring, Principal};
use tacoma_simnet::{LinkSpec, MessageBus, Network, SimClock, SimTime, Topology};
use tacoma_uri::AgentAddress;

use crate::agent::AgentSpec;
use crate::event::{EventKind, HostEvent};
use crate::hooks::Kernel;
use crate::host::{AgentTask, HostBuilder, TaxHost};
use crate::sched::{
    batch_seed, DeferredSimTransport, RunOutcome, SystemLog, SystemLogHandle, TaskScope, WorkerPool,
};
use crate::TaxError;

/// Hard cap on scheduler steps per [`TaxSystem::run_until_quiet`] call —
/// a backstop against agent ping-pong loops.
const MAX_STEPS: usize = 1_000_000;

/// A callback run at the top of every scheduler step, before messages are
/// pumped, with the shared network and the current global virtual time.
///
/// This is the attachment point for scenario event tracks: a hook applies
/// every due topology mutation (churn, partitions, link degradation)
/// between ticks, so within a tick all hosts see one consistent topology
/// and the trace stays worker-count invariant.
pub type StepHook = Box<dyn FnMut(&Network, SimTime) + Send>;

/// Ticks with at most this many queued tasks run inline on the scheduler
/// thread even in multi-threaded mode. Fanning out a couple of tasks can
/// at best overlap one of them, which is less than the cost of boxing the
/// jobs and crossing the pool's channels twice — the typical shape of a
/// message ping-pong tick.
const TICK_INLINE_THRESHOLD: usize = 2;

/// Builds a [`TaxSystem`].
pub struct SystemBuilder {
    hosts: Vec<HostBuilder>,
    default_link: LinkSpec,
    links: Vec<(String, String, LinkSpec)>,
    seed: u64,
    trust_all: bool,
    transport: Option<Arc<dyn tacoma_transport::Transport>>,
    threads: usize,
    cores_override: Option<usize>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("hosts", &self.hosts)
            .field("seed", &self.seed)
            .field("trust_all", &self.trust_all)
            .field("transport", &self.transport.as_ref().map(|t| t.kind()))
            .finish_non_exhaustive()
    }
}

impl SystemBuilder {
    /// An empty deployment with the paper's 100 Mbit LAN as the default
    /// link.
    pub fn new() -> Self {
        SystemBuilder {
            hosts: Vec::new(),
            default_link: LinkSpec::lan_100mbit(),
            links: Vec::new(),
            seed: 1,
            trust_all: false,
            transport: None,
            threads: 0,
            cores_override: None,
        }
    }

    /// Adds a host with default configuration.
    ///
    /// # Errors
    ///
    /// [`TaxError::Net`] on an invalid host name.
    pub fn host(mut self, name: &str) -> Result<Self, TaxError> {
        self.hosts.push(HostBuilder::new(name)?);
        Ok(self)
    }

    /// Adds a fully configured host.
    pub fn host_with(mut self, builder: HostBuilder) -> Self {
        self.hosts.push(builder);
        self
    }

    /// Sets the link used by host pairs without an explicit one.
    pub fn default_link(mut self, link: LinkSpec) -> Self {
        self.default_link = link;
        self
    }

    /// Sets a specific link between two hosts.
    pub fn link(mut self, a: &str, b: &str, link: LinkSpec) -> Self {
        self.links.push((a.to_owned(), b.to_owned(), link));
        self
    }

    /// Seeds the network's loss randomness (and the system keyrings).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates a system keyring per host and cross-installs all
    /// verification keys: every host trusts every other host's system
    /// principal (one administrative domain, the paper's deployment).
    pub fn trust_all(mut self) -> Self {
        self.trust_all = true;
        self
    }

    /// Overrides the outbound transport. Defaults to the in-process
    /// simnet bus; `taxd` installs a [`TcpTransport`] here so the same
    /// kernel ships messages over real sockets.
    ///
    /// [`TcpTransport`]: tacoma_transport::TcpTransport
    pub fn transport(mut self, transport: Arc<dyn tacoma_transport::Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Selects the scheduler. `0` (the default) is the classic
    /// one-task-per-step sequential scheduler; `n >= 1` enables the
    /// bulk-synchronous tick scheduler with `n` worker threads, which
    /// drains *every* ready host's task batch each step. A tick run is
    /// deterministic across worker counts: the same seed produces the
    /// same event trace with 1 or N threads (see `docs/scheduler.md`).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Overrides the detected core count used to clamp tick fan-out.
    ///
    /// By default the tick scheduler never runs more workers than
    /// `std::thread::available_parallelism()` reports — oversubscribing a
    /// small machine makes the tick barrier slower, never faster. Tests
    /// (and benchmarks characterizing fan-out overhead) use this to force
    /// the pooled path on machines with few cores. The event trace is
    /// identical either way.
    pub fn scheduler_cores(mut self, cores: usize) -> Self {
        self.cores_override = Some(cores.max(1));
        self
    }

    /// Builds the system.
    pub fn build(self) -> TaxSystem {
        let mut topology = Topology::new(self.default_link);
        for hb in &self.hosts {
            topology.add_host(hb.name().clone());
        }
        for (a, b, link) in &self.links {
            if let (Ok(a), Ok(b)) = (
                tacoma_simnet::HostId::new(a.clone()),
                tacoma_simnet::HostId::new(b.clone()),
            ) {
                topology.set_link(&a, &b, *link);
            }
        }
        let net = Arc::new(Network::new(topology, self.seed));
        let bus = MessageBus::new(Arc::clone(&net));

        let mut hosts = BTreeMap::new();
        let mut keyrings = BTreeMap::new();

        let built: Vec<TaxHost> = self.hosts.into_iter().map(HostBuilder::build).collect();

        if self.trust_all {
            for (i, host) in built.iter().enumerate() {
                let system = Principal::local_system(host.name());
                let keyring = Keyring::generate(&system, self.seed.wrapping_add(i as u64));
                keyrings.insert(host.name().to_owned(), keyring);
            }
            for host in &built {
                host.with_firewall(|fw| {
                    for keyring in keyrings.values() {
                        fw.trust_mut().trust(keyring.public());
                    }
                });
            }
        }

        let log = Arc::new(SystemLog::new());
        for host in built {
            let inbox = bus.register(host.host_id().clone());
            host.set_inbox(inbox);
            hosts.insert(host.name().to_owned(), host);
        }
        // Host indices follow directory (BTreeMap) order — the same
        // order every scheduler phase iterates in.
        for (idx, host) in hosts.values().enumerate() {
            let _ = host.core.log.set(SystemLogHandle {
                log: Arc::clone(&log),
                host_idx: idx as u32,
            });
        }

        let directory = Arc::new(RwLock::new(hosts));
        let transport = self
            .transport
            .unwrap_or_else(|| Arc::new(DeferredSimTransport::new(bus.clone(), Arc::clone(&net))));
        TaxSystem {
            kernel: Kernel {
                directory,
                net,
                transport,
            },
            keyrings,
            log,
            bus,
            seed: self.seed,
            threads: self.threads,
            cores_override: self.cores_override,
            tick: 0,
            pool: None,
            scope_cache: Vec::new(),
            step_hooks: Vec::new(),
        }
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

/// What a boot-time journal recovery restored (see
/// [`TaxSystem::recover_journal`] and `docs/journal.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Intact journal records scanned.
    pub records_scanned: u64,
    /// Whether a torn segment tail was truncated away.
    pub torn_tail: bool,
    /// Parked messages restored into the pending queue.
    pub reparked: usize,
    /// Inbound open hops whose agent was re-installed.
    pub resumed_inbound: usize,
    /// Outbound open hops whose frame was re-shipped.
    pub resumed_outbound: usize,
    /// Entries that could not be restored this boot (undecodable park,
    /// unreachable re-ship target, failed checkpoint); they remain in the
    /// journal for the next attempt.
    pub failed: usize,
}

/// A running deployment: hosts, network, and the deterministic scheduler.
pub struct TaxSystem {
    kernel: Kernel,
    keyrings: BTreeMap<String, Keyring>,
    log: Arc<SystemLog>,
    bus: MessageBus,
    seed: u64,
    threads: usize,
    cores_override: Option<usize>,
    tick: u64,
    pool: Option<WorkerPool>,
    /// Scopes recycled across ticks: resetting one is equivalent to
    /// allocating fresh, but keeps the send-buffer capacity warm.
    scope_cache: Vec<Arc<TaskScope>>,
    step_hooks: Vec<StepHook>,
}

impl TaxSystem {
    /// The host with the given name.
    pub fn host(&self, name: &str) -> Option<TaxHost> {
        self.kernel.host(name)
    }

    /// All host names, sorted.
    pub fn host_names(&self) -> Vec<String> {
        self.kernel.directory.read().keys().cloned().collect()
    }

    /// The simulated network (stats, fault injection, clock).
    pub fn network(&self) -> Arc<Network> {
        Arc::clone(&self.kernel.net)
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> SimClock {
        self.kernel.net.clock().clone()
    }

    /// The system keyring generated for a host by
    /// [`SystemBuilder::trust_all`], if any.
    pub fn keyring(&self, host: &str) -> Option<&Keyring> {
        self.keyrings.get(host)
    }

    /// The transport outbound messages ship over.
    pub fn transport(&self) -> Arc<dyn tacoma_transport::Transport> {
        Arc::clone(&self.kernel.transport)
    }

    /// Routes a wire-encoded message that arrived from outside the
    /// process (a frame a [`TransportListener`] accepted over TCP) into
    /// `host_name`'s firewall, exactly as a simnet envelope would be.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] when the host is not in this process.
    ///
    /// [`TransportListener`]: tacoma_transport::TransportListener
    pub fn inject_wire(&mut self, host_name: &str, payload: &[u8]) -> Result<(), TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        self.kernel.process_wire(&host, payload);
        Ok(())
    }

    /// As [`TaxSystem::inject_wire`], but the payload is a shared buffer
    /// (e.g. a frame read once off a TCP socket) routed zero-copy: the
    /// firewall decodes briefcase contents straight out of it.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] when the host is not in this process.
    pub fn inject_wire_bytes(
        &mut self,
        host_name: &str,
        payload: &bytes::Bytes,
    ) -> Result<(), TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        self.kernel.process_wire_bytes(&host, payload);
        Ok(())
    }

    /// Retries transport delivery of messages parked in `host_name`'s
    /// pending queue for remote hosts. Returns `(delivered, reparked)`.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] when the host is not in this process.
    pub fn redeliver_remote_pending(
        &mut self,
        host_name: &str,
    ) -> Result<(usize, usize), TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        let now = self.kernel.now();
        let transport = Arc::clone(&self.kernel.transport);
        Ok(host.with_firewall(|fw| fw.redeliver_remote_pending(now, &*transport)))
    }

    /// Settles completions from a nonblocking transport into `host_name`'s
    /// firewall: acked ships are counted and their hops committed, failed
    /// ships are parked for the redelivery sweep. Returns the number of
    /// completions settled. A no-op (returns 0) on blocking transports.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] when the host is not in this process.
    pub fn pump_transport(&mut self, host_name: &str) -> Result<usize, TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        let now = self.kernel.now();
        let transport = Arc::clone(&self.kernel.transport);
        Ok(host.with_firewall(|fw| fw.pump_transport(now, &*transport)))
    }

    /// Frames `host_name` handed to a nonblocking transport whose
    /// completion has not been pumped yet. Daemons drain this to zero (or
    /// a deadline) before exiting so in-flight sends are settled.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] when the host is not in this process.
    pub fn transport_inflight(&self, host_name: &str) -> Result<usize, TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        Ok(host.with_firewall_read(tacoma_firewall::Firewall::transport_inflight))
    }

    /// Installs a user keyring's verification key on every host.
    pub fn trust_everywhere(&self, keyring: &Keyring) {
        for host in self.kernel.directory.read().values() {
            host.with_firewall(|fw| {
                fw.trust_mut().trust(keyring.public());
            });
        }
    }

    /// Launches an agent on a host; returns its address.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] or spec/install failures.
    #[allow(clippy::needless_pass_by_value)] // a spec describes exactly one launch; taking it keeps call sites builder-shaped
    pub fn launch(&mut self, host_name: &str, spec: AgentSpec) -> Result<AgentAddress, TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        let local_system = host.with_firewall_read(|fw| fw.local_system().clone());
        let principal = spec.resolve_principal(&local_system);
        let briefcase = spec.build_briefcase(&principal)?;
        let instance = host.with_firewall(tacoma_firewall::Firewall::allocate_instance);
        let address = AgentAddress::new(principal.as_str(), spec.name(), instance);
        self.kernel
            .install(&host, spec.target_vm(), address.clone(), briefcase, None)?;
        Ok(address)
    }

    /// Attaches a durable journal to `host_name` and replays its
    /// recovered state: parked mail re-enters the pending queue with
    /// deadlines recomputed against the current clock, inbound open hops
    /// re-install their agent, and outbound open hops re-ship their
    /// frame. Finishes with a checkpoint so the next boot replays only
    /// what this one could not finish.
    ///
    /// Call once at daemon boot, after services are installed and before
    /// the scheduler starts.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] when the host is not in this process.
    /// Individual hop/park failures are counted in the summary, not
    /// returned: an unreachable peer must not stop the boot.
    pub fn recover_journal(
        &mut self,
        host_name: &str,
        journal: &Arc<tacoma_journal::Journal>,
        replay: &tacoma_journal::Replay,
    ) -> Result<RecoverySummary, TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        host.attach_journal(Arc::clone(journal));
        let now = self.kernel.now();
        let mut summary = RecoverySummary {
            records_scanned: replay.records_scanned,
            torn_tail: replay.torn_tail,
            ..RecoverySummary::default()
        };

        host.with_firewall(|fw| {
            fw.stats_mut().journal_replayed = replay.records_scanned;
            for parked in &replay.parked {
                match Message::decode_bytes(&parked.wire) {
                    Ok(message) => {
                        fw.replay_park(
                            message,
                            now,
                            std::time::Duration::from_nanos(parked.timeout_nanos),
                            parked.key,
                        );
                        summary.reparked += 1;
                    }
                    Err(_) => summary.failed += 1,
                }
            }
        });

        let transport = Arc::clone(&self.kernel.transport);
        for hop in &replay.open_hops {
            if hop.inbound {
                // The agent arrived and was acked but never finished its
                // work here: decode and route the preserved frame as if it
                // had just landed. `process_wire_bytes` records any
                // rejection as a host event rather than failing the boot.
                self.kernel.process_wire_bytes(&host, &hop.wire);
                summary.resumed_inbound += 1;
            } else {
                match host.with_firewall(|fw| fw.replay_ship_hop(hop, &*transport)) {
                    Ok(()) => summary.resumed_outbound += 1,
                    // The hop stays open in the journal; the next boot (or
                    // a redelivery pass) retries. Nothing is lost.
                    Err(_) => summary.failed += 1,
                }
            }
        }

        if journal.checkpoint().is_err() {
            // Replay next boot is merely longer, not incorrect.
            summary.failed += 1;
        }
        Ok(summary)
    }

    /// Sends an admin command (`list`, `runtime`, `stop`, `resume`,
    /// `kill`) to a host's firewall on behalf of `principal`, returning
    /// the reply.
    ///
    /// # Errors
    ///
    /// Firewall denials and admin errors.
    pub fn admin(
        &mut self,
        host_name: &str,
        principal: &Principal,
        command: &str,
        args: &[&str],
    ) -> Result<Briefcase, TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        let mut request = Briefcase::new();
        request.set_single(folders::COMMAND, command);
        for a in args {
            request.append(folders::ARGS, *a);
        }
        let message = Message::deliver(
            host.name(),
            principal.clone(),
            None,
            tacoma_firewall::FIREWALL_AGENT_NAME.parse()?,
            request,
        );
        let now = self.kernel.now();
        let decision = host.with_firewall(|fw| fw.route_outbound(message, now))?;
        match decision {
            tacoma_firewall::Decision::Admin { reply, control } => {
                self.kernel.apply_admin(&host, reply.clone(), control, 0);
                Ok(reply)
            }
            other => Err(TaxError::BadAgentSpec {
                detail: format!("admin produced unexpected decision {other:?}"),
            }),
        }
    }

    /// Calls a service agent on a host directly (tooling path — e.g. an
    /// operator fetching a parked report from `ag_cabinet`). The call is
    /// authorized as `principal` with its authenticated rights.
    ///
    /// # Errors
    ///
    /// [`TaxError::UnknownHost`] / [`TaxError::BadAgentSpec`] when the
    /// host or service does not exist.
    pub fn call_service(
        &mut self,
        host_name: &str,
        service_name: &str,
        principal: &Principal,
        mut request: Briefcase,
    ) -> Result<Briefcase, TaxError> {
        let host = self.host(host_name).ok_or_else(|| TaxError::UnknownHost {
            host: host_name.to_owned(),
        })?;
        let service = host
            .service(service_name)
            .ok_or_else(|| TaxError::BadAgentSpec {
                detail: format!("no service {service_name:?} on {host_name}"),
            })?;
        let rights = host.with_firewall_read(|fw| fw.rights_of(principal, true));
        Ok(self.kernel.run_service(
            &host,
            service.as_ref(),
            &mut request,
            principal.clone(),
            rights,
            0,
        ))
    }

    /// How many scheduler worker threads this system uses (`0` = the
    /// classic sequential scheduler).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Switches scheduler mode after build (e.g. `taxd --threads N`).
    /// See [`SystemBuilder::threads`].
    pub fn set_threads(&mut self, n: usize) {
        if n != self.threads {
            self.threads = n;
            self.pool = None; // Rebuilt at the right size on next use.
        }
    }

    /// Performs one unit of scheduler work. Returns whether anything
    /// happened.
    ///
    /// In the default sequential mode this drains arrived messages on
    /// every host, then executes at most one queued agent task. In tick
    /// mode ([`SystemBuilder::threads`]) it runs one bulk-synchronous
    /// tick: pump every inbox, execute *every* ready host's task batch
    /// (concurrently across hosts), then flush deferred sends and advance
    /// the global clock to the tick's makespan.
    pub fn step(&mut self) -> bool {
        self.run_step_hooks();
        if self.threads == 0 {
            self.step_sequential()
        } else {
            self.step_tick()
        }
    }

    /// Registers a [`StepHook`] run at the top of every subsequent step.
    ///
    /// Hooks fire on the scheduler thread before the message pump, in
    /// registration order, in both scheduler modes — mutations they make
    /// depend only on the global clock sequence, so determinism across
    /// worker counts is preserved.
    pub fn add_step_hook(&mut self, hook: StepHook) {
        self.step_hooks.push(hook);
    }

    fn run_step_hooks(&mut self) {
        if self.step_hooks.is_empty() {
            return;
        }
        let now = self.kernel.net.clock().now();
        for hook in &mut self.step_hooks {
            hook(&self.kernel.net, now);
        }
    }

    fn step_sequential(&mut self) -> bool {
        let mut worked = false;

        // Phase 1: message delivery, every host, deterministic order.
        let host_names = self.host_names();
        for name in &host_names {
            let Some(host) = self.host(name) else {
                continue;
            };
            if self.kernel.pump_inbox(&host) > 0 {
                worked = true;
            }
        }

        // Phase 2: run one agent task (first host in order with work).
        for name in &host_names {
            let Some(host) = self.host(name) else {
                continue;
            };
            if let Some(task) = host.pop_task() {
                self.kernel.run_task(&host, task);
                worked = true;
                break;
            }
        }
        worked
    }

    /// The worker count actually worth using this tick: the configured
    /// thread count clamped to the machine's parallelism. Running more
    /// workers than cores makes the tick barrier slower, never faster —
    /// every extra worker is pure handoff and contention.
    fn effective_threads(&self) -> usize {
        let cores = self.cores_override.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        self.threads.min(cores)
    }

    fn step_tick(&mut self) -> bool {
        let hosts: Vec<TaxHost> = self.kernel.directory.read().values().cloned().collect();

        // Phase 1: message delivery, every host, deterministic order, on
        // the global clock (exactly the sequential scheduler's pump).
        let mut worked = false;
        for host in &hosts {
            if self.kernel.pump_inbox(host) > 0 {
                worked = true;
            }
        }

        // Phase 2: snapshot one task batch per host. The host is the unit
        // of parallelism — its tasks run FIFO on its own forked clock.
        // Scopes are recycled from previous ticks; a reset scope is
        // indistinguishable from a fresh one, so recycling cannot affect
        // the trace.
        let now = self.kernel.net.clock().now();
        let tick = self.tick;
        self.tick += 1;
        let mut scope_pool = std::mem::take(&mut self.scope_cache);
        let mut total_tasks = 0;
        let mut batches: Vec<(TaxHost, Vec<AgentTask>, Arc<TaskScope>)> = Vec::new();
        for (idx, host) in hosts.iter().enumerate() {
            let tasks = host.drain_tasks();
            if tasks.is_empty() {
                continue;
            }
            total_tasks += tasks.len();
            let seed = batch_seed(self.seed, idx as u64, tick);
            let scope = loop {
                match scope_pool.pop() {
                    // A straggling worker may still hold a transient
                    // reference from last tick's closure; such a scope is
                    // discarded rather than raced on.
                    Some(s) if Arc::strong_count(&s) == 1 => {
                        s.reset(now, seed);
                        break s;
                    }
                    Some(_) => continue,
                    None => break TaskScope::new(now, seed),
                }
            };
            batches.push((host.clone(), tasks, scope));
        }
        if batches.is_empty() {
            self.scope_cache = scope_pool;
            return worked;
        }

        // Execute. Fan out only when it can actually help: several
        // batches, more than one usable core, and enough queued work to
        // amortize the handoffs; otherwise run inline on this thread —
        // identical semantics, no pool traffic.
        let effective = self.effective_threads();
        let fan_out = batches.len() > 1 && effective > 1 && total_tasks > TICK_INLINE_THRESHOLD;
        if !fan_out {
            for (host, tasks, scope) in &mut batches {
                run_batch(&self.kernel, host, std::mem::take(tasks), scope);
            }
        } else {
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(effective));
            let done = pool.done_sender();
            let mut submitted = 0;
            for (host, tasks, scope) in batches.iter_mut().skip(1) {
                let kernel = self.kernel.clone();
                let host = host.clone();
                let tasks = std::mem::take(tasks);
                let scope = Arc::clone(scope);
                let done = done.clone();
                pool.submit(Box::new(move || {
                    run_batch(&kernel, &host, tasks, &scope);
                    let _ = done.send(());
                }));
                submitted += 1;
            }
            // The scheduler thread runs the first batch itself instead of
            // blocking at the barrier: one fewer handoff, one more busy
            // core.
            {
                let (host, tasks, scope) = &mut batches[0];
                run_batch(&self.kernel, host, std::mem::take(tasks), scope);
            }
            pool.wait(submitted);
        }

        // Phase 3 (barrier): flush deferred envelopes in host order, then
        // advance the global clock to the slowest batch's finish time —
        // concurrent batches overlap in virtual time, so the tick costs
        // its makespan, not the sum of its batches.
        let mut makespan = now;
        for (_, _, scope) in &batches {
            makespan = makespan.max(scope.clock.now());
            for envelope in scope.sends.lock().drain(..) {
                let _ = self.bus.deliver(envelope);
            }
        }
        self.kernel.net.clock().advance_to(makespan);

        // Recycle scopes (and their send-buffer capacity) for next tick.
        scope_pool.extend(batches.into_iter().map(|(_, _, scope)| scope));
        self.scope_cache = scope_pool;
        true
    }

    /// Runs the scheduler until no work remains (or a million steps, as a
    /// livelock backstop). On exhaustion a warning event is recorded —
    /// check [`RunOutcome::quiesced`] rather than assuming silence means
    /// completion.
    pub fn run_until_quiet(&mut self) -> RunOutcome {
        self.run_for(MAX_STEPS)
    }

    /// Runs the scheduler until quiet or until `budget` steps have
    /// executed, whichever comes first.
    pub fn run_for(&mut self, budget: usize) -> RunOutcome {
        let mut steps = 0;
        while steps < budget {
            if !self.step() {
                return RunOutcome::Quiesced { steps };
            }
            steps += 1;
        }
        if self.is_quiet() {
            return RunOutcome::Quiesced { steps };
        }
        // Make the truncation visible in the event log: callers that
        // ignore the outcome still see the warning in traces.
        if let Some(host) = self.host_names().first().and_then(|name| self.host(name)) {
            host.record(
                self.kernel.now(),
                None,
                EventKind::Scheduler(format!(
                    "step budget exhausted after {steps} steps; system is not quiet"
                )),
            );
        }
        RunOutcome::StepBudgetExhausted { steps }
    }

    /// Whether no messages or tasks are outstanding.
    pub fn is_quiet(&self) -> bool {
        self.kernel
            .directory
            .read()
            .values()
            .all(|h| h.inbox_is_empty() && h.queued_tasks() == 0)
    }

    /// All events across hosts, ordered by virtual time — served from the
    /// incrementally maintained system log, so repeated calls do not
    /// re-clone and re-sort every host's history.
    pub fn events(&self) -> Vec<(String, HostEvent)> {
        self.log.snapshot()
    }

    /// Every `display` line across all hosts, in virtual-time order.
    pub fn agent_outputs(&self) -> Vec<String> {
        self.log.displays()
    }
}

/// Executes one host's task batch inside its scope. A panicking task
/// abandons the rest of its batch (and is recorded as a scheduler event)
/// but never takes down the worker or the tick.
fn run_batch(kernel: &Kernel, host: &TaxHost, tasks: Vec<AgentTask>, scope: &Arc<TaskScope>) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _guard = TaskScope::enter(Arc::clone(scope));
        for task in tasks {
            kernel.run_task(host, task);
        }
    }));
    if result.is_err() {
        host.record(
            scope.clock.now(),
            None,
            EventKind::Scheduler(
                "host batch panicked; remaining tasks in the batch were abandoned".into(),
            ),
        );
    }
}

impl std::fmt::Debug for TaxSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaxSystem({:?})", self.host_names())
    }
}
