//! The wrapper mechanism of §4.
//!
//! > "Agents can perform only two actions that are observable to the
//! > system: sending a briefcase and receiving a briefcase. […] It is this
//! > interface a wrapper can observe and intercept messages to. […]
//! > Wrappers may be stacked in arbitrary depth by TAX, and may originate
//! > from the local system or be part of the mobile agent itself."
//!
//! Wrappers travel with the agent as *specs* — strings in the briefcase's
//! `WRAPPERS` folder, innermost first — and are re-instantiated at each
//! host by the host's [`WrapperFactory`]. State a wrapper must carry
//! across hops lives in the briefcase itself (folders conventionally named
//! `WRAP:<wrapper>:<what>`), which is exactly how the agent's own state
//! moves.

use std::collections::HashMap;
use std::sync::Arc;

use tacoma_briefcase::Briefcase;
use tacoma_simnet::SimTime;
use tacoma_uri::AgentAddress;

use crate::TaxError;

/// The briefcase folder listing an agent's wrapper specs, innermost first.
pub const WRAPPERS_FOLDER: &str = "WRAPPERS";

/// An intercepted interaction, mutable so wrappers can rewrite targets and
/// payloads.
#[derive(Debug)]
pub enum WrapperEvent<'a> {
    /// The wrapped agent is sending a briefcase.
    Outbound {
        /// Target URI text; wrappers may redirect.
        to: &'a mut String,
        /// The outgoing briefcase; wrappers may annotate.
        briefcase: &'a mut Briefcase,
    },
    /// A briefcase addressed to the wrapped agent is arriving.
    Inbound {
        /// The incoming briefcase.
        briefcase: &'a mut Briefcase,
    },
    /// The wrapped agent is about to relocate (`go`/`spawn`).
    Move {
        /// Destination URI text; wrappers may redirect.
        dest: &'a mut String,
        /// The full agent briefcase that will travel.
        briefcase: &'a mut Briefcase,
    },
}

/// A wrapper's ruling on an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapperVerdict {
    /// Pass the (possibly modified) event to the next wrapper / the
    /// system.
    Continue,
    /// Swallow the event: inner wrappers and the agent (inbound) or the
    /// system (outbound) never see it. The wrapper answered or suppressed
    /// it itself, typically via [`WrapperCtx::emit`].
    Absorb,
}

/// What a wrapper can see and do besides mutating the event.
#[derive(Debug)]
pub struct WrapperCtx<'a> {
    /// The wrapped agent's address.
    pub agent: &'a AgentAddress,
    /// The host the agent is currently executing on.
    pub host: &'a str,
    /// Virtual time.
    pub now: SimTime,
    /// Human-readable notes, surfaced as host events.
    pub notes: &'a mut Vec<String>,
    /// Side messages `(target-uri, briefcase)` the kernel sends after the
    /// chain completes (monitor reports, acknowledgements, …). Side
    /// messages bypass the wrapper chain to avoid recursion.
    pub emit: &'a mut Vec<(String, Briefcase)>,
}

/// A stackable interceptor around an agent.
pub trait Wrapper: Send {
    /// The wrapper's name (also its spec prefix).
    fn name(&self) -> &str;

    /// Observes and possibly intercepts one event.
    fn on_event(
        &mut self,
        event: &mut WrapperEvent<'_>,
        ctx: &mut WrapperCtx<'_>,
    ) -> WrapperVerdict;
}

/// The effects of running an event through a wrapper stack.
#[derive(Debug, Default)]
pub struct StackEffects {
    /// Whether some wrapper absorbed the event.
    pub absorbed: bool,
    /// Notes collected from all wrappers.
    pub notes: Vec<String>,
    /// Side messages to send.
    pub emit: Vec<(String, Briefcase)>,
}

/// An agent's instantiated wrapper stack, innermost first.
#[derive(Default)]
pub struct WrapperStack {
    wrappers: Vec<Box<dyn Wrapper>>,
}

impl WrapperStack {
    /// An empty stack (unwrapped agent).
    pub fn new() -> Self {
        WrapperStack::default()
    }

    /// Number of wrappers.
    pub fn len(&self) -> usize {
        self.wrappers.len()
    }

    /// Whether the agent is unwrapped.
    pub fn is_empty(&self) -> bool {
        self.wrappers.is_empty()
    }

    /// Adds a wrapper *around* the current stack (it becomes outermost).
    pub fn wrap(&mut self, wrapper: Box<dyn Wrapper>) {
        self.wrappers.push(wrapper);
    }

    /// Outbound events flow from the agent outwards: innermost wrapper
    /// first.
    pub fn apply_outbound(
        &mut self,
        to: &mut String,
        briefcase: &mut Briefcase,
        agent: &AgentAddress,
        host: &str,
        now: SimTime,
    ) -> StackEffects {
        self.apply(
            Direction::Out,
            |event_to, event_bc| WrapperEvent::Outbound {
                to: event_to,
                briefcase: event_bc,
            },
            to,
            briefcase,
            agent,
            host,
            now,
        )
    }

    /// Inbound events flow from the system inwards: outermost wrapper
    /// first ("any briefcase addressed to the agent is sent to the wrapper
    /// first").
    pub fn apply_inbound(
        &mut self,
        briefcase: &mut Briefcase,
        agent: &AgentAddress,
        host: &str,
        now: SimTime,
    ) -> StackEffects {
        let mut unused = String::new();
        self.apply(
            Direction::In,
            |_, event_bc| WrapperEvent::Inbound {
                briefcase: event_bc,
            },
            &mut unused,
            briefcase,
            agent,
            host,
            now,
        )
    }

    /// Moves flow outwards like sends.
    pub fn apply_move(
        &mut self,
        dest: &mut String,
        briefcase: &mut Briefcase,
        agent: &AgentAddress,
        host: &str,
        now: SimTime,
    ) -> StackEffects {
        self.apply(
            Direction::Out,
            |event_dest, event_bc| WrapperEvent::Move {
                dest: event_dest,
                briefcase: event_bc,
            },
            dest,
            briefcase,
            agent,
            host,
            now,
        )
    }

    #[allow(clippy::too_many_arguments)] // internal dispatcher; the public entry points are narrow
    fn apply<'a>(
        &mut self,
        direction: Direction,
        mut make: impl FnMut(&'a mut String, &'a mut Briefcase) -> WrapperEvent<'a>,
        to: &'a mut String,
        briefcase: &'a mut Briefcase,
        agent: &AgentAddress,
        host: &str,
        now: SimTime,
    ) -> StackEffects {
        let mut effects = StackEffects::default();
        let mut event = make(to, briefcase);
        let order: Vec<usize> = match direction {
            Direction::Out => (0..self.wrappers.len()).collect(),
            Direction::In => (0..self.wrappers.len()).rev().collect(),
        };
        for i in order {
            let wrapper = &mut self.wrappers[i];
            let mut ctx = WrapperCtx {
                agent,
                host,
                now,
                notes: &mut effects.notes,
                emit: &mut effects.emit,
            };
            match wrapper.on_event(&mut event, &mut ctx) {
                WrapperVerdict::Continue => {}
                WrapperVerdict::Absorb => {
                    effects.absorbed = true;
                    break;
                }
            }
        }
        effects
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Out,
    In,
}

impl std::fmt::Debug for WrapperStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.wrappers.iter().map(|w| w.name()).collect();
        write!(f, "WrapperStack{names:?}")
    }
}

type Constructor = Arc<dyn Fn(&str) -> Result<Box<dyn Wrapper>, TaxError> + Send + Sync>;

/// Builds wrapper instances from the specs an agent carries. Each host has
/// one; applications register custom wrappers here ("a framework for
/// automatic generation of layers of wrappers" is the paper's
/// future work — this factory is our version of it).
#[derive(Clone, Default)]
pub struct WrapperFactory {
    constructors: HashMap<String, Constructor>,
}

impl WrapperFactory {
    /// An empty factory (use [`crate::wrappers::standard_factory`] for the
    /// stock wrappers).
    pub fn new() -> Self {
        WrapperFactory::default()
    }

    /// Registers a constructor for specs whose name (the part before the
    /// first `:`) equals `name`. The constructor receives the full spec.
    pub fn register<F>(&mut self, name: impl Into<String>, constructor: F)
    where
        F: Fn(&str) -> Result<Box<dyn Wrapper>, TaxError> + Send + Sync + 'static,
    {
        self.constructors.insert(name.into(), Arc::new(constructor));
    }

    /// Instantiates one wrapper from its spec.
    ///
    /// # Errors
    ///
    /// [`TaxError::BadAgentSpec`] for unknown wrapper names or specs the
    /// constructor rejects.
    pub fn build(&self, spec: &str) -> Result<Box<dyn Wrapper>, TaxError> {
        let name = spec.split(':').next().unwrap_or(spec);
        let constructor = self
            .constructors
            .get(name)
            .ok_or_else(|| TaxError::BadAgentSpec {
                detail: format!("unknown wrapper {name:?} in spec {spec:?}"),
            })?;
        constructor(spec)
    }

    /// Instantiates the full stack an agent's briefcase declares.
    ///
    /// # Errors
    ///
    /// As [`WrapperFactory::build`].
    pub fn build_stack(&self, briefcase: &Briefcase) -> Result<WrapperStack, TaxError> {
        let mut stack = WrapperStack::new();
        if let Some(folder) = briefcase.folder(WRAPPERS_FOLDER) {
            for element in folder {
                let spec = element.as_str().map_err(|_| TaxError::BadAgentSpec {
                    detail: "non-text wrapper spec".to_owned(),
                })?;
                stack.wrap(self.build(spec)?);
            }
        }
        Ok(stack)
    }
}

impl std::fmt::Debug for WrapperFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.constructors.keys().map(String::as_str).collect();
        names.sort_unstable();
        write!(f, "WrapperFactory{names:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_uri::Instance;

    struct Tagger {
        tag: String,
        absorb_inbound: bool,
    }

    impl Wrapper for Tagger {
        fn name(&self) -> &str {
            "tagger"
        }
        fn on_event(
            &mut self,
            event: &mut WrapperEvent<'_>,
            ctx: &mut WrapperCtx<'_>,
        ) -> WrapperVerdict {
            match event {
                WrapperEvent::Outbound { briefcase, .. } | WrapperEvent::Move { briefcase, .. } => {
                    briefcase.append("TAGS", self.tag.as_str());
                    WrapperVerdict::Continue
                }
                WrapperEvent::Inbound { briefcase } => {
                    briefcase.append("TAGS", self.tag.as_str());
                    if self.absorb_inbound {
                        ctx.notes.push(format!("{} absorbed", self.tag));
                        WrapperVerdict::Absorb
                    } else {
                        WrapperVerdict::Continue
                    }
                }
            }
        }
    }

    fn agent() -> AgentAddress {
        AgentAddress::new("p", "a", Instance::from_u64(1))
    }

    fn stack(absorb_outer: bool) -> WrapperStack {
        let mut s = WrapperStack::new();
        s.wrap(Box::new(Tagger {
            tag: "inner".into(),
            absorb_inbound: false,
        }));
        s.wrap(Box::new(Tagger {
            tag: "outer".into(),
            absorb_inbound: absorb_outer,
        }));
        s
    }

    fn tags(bc: &Briefcase) -> Vec<String> {
        bc.folder("TAGS")
            .map(|f| f.iter().map(|e| e.as_str().unwrap().to_owned()).collect())
            .unwrap_or_default()
    }

    #[test]
    fn outbound_runs_inner_to_outer() {
        let mut s = stack(false);
        let mut to = "ag_fs".to_owned();
        let mut bc = Briefcase::new();
        let fx = s.apply_outbound(&mut to, &mut bc, &agent(), "h1", SimTime::ZERO);
        assert!(!fx.absorbed);
        assert_eq!(tags(&bc), ["inner", "outer"]);
    }

    #[test]
    fn inbound_runs_outer_to_inner() {
        let mut s = stack(false);
        let mut bc = Briefcase::new();
        let fx = s.apply_inbound(&mut bc, &agent(), "h1", SimTime::ZERO);
        assert!(!fx.absorbed);
        assert_eq!(tags(&bc), ["outer", "inner"]);
    }

    #[test]
    fn absorb_stops_the_chain() {
        let mut s = stack(true);
        let mut bc = Briefcase::new();
        let fx = s.apply_inbound(&mut bc, &agent(), "h1", SimTime::ZERO);
        assert!(fx.absorbed);
        assert_eq!(
            tags(&bc),
            ["outer"],
            "inner wrapper must not see the absorbed event"
        );
        assert_eq!(fx.notes, ["outer absorbed"]);
    }

    #[test]
    fn factory_builds_declared_stack_in_order() {
        let mut factory = WrapperFactory::new();
        factory.register("tagger", |spec| {
            let tag = spec.split_once(':').map(|(_, t)| t).unwrap_or("?");
            Ok(Box::new(Tagger {
                tag: tag.to_owned(),
                absorb_inbound: false,
            }))
        });
        let mut bc = Briefcase::new();
        bc.append(WRAPPERS_FOLDER, "tagger:mw");
        bc.append(WRAPPERS_FOLDER, "tagger:rw");
        let mut stack = factory.build_stack(&bc).unwrap();
        assert_eq!(stack.len(), 2);
        let mut to = "x".to_owned();
        let mut out = Briefcase::new();
        stack.apply_outbound(&mut to, &mut out, &agent(), "h1", SimTime::ZERO);
        // Element 0 of WRAPPERS is innermost, so mw tags first.
        assert_eq!(tags(&out), ["mw", "rw"]);
    }

    #[test]
    fn unknown_wrapper_spec_is_an_error() {
        let factory = WrapperFactory::new();
        let mut bc = Briefcase::new();
        bc.append(WRAPPERS_FOLDER, "ghost:x");
        assert!(matches!(
            factory.build_stack(&bc),
            Err(TaxError::BadAgentSpec { .. })
        ));
    }

    #[test]
    fn unwrapped_agent_has_empty_stack() {
        let factory = WrapperFactory::new();
        let stack = factory.build_stack(&Briefcase::new()).unwrap();
        assert!(stack.is_empty());
    }
}
