//! Property-based tests for the journal: record codec round-trips,
//! torn-tail recovery at *every* byte-level truncation offset, and
//! checkpoint-then-replay equivalence.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use tacoma_journal::{
    frame_into, segment_path, CheckpointState, Journal, JournalConfig, OpenHop, ParkedMail, Record,
    Replay, SEGMENT_MAGIC,
};

/// A unique, self-cleaning journal directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "tacoma_prop_journal_{tag}_{}_{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn arb_wire() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..48).prop_map(Bytes::from)
}

/// Hop keys from a small pool so begins/commits/aborts actually collide.
fn arb_hop_key() -> impl Strategy<Value = String> {
    (0u8..6).prop_map(|i| format!("h{i}"))
}

fn arb_parked() -> impl Strategy<Value = ParkedMail> {
    (any::<u64>(), any::<u64>(), arb_wire()).prop_map(|(key, timeout_nanos, wire)| ParkedMail {
        key,
        timeout_nanos,
        wire,
    })
}

fn arb_open_hop() -> impl Strategy<Value = OpenHop> {
    (
        arb_hop_key(),
        prop::option::of(arb_hop_key()),
        any::<bool>(),
        "[a-z]{0,8}",
        arb_wire(),
    )
        .prop_map(|(key, parent, inbound, to, wire)| OpenHop {
            key,
            parent,
            inbound,
            to,
            wire,
        })
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), arb_wire()).prop_map(|(key, timeout_nanos, wire)| {
            Record::MailParked {
                key,
                timeout_nanos,
                wire,
            }
        }),
        any::<u64>().prop_map(|key| Record::MailDelivered { key }),
        (
            arb_hop_key(),
            prop::option::of(arb_hop_key()),
            any::<bool>(),
            "[a-z]{0,8}",
            arb_wire(),
        )
            .prop_map(|(key, parent, inbound, to, wire)| Record::HopBegin {
                key,
                parent,
                inbound,
                to,
                wire,
            }),
        arb_hop_key().prop_map(|key| Record::HopCommitted { key }),
        arb_hop_key().prop_map(|key| Record::HopAborted { key }),
        (
            any::<u64>(),
            prop::collection::vec(arb_parked(), 0..4),
            prop::collection::vec(arb_open_hop(), 0..4),
            prop::collection::vec(arb_hop_key(), 0..4),
        )
            .prop_map(|(next_mail_key, parked, open_hops, committed)| {
                Record::Checkpoint(CheckpointState {
                    next_mail_key,
                    parked,
                    open_hops,
                    committed,
                })
            }),
    ]
}

proptest! {
    /// encode → decode is the identity for every record shape.
    #[test]
    fn record_roundtrip(record in arb_record()) {
        let wire = record.encode();
        let back = Record::decode(&wire).unwrap();
        prop_assert_eq!(record, back);
    }

    /// The decoder consumes the whole buffer: any trailing byte is
    /// corruption, never silently ignored.
    #[test]
    fn record_rejects_trailing_bytes(record in arb_record(), extra in any::<u8>()) {
        let mut wire = record.encode();
        wire.push(extra);
        prop_assert!(Record::decode(&wire).is_err());
    }
}

/// Byte offsets at which a truncated segment is *clean* (ends exactly on
/// a frame boundary): the magic, then the end of each frame.
fn frame_boundaries(records: &[Record]) -> Vec<usize> {
    let mut boundaries = vec![SEGMENT_MAGIC.len()];
    let mut pos = SEGMENT_MAGIC.len();
    for record in records {
        let mut framed = Vec::new();
        frame_into(&mut framed, record);
        pos += framed.len();
        boundaries.push(pos);
    }
    boundaries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Torn-tail recovery, exhaustively: a segment truncated at EVERY
    /// byte offset reopens cleanly, yields exactly the records whose
    /// frames survived whole, flags the tear iff the cut missed a frame
    /// boundary, and — because open() truncates the tear away — reopens
    /// a second time with no tear and accepts new appends.
    #[test]
    fn torn_tail_recovers_at_every_truncation_offset(
        records in prop::collection::vec(arb_record(), 1..5),
    ) {
        // Build the intact segment image once.
        let mut image = SEGMENT_MAGIC.to_vec();
        for record in &records {
            frame_into(&mut image, record);
        }
        let boundaries = frame_boundaries(&records);

        for cut in 0..=image.len() {
            let dir = TempDir::new("torn");
            fs::create_dir_all(dir.path()).unwrap();
            fs::write(segment_path(dir.path(), 0), &image[..cut]).unwrap();

            let expected = boundaries.iter().filter(|&&b| b <= cut).count().max(1) - 1;
            let clean = boundaries.contains(&cut);

            let (journal, replay) = Journal::open(dir.path(), JournalConfig::default()).unwrap();
            prop_assert_eq!(
                replay.records_scanned as usize, expected,
                "cut={} of {}", cut, image.len()
            );
            prop_assert_eq!(replay.torn_tail, !clean, "cut={}", cut);

            // The tear is gone: appends land after the last intact record
            // and a second open sees a clean stream one record longer.
            journal.hop_committed("resumed").unwrap();
            journal.sync().unwrap();
            drop(journal);
            let (_, again) = Journal::open(dir.path(), JournalConfig::default()).unwrap();
            prop_assert!(!again.torn_tail, "cut={}", cut);
            prop_assert_eq!(again.records_scanned as usize, expected + 1, "cut={}", cut);
            prop_assert!(again.committed.iter().any(|k| k == "resumed"));
        }
    }
}

/// One random journal operation, expressed over the public API.
#[derive(Debug, Clone)]
enum Op {
    Park {
        timeout_nanos: u64,
        wire: Bytes,
    },
    Deliver {
        pick: usize,
    },
    Begin {
        key: String,
        parent: Option<String>,
        inbound: bool,
        to: String,
        wire: Bytes,
    },
    Commit {
        key: String,
    },
    Abort {
        key: String,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u64>(), arb_wire()).prop_map(|(timeout_nanos, wire)| Op::Park {
            timeout_nanos,
            wire
        }),
        any::<u16>().prop_map(|pick| Op::Deliver {
            pick: pick as usize
        }),
        (
            arb_hop_key(),
            prop::option::of(arb_hop_key()),
            any::<bool>(),
            "[a-z]{0,8}",
            arb_wire(),
        )
            .prop_map(|(key, parent, inbound, to, wire)| Op::Begin {
                key,
                parent,
                inbound,
                to,
                wire,
            }),
        arb_hop_key().prop_map(|key| Op::Commit { key }),
        arb_hop_key().prop_map(|key| Op::Abort { key }),
    ]
}

/// Replays `ops` against a fresh journal in `dir`; `Deliver` picks among
/// the keys `Park` minted so far so deliveries actually hit.
fn run_ops(dir: &Path, ops: &[Op]) {
    let (journal, _) = Journal::open(dir, JournalConfig::default()).unwrap();
    let mut minted = Vec::new();
    for op in ops {
        match op {
            Op::Park {
                timeout_nanos,
                wire,
            } => {
                minted.push(
                    journal
                        .mail_parked(Duration::from_nanos(*timeout_nanos), wire)
                        .unwrap(),
                );
            }
            Op::Deliver { pick } => {
                if !minted.is_empty() {
                    journal.mail_delivered(minted[pick % minted.len()]).unwrap();
                }
            }
            Op::Begin {
                key,
                parent,
                inbound,
                to,
                wire,
            } => {
                journal
                    .hop_begin(key, parent.as_deref(), *inbound, to, wire)
                    .unwrap();
            }
            Op::Commit { key } => journal.hop_committed(key).unwrap(),
            Op::Abort { key } => journal.hop_aborted(key).unwrap(),
        }
    }
    journal.sync().unwrap();
}

/// The replay's logical content, order-normalised for comparison.
fn normalise(replay: &Replay) -> (Vec<ParkedMail>, Vec<OpenHop>, Vec<String>) {
    let mut parked = replay.parked.clone();
    parked.sort_by_key(|m| m.key);
    let mut hops = replay.open_hops.clone();
    hops.sort_by(|a, b| a.key.cmp(&b.key));
    let mut committed = replay.committed.clone();
    committed.sort();
    (parked, hops, committed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Compaction changes the bytes on disk, never the meaning: replaying
    /// a raw op stream and replaying its checkpointed form recover the
    /// identical live state (parked mail, open hops, dedup set).
    #[test]
    fn checkpoint_then_replay_is_equivalent(
        ops in prop::collection::vec(arb_op(), 0..24),
    ) {
        let raw_dir = TempDir::new("ckpt_raw");
        let ckpt_dir = TempDir::new("ckpt_compact");

        run_ops(raw_dir.path(), &ops);
        run_ops(ckpt_dir.path(), &ops);
        {
            let (journal, _) = Journal::open(ckpt_dir.path(), JournalConfig::default()).unwrap();
            journal.checkpoint().unwrap();
        }

        let (_, raw) = Journal::open(raw_dir.path(), JournalConfig::default()).unwrap();
        let (_, compacted) = Journal::open(ckpt_dir.path(), JournalConfig::default()).unwrap();

        prop_assert!(!raw.torn_tail);
        prop_assert!(!compacted.torn_tail);
        prop_assert_eq!(normalise(&raw), normalise(&compacted));
    }
}
