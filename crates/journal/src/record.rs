//! Typed journal records and their byte-level encoding.
//!
//! Every record is encoded as a tag byte followed by fixed-order fields
//! (little-endian integers, `u32`-length-prefixed strings and byte
//! buffers). The encoding is deliberately manual and deterministic: the
//! journal's torn-tail recovery and checkpoint-equivalence proptests
//! compare byte streams, so there must be exactly one encoding per record.

use bytes::Bytes;

use crate::JournalError;

/// The discriminant of a [`Record`], used for fsync policy, per-kind append
/// counters, and crash-point injection (`taxd --crash-after-record`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// A message was parked in the pending queue.
    MailParked,
    /// A previously parked message left the queue (delivered or expired).
    MailDelivered,
    /// An agent hop (migration) started: journaled by the sender before
    /// the wire send, and by the receiver before the transfer is acked.
    HopBegin,
    /// A hop finished: the sender saw the ack, or the receiver ran the
    /// agent's task to completion.
    HopCommitted,
    /// A hop was abandoned after exhausting its retry budget.
    HopAborted,
    /// A compaction point carrying the full live state; resets replay.
    Checkpoint,
}

impl RecordKind {
    /// All kinds, in tag order.
    pub const ALL: [RecordKind; 6] = [
        RecordKind::MailParked,
        RecordKind::MailDelivered,
        RecordKind::HopBegin,
        RecordKind::HopCommitted,
        RecordKind::HopAborted,
        RecordKind::Checkpoint,
    ];

    /// Stable kebab-case name (used by `--crash-after-record` and stats).
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::MailParked => "mail-parked",
            RecordKind::MailDelivered => "mail-delivered",
            RecordKind::HopBegin => "hop-begin",
            RecordKind::HopCommitted => "hop-committed",
            RecordKind::HopAborted => "hop-aborted",
            RecordKind::Checkpoint => "checkpoint",
        }
    }

    /// Parses the kebab-case form produced by [`RecordKind::name`].
    pub fn parse(name: &str) -> Option<RecordKind> {
        RecordKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Index into per-kind counter arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            RecordKind::MailParked => 0,
            RecordKind::MailDelivered => 1,
            RecordKind::HopBegin => 2,
            RecordKind::HopCommitted => 3,
            RecordKind::HopAborted => 4,
            RecordKind::Checkpoint => 5,
        }
    }

    /// Whether appends of this kind must reach disk before the append
    /// returns. Write-ahead records gate an externally visible action (an
    /// ack on the wire, a send) and are always synced; completion records
    /// are fsync-batched, because losing one only causes a deduplicated
    /// retry, never a duplicate execution.
    pub fn write_ahead(self) -> bool {
        matches!(
            self,
            RecordKind::MailParked | RecordKind::HopBegin | RecordKind::Checkpoint
        )
    }
}

/// A hop that has begun but not yet committed, as carried in checkpoints
/// and replay output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenHop {
    /// Content-derived dedup key of the hop.
    pub key: String,
    /// Key of the inbound hop whose task issued this one, if any.
    pub parent: Option<String>,
    /// `true` if this host received the hop (replay re-installs the
    /// agent); `false` if this host sent it (replay re-ships the frame).
    pub inbound: bool,
    /// Destination host of an outbound hop (empty for inbound).
    pub to: String,
    /// The full message wire encoding, enough to re-ship or re-install.
    pub wire: Bytes,
}

/// A parked message, as carried in checkpoints and replay output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParkedMail {
    /// Journal-assigned sequence key.
    pub key: u64,
    /// The park's *relative* timeout in nanoseconds. Deadlines are never
    /// persisted as absolute instants: the scheduler clock restarts at
    /// zero on every boot, so replay recomputes `deadline = now + timeout`.
    pub timeout_nanos: u64,
    /// The parked message's wire encoding.
    pub wire: Bytes,
}

/// The full live state embedded in a [`Record::Checkpoint`]: everything a
/// replay needs so that all earlier segments can be deleted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointState {
    /// Next mail sequence key to hand out.
    pub next_mail_key: u64,
    /// Messages parked and not yet delivered.
    pub parked: Vec<ParkedMail>,
    /// Hops begun and not yet committed or aborted.
    pub open_hops: Vec<OpenHop>,
    /// Terminal hop keys retained for deduplication of late retries.
    pub committed: Vec<String>,
}

/// One journal record. See [`RecordKind`] for the semantics of each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A message entered the pending queue.
    MailParked {
        /// Journal-assigned sequence key.
        key: u64,
        /// Relative timeout in nanoseconds (see [`ParkedMail`]).
        timeout_nanos: u64,
        /// Message wire encoding.
        wire: Bytes,
    },
    /// The parked message with `key` left the queue.
    MailDelivered {
        /// Key assigned by the matching [`Record::MailParked`].
        key: u64,
    },
    /// A hop began (see [`OpenHop`] for field meanings).
    HopBegin {
        /// Content-derived dedup key.
        key: String,
        /// Inbound hop whose task issued this one, if any.
        parent: Option<String>,
        /// Receiver side (`true`) or sender side (`false`).
        inbound: bool,
        /// Destination host for outbound hops (empty for inbound).
        to: String,
        /// Message wire encoding.
        wire: Bytes,
    },
    /// The hop with `key` finished.
    HopCommitted {
        /// The hop's dedup key.
        key: String,
    },
    /// The hop with `key` was abandoned.
    HopAborted {
        /// The hop's dedup key.
        key: String,
    },
    /// Compaction point; resets replay state to the embedded snapshot.
    Checkpoint(CheckpointState),
}

impl Record {
    /// This record's kind.
    pub fn kind(&self) -> RecordKind {
        match self {
            Record::MailParked { .. } => RecordKind::MailParked,
            Record::MailDelivered { .. } => RecordKind::MailDelivered,
            Record::HopBegin { .. } => RecordKind::HopBegin,
            Record::HopCommitted { .. } => RecordKind::HopCommitted,
            Record::HopAborted { .. } => RecordKind::HopAborted,
            Record::Checkpoint(_) => RecordKind::Checkpoint,
        }
    }

    /// Appends the encoding of `self` to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Record::MailParked {
                key,
                timeout_nanos,
                wire,
            } => {
                out.push(1);
                put_u64(out, *key);
                put_u64(out, *timeout_nanos);
                put_bytes(out, wire);
            }
            Record::MailDelivered { key } => {
                out.push(2);
                put_u64(out, *key);
            }
            Record::HopBegin {
                key,
                parent,
                inbound,
                to,
                wire,
            } => {
                out.push(3);
                put_str(out, key);
                put_opt_str(out, parent.as_deref());
                out.push(u8::from(*inbound));
                put_str(out, to);
                put_bytes(out, wire);
            }
            Record::HopCommitted { key } => {
                out.push(4);
                put_str(out, key);
            }
            Record::HopAborted { key } => {
                out.push(5);
                put_str(out, key);
            }
            Record::Checkpoint(state) => {
                out.push(6);
                put_u64(out, state.next_mail_key);
                put_u32(out, state.parked.len() as u32);
                for mail in &state.parked {
                    put_u64(out, mail.key);
                    put_u64(out, mail.timeout_nanos);
                    put_bytes(out, &mail.wire);
                }
                put_u32(out, state.open_hops.len() as u32);
                for hop in &state.open_hops {
                    put_str(out, &hop.key);
                    put_opt_str(out, hop.parent.as_deref());
                    out.push(u8::from(hop.inbound));
                    put_str(out, &hop.to);
                    put_bytes(out, &hop.wire);
                }
                put_u32(out, state.committed.len() as u32);
                for key in &state.committed {
                    put_str(out, key);
                }
            }
        }
    }

    /// The encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one record, consuming the whole buffer.
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] if the tag is unknown, a field is
    /// truncated, or trailing bytes remain.
    pub fn decode(buf: &[u8]) -> Result<Record, JournalError> {
        let mut cur = Cursor { buf, pos: 0 };
        let tag = cur.u8()?;
        let record = match tag {
            1 => Record::MailParked {
                key: cur.u64()?,
                timeout_nanos: cur.u64()?,
                wire: cur.bytes()?,
            },
            2 => Record::MailDelivered { key: cur.u64()? },
            3 => Record::HopBegin {
                key: cur.str()?,
                parent: cur.opt_str()?,
                inbound: cur.u8()? != 0,
                to: cur.str()?,
                wire: cur.bytes()?,
            },
            4 => Record::HopCommitted { key: cur.str()? },
            5 => Record::HopAborted { key: cur.str()? },
            6 => {
                let next_mail_key = cur.u64()?;
                let parked_len = cur.u32()? as usize;
                let mut parked = Vec::new();
                for _ in 0..parked_len {
                    parked.push(ParkedMail {
                        key: cur.u64()?,
                        timeout_nanos: cur.u64()?,
                        wire: cur.bytes()?,
                    });
                }
                let hops_len = cur.u32()? as usize;
                let mut open_hops = Vec::new();
                for _ in 0..hops_len {
                    open_hops.push(OpenHop {
                        key: cur.str()?,
                        parent: cur.opt_str()?,
                        inbound: cur.u8()? != 0,
                        to: cur.str()?,
                        wire: cur.bytes()?,
                    });
                }
                let committed_len = cur.u32()? as usize;
                let mut committed = Vec::new();
                for _ in 0..committed_len {
                    committed.push(cur.str()?);
                }
                Record::Checkpoint(CheckpointState {
                    next_mail_key,
                    parked,
                    open_hops,
                    committed,
                })
            }
            other => return Err(JournalError::corrupt(format!("unknown record tag {other}"))),
        };
        if cur.pos != buf.len() {
            return Err(JournalError::corrupt(format!(
                "{} trailing bytes after record",
                buf.len() - cur.pos
            )));
        }
        Ok(record)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &Bytes) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], JournalError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| JournalError::corrupt("record field truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        let raw = self.take(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(raw);
        Ok(u64::from_le_bytes(le))
    }

    fn str(&mut self) -> Result<String, JournalError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| JournalError::corrupt("record string not UTF-8"))
    }

    fn opt_str(&mut self) -> Result<Option<String>, JournalError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            _ => Err(JournalError::corrupt("bad option flag")),
        }
    }

    fn bytes(&mut self) -> Result<Bytes, JournalError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        Ok(Bytes::copy_from_slice(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::MailParked {
                key: 7,
                timeout_nanos: 30_000_000_000,
                wire: Bytes::copy_from_slice(b"TAXB-mail"),
            },
            Record::MailDelivered { key: 7 },
            Record::HopBegin {
                key: "a1b2".into(),
                parent: Some("9f00".into()),
                inbound: true,
                to: String::new(),
                wire: Bytes::copy_from_slice(b"TAXB-hop"),
            },
            Record::HopCommitted { key: "a1b2".into() },
            Record::HopAborted { key: "dead".into() },
            Record::Checkpoint(CheckpointState {
                next_mail_key: 8,
                parked: vec![ParkedMail {
                    key: 3,
                    timeout_nanos: 1,
                    wire: Bytes::copy_from_slice(b"p"),
                }],
                open_hops: vec![OpenHop {
                    key: "k".into(),
                    parent: None,
                    inbound: false,
                    to: "beta".into(),
                    wire: Bytes::copy_from_slice(b"w"),
                }],
                committed: vec!["a1b2".into()],
            }),
        ]
    }

    #[test]
    fn roundtrip_all_kinds() {
        for record in sample_records() {
            let encoded = record.encode();
            let decoded = Record::decode(&encoded).expect("decode");
            assert_eq!(decoded, record);
            assert_eq!(decoded.kind(), record.kind());
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        for record in sample_records() {
            let encoded = record.encode();
            for cut in 0..encoded.len() {
                assert!(Record::decode(&encoded[..cut]).is_err());
            }
        }
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in RecordKind::ALL {
            assert_eq!(RecordKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(RecordKind::parse("bogus"), None);
    }
}
