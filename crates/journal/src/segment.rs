//! Segment files: the on-disk framing of the journal.
//!
//! A journal directory holds numbered segment files (`wal-000042.taxj`).
//! Each starts with an 8-byte magic, followed by frames of
//! `[len: u32 LE][crc32(payload): u32 LE][payload]`. Appends only ever go
//! to the highest-numbered segment; lower segments are immutable until
//! compaction deletes them.
//!
//! Reading is torn-tail tolerant: a frame whose length field, payload, or
//! CRC is incomplete or wrong ends the scan cleanly at the last intact
//! record instead of erroring, because a crash mid-append is the expected
//! failure mode, not corruption.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::record::Record;
use crate::JournalError;

/// First bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"TAXJRNL1";

/// Upper bound on a single record's payload; a length field above this is
/// treated as a torn/garbage tail, not an allocation request.
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of framing overhead per record (length + CRC).
pub const FRAME_OVERHEAD: u64 = 8;

/// The file name of segment `seq`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.taxj"))
}

/// Parses a segment sequence number out of a file name, if it is one.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".taxj")?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Segment files in `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_segment_name(name) {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(segments)
}

/// Appends one framed record to `out` (a segment body buffer). The
/// payload is encoded in place after a reserved header, which is then
/// backfilled with the length and checksum — one pass over the payload
/// bytes for the encode and one for the CRC, with no staging copy.
pub fn frame_into(out: &mut Vec<u8>, record: &Record) {
    let header = out.len();
    out.extend_from_slice(&[0u8; FRAME_OVERHEAD as usize]);
    record.encode_into(out);
    let payload = header + FRAME_OVERHEAD as usize;
    let len = (out.len() - payload) as u32;
    let crc = crc32(&out[payload..]);
    out[header..header + 4].copy_from_slice(&len.to_le_bytes());
    out[header + 4..payload].copy_from_slice(&crc.to_le_bytes());
}

/// The outcome of scanning one segment file.
pub struct SegmentScan {
    /// Records recovered, in append order.
    pub records: Vec<Record>,
    /// Whether the scan stopped early at a torn or corrupt tail.
    pub torn: bool,
    /// Byte offset of the end of the last intact record (where an append
    /// after truncation would resume).
    pub valid_len: u64,
}

/// Reads every intact record from a segment file.
///
/// A missing or short magic marks the whole file torn (zero records); any
/// frame that fails its length, payload, CRC, or decode check ends the
/// scan there.
///
/// # Errors
///
/// Only I/O errors propagate; corruption is reported via
/// [`SegmentScan::torn`].
pub fn scan_segment(path: &Path) -> Result<SegmentScan, JournalError> {
    let mut data = Vec::new();
    fs::File::open(path)?.read_to_end(&mut data)?;
    let mut scan = SegmentScan {
        records: Vec::new(),
        torn: false,
        valid_len: 0,
    };
    if data.len() < SEGMENT_MAGIC.len() || &data[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        scan.torn = true;
        return Ok(scan);
    }
    let mut pos = SEGMENT_MAGIC.len();
    scan.valid_len = pos as u64;
    loop {
        if pos == data.len() {
            return Ok(scan); // clean end
        }
        if pos + 8 > data.len() {
            scan.torn = true;
            return Ok(scan);
        }
        let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
        let crc = u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        if len > MAX_RECORD_BYTES {
            scan.torn = true;
            return Ok(scan);
        }
        let start = pos + 8;
        let end = start + len as usize;
        if end > data.len() {
            scan.torn = true;
            return Ok(scan);
        }
        let payload = &data[start..end];
        if crc32(payload) != crc {
            scan.torn = true;
            return Ok(scan);
        }
        match Record::decode(payload) {
            Ok(record) => scan.records.push(record),
            Err(_) => {
                scan.torn = true;
                return Ok(scan);
            }
        }
        pos = end;
        scan.valid_len = pos as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_segment(path: &Path, records: &[Record]) -> Vec<u8> {
        let mut body = SEGMENT_MAGIC.to_vec();
        for record in records {
            frame_into(&mut body, record);
        }
        let mut file = fs::File::create(path).unwrap();
        file.write_all(&body).unwrap();
        body
    }

    #[test]
    fn scan_roundtrip_and_truncation() {
        let dir = std::env::temp_dir().join(format!("taxj-seg-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = segment_path(&dir, 0);
        let records = vec![
            Record::MailDelivered { key: 1 },
            Record::HopCommitted { key: "abc".into() },
        ];
        let body = write_segment(&path, &records);

        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records, records);
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, body.len() as u64);

        // Truncate one byte into the second frame: first record survives.
        let first_end = SEGMENT_MAGIC.len() + 8 + records[0].encode().len();
        fs::write(&path, &body[..first_end + 3]).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records, records[..1]);
        assert!(scan.torn);
        assert_eq!(scan.valid_len, first_end as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names() {
        assert_eq!(parse_segment_name("wal-000007.taxj"), Some(7));
        assert_eq!(parse_segment_name("wal-.taxj"), None);
        assert_eq!(parse_segment_name("wal-7.log"), None);
        assert_eq!(parse_segment_name("other"), None);
        let path = segment_path(Path::new("/tmp"), 42);
        assert_eq!(
            parse_segment_name(path.file_name().unwrap().to_str().unwrap()),
            Some(42)
        );
    }
}
