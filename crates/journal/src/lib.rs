//! Durable write-ahead journal for TAX firewalls.
//!
//! A `taxd` restart used to silently drop every parked message and
//! in-flight migration: the firewall's pending queue and hop handoff
//! state lived only in memory. This crate is the reliability substrate
//! that fixes that — an append-only, CRC-framed, fsync-batched log with
//! segment rotation and checkpoint/compaction, plus a boot-time replay
//! that reconstructs exactly the state a crashed daemon must resume.
//!
//! The typed record API mirrors the firewall's externally visible
//! transitions:
//!
//! - [`Record::MailParked`] / [`Record::MailDelivered`] — the pending
//!   queue's admissions and departures;
//! - [`Record::HopBegin`] / [`Record::HopCommitted`] /
//!   [`Record::HopAborted`] — agent migrations, journaled write-ahead on
//!   both the sending side (before the wire send) and the receiving side
//!   (before the transfer ack), keyed by a content-derived dedup key so
//!   that sender retries plus receiver dedup yield *effectively-once*
//!   hop execution;
//! - [`Record::Checkpoint`] — a full live-state snapshot that lets all
//!   earlier segments be deleted.
//!
//! See `docs/journal.md` for the on-disk format and the recovery
//! protocol, including the parent-subsumption rule that keeps replay
//! duplicate-free at every crash point.

mod crc;
mod error;
mod journal;
mod record;
mod segment;

pub use crc::crc32;
pub use error::JournalError;
pub use journal::{CrashPoint, Journal, JournalConfig, JournalStats, Replay};
pub use record::{CheckpointState, OpenHop, ParkedMail, Record, RecordKind};
pub use segment::{
    frame_into, list_segments, parse_segment_name, scan_segment, segment_path, SegmentScan,
    FRAME_OVERHEAD, MAX_RECORD_BYTES, SEGMENT_MAGIC,
};
