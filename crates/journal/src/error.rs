//! Journal error type.

use std::fmt;
use std::io;

/// Errors surfaced by the journal.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A record or segment violated the format in a way torn-tail
    /// tolerance does not cover (e.g. decoding a buffer handed in by the
    /// caller rather than scanned from disk).
    Corrupt(String),
}

impl JournalError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> JournalError {
        JournalError::Corrupt(msg.into())
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(err) => write!(f, "journal I/O error: {err}"),
            JournalError::Corrupt(msg) => write!(f, "journal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(err) => Some(err),
            JournalError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(err: io::Error) -> Self {
        JournalError::Io(err)
    }
}
