//! The journal proper: append API, fsync batching, rotation, checkpoint
//! and compaction, and boot-time replay.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::record::{CheckpointState, OpenHop, ParkedMail, Record, RecordKind};
use crate::segment::{frame_into, list_segments, scan_segment, segment_path, SEGMENT_MAGIC};
use crate::JournalError;

/// A deterministic crash point for fault-injection tests: after the `nth`
/// append of `kind` is durably on disk, the process aborts — equivalent to
/// a SIGKILL landing right after that record's fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Which record kind triggers the crash.
    pub kind: RecordKind,
    /// 1-based count of appends of `kind` before aborting.
    pub nth: u64,
}

impl CrashPoint {
    /// Parses `kind` or `kind:N` (e.g. `hop-begin:2`).
    pub fn parse(spec: &str) -> Option<CrashPoint> {
        let (kind, nth) = match spec.split_once(':') {
            Some((kind, nth)) => (kind, nth.parse().ok()?),
            None => (spec, 1),
        };
        if nth == 0 {
            return None;
        }
        Some(CrashPoint {
            kind: RecordKind::parse(kind)?,
            nth,
        })
    }
}

/// Journal tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// How many records may sit unsynced before a sync is forced (the
    /// backstop bounding completion-record loss). Write-ahead records
    /// (see [`RecordKind::write_ahead`]) are always durable before their
    /// append returns, via group commit — a leader's fsync covers every
    /// record appended before it, so this knob also sets how large those
    /// shared flushes are allowed to grow.
    pub fsync_batch: usize,
    /// Rotate to a fresh segment once the tail reaches this many bytes.
    pub segment_bytes: u64,
    /// Optional fault-injection crash point.
    pub crash_after: Option<CrashPoint>,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            fsync_batch: 8,
            segment_bytes: 4 * 1024 * 1024,
            crash_after: None,
        }
    }
}

/// Counters and gauges describing one journal. All counters are since
/// open; gauges reflect the current directory state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since open.
    pub records: u64,
    /// Framed bytes appended since open.
    pub bytes: u64,
    /// `fsync` calls issued since open.
    pub fsyncs: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Total bytes across all current segment files.
    pub live_bytes: u64,
    /// Checkpoints written since open.
    pub checkpoints: u64,
    /// Sequence number of the segment holding the latest checkpoint
    /// (meaningful when `checkpoints > 0` or the directory was opened
    /// with one on disk).
    pub last_checkpoint_seq: u64,
    /// Parked messages currently live in journal state.
    pub parked: u64,
    /// Hops begun but not yet committed or aborted.
    pub open_hops: u64,
    /// Terminal hop keys retained for deduplication.
    pub committed_hops: u64,
}

impl fmt::Display for JournalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "records={} bytes={} fsyncs={} segments={} live-bytes={} checkpoints={} \
             last-checkpoint-seg={} parked={} open-hops={} committed-hops={}",
            self.records,
            self.bytes,
            self.fsyncs,
            self.segments,
            self.live_bytes,
            self.checkpoints,
            self.last_checkpoint_seq,
            self.parked,
            self.open_hops,
            self.committed_hops,
        )
    }
}

/// What a boot-time replay recovered. The caller re-parks `parked`
/// (recomputing deadlines from the stored relative timeouts), re-installs
/// or re-ships `open_hops`, and seeds its hop-dedup set with `committed`
/// plus every open hop key.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Intact records scanned across all segments.
    pub records_scanned: u64,
    /// Segment files visited.
    pub segments_scanned: u64,
    /// Whether a torn tail was truncated away.
    pub torn_tail: bool,
    /// Parked-and-undelivered messages to restore.
    pub parked: Vec<ParkedMail>,
    /// Begun-but-unfinished hops to resume (inbound) or re-ship
    /// (outbound). Hops subsumed by a journaled continuation (their key
    /// appears as another hop's parent) are already excluded.
    pub open_hops: Vec<OpenHop>,
    /// Terminal hop keys (committed, aborted, or subsumed) for dedup.
    pub committed: Vec<String>,
}

impl Replay {
    /// Every hop key the journal has seen, terminal or open — the seed
    /// for the receiver-side dedup set.
    pub fn seen_hops(&self) -> impl Iterator<Item = &str> {
        self.committed
            .iter()
            .map(String::as_str)
            .chain(self.open_hops.iter().map(|h| h.key.as_str()))
    }
}

/// The fold of all journal records: what must survive into a checkpoint.
#[derive(Default)]
struct LiveState {
    next_mail_key: u64,
    parked: BTreeMap<u64, (u64, Bytes)>,
    open_hops: BTreeMap<String, OpenHop>,
    committed: BTreeSet<String>,
}

impl LiveState {
    fn finish_hop(&mut self, key: &str) {
        self.open_hops.remove(key);
        self.committed.insert(key.to_owned());
    }

    /// Applies one record. The one subtlety is parent subsumption: a
    /// `HopBegin` whose `parent` names an earlier inbound hop proves that
    /// hop's task progressed past its own send, so the parent must never
    /// be re-run even though its `HopCommitted` (written only when the
    /// task finishes) may be missing. Marking the parent terminal here
    /// makes every crash point between the child's begin and the parent's
    /// commit replay duplicate-free.
    fn apply(&mut self, record: &Record) {
        match record {
            Record::MailParked {
                key,
                timeout_nanos,
                wire,
            } => {
                self.parked.insert(*key, (*timeout_nanos, wire.clone()));
                self.next_mail_key = self.next_mail_key.max(key + 1);
            }
            Record::MailDelivered { key } => {
                self.parked.remove(key);
            }
            Record::HopBegin {
                key,
                parent,
                inbound,
                to,
                wire,
            } => {
                if self.committed.contains(key) {
                    // A re-journaled begin for a hop that already reached a
                    // terminal state (e.g. a sender retry raced the first
                    // arrival's commit) must not reopen it.
                    return;
                }
                self.open_hops.insert(
                    key.clone(),
                    OpenHop {
                        key: key.clone(),
                        parent: parent.clone(),
                        inbound: *inbound,
                        to: to.clone(),
                        wire: wire.clone(),
                    },
                );
                if let Some(parent) = parent {
                    self.finish_hop(&parent.clone());
                }
            }
            Record::HopCommitted { key } | Record::HopAborted { key } => {
                self.finish_hop(&key.clone());
            }
            Record::Checkpoint(state) => {
                self.next_mail_key = state.next_mail_key;
                self.parked = state
                    .parked
                    .iter()
                    .map(|m| (m.key, (m.timeout_nanos, m.wire.clone())))
                    .collect();
                self.open_hops = state
                    .open_hops
                    .iter()
                    .map(|h| (h.key.clone(), h.clone()))
                    .collect();
                self.committed = state.committed.iter().cloned().collect();
            }
        }
    }

    fn to_checkpoint(&self) -> CheckpointState {
        CheckpointState {
            next_mail_key: self.next_mail_key,
            parked: self
                .parked
                .iter()
                .map(|(&key, (timeout_nanos, wire))| ParkedMail {
                    key,
                    timeout_nanos: *timeout_nanos,
                    wire: wire.clone(),
                })
                .collect(),
            open_hops: self.open_hops.values().cloned().collect(),
            committed: self.committed.iter().cloned().collect(),
        }
    }
}

struct Inner {
    dir: PathBuf,
    config: JournalConfig,
    seq: u64,
    file: Arc<fs::File>,
    seg_len: u64,
    unsynced: usize,
    /// While a [`GroupScope`] is live, frames accumulate here and reach
    /// the file as one `write(2)` when the group ends — a burst of
    /// records costs one syscall instead of one each.
    group_buf: Vec<u8>,
    grouping: bool,
    /// Shared with [`Journal::synced`]: the durable LSN horizon, published
    /// by every sync path so [`Journal::ensure_synced`] can fast-path.
    synced: Arc<AtomicU64>,
    state: LiveState,
    stats: JournalStats,
    appended: [u64; 6],
    frame: Vec<u8>,
}

/// A durable, append-only journal of firewall state transitions.
///
/// Thread-safe behind an internal mutex; cheap to share as
/// `Arc<Journal>`. All append methods return only after the record is at
/// least buffered in the OS; write-ahead kinds return only after fsync.
///
/// Syncs group-commit: a write-ahead append releases the append lock
/// before fsyncing, and one fsync covers every record appended before
/// it. Under concurrency (listener connection threads, the scheduler)
/// the fsync rate decouples from the append rate — callers that arrive
/// while a leader is syncing either find their record already covered or
/// elect the next leader, so a burst of N write-ahead appends pays for a
/// handful of fsyncs instead of N.
pub struct Journal {
    inner: Mutex<Inner>,
    /// Serializes fsync leaders (never held while `inner` is held first —
    /// lock order is `sync_lock` then `inner`).
    sync_lock: Mutex<()>,
    /// Highest record LSN (`stats.records` at append time) known durable.
    synced: Arc<AtomicU64>,
}

/// Appender passed to [`Journal::with_group`]: records written through
/// it are made durable by one shared fsync when the closure returns.
pub struct GroupScope<'a> {
    inner: &'a mut Inner,
}

impl GroupScope<'_> {
    /// Journals a parked message; see [`Journal::mail_parked`].
    ///
    /// # Errors
    ///
    /// I/O failure on write or rotation.
    pub fn mail_parked(&mut self, timeout: Duration, wire: &Bytes) -> Result<u64, JournalError> {
        let key = self.inner.state.next_mail_key;
        self.inner.append(&Record::MailParked {
            key,
            timeout_nanos: timeout.as_nanos() as u64,
            wire: wire.clone(),
        })?;
        Ok(key)
    }

    /// Journals a delivery; see [`Journal::mail_delivered`].
    ///
    /// # Errors
    ///
    /// I/O failure on write or rotation.
    pub fn mail_delivered(&mut self, key: u64) -> Result<(), JournalError> {
        self.inner
            .append(&Record::MailDelivered { key })
            .map(|_| ())
    }

    /// Journals a hop begin; see [`Journal::hop_begin`].
    ///
    /// # Errors
    ///
    /// I/O failure on write or rotation.
    pub fn hop_begin(
        &mut self,
        key: &str,
        parent: Option<&str>,
        inbound: bool,
        to: &str,
        wire: &Bytes,
    ) -> Result<(), JournalError> {
        self.inner
            .append(&Record::HopBegin {
                key: key.to_owned(),
                parent: parent.map(str::to_owned),
                inbound,
                to: to.to_owned(),
                wire: wire.clone(),
            })
            .map(|_| ())
    }

    /// Journals hop completion; see [`Journal::hop_committed`].
    ///
    /// # Errors
    ///
    /// I/O failure on write or rotation.
    pub fn hop_committed(&mut self, key: &str) -> Result<(), JournalError> {
        self.inner
            .append(&Record::HopCommitted {
                key: key.to_owned(),
            })
            .map(|_| ())
    }

    /// Journals hop abandonment; see [`Journal::hop_aborted`].
    ///
    /// # Errors
    ///
    /// I/O failure on write or rotation.
    pub fn hop_aborted(&mut self, key: &str) -> Result<(), JournalError> {
        self.inner
            .append(&Record::HopAborted {
                key: key.to_owned(),
            })
            .map(|_| ())
    }
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Journal")
            .field("dir", &inner.dir)
            .field("seq", &inner.seq)
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, replaying any
    /// existing segments. Torn tails are truncated to the last intact
    /// record so subsequent appends extend a clean stream.
    ///
    /// # Errors
    ///
    /// I/O failures opening, scanning, or truncating segment files.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: JournalConfig,
    ) -> Result<(Journal, Replay), JournalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;

        let mut replay = Replay::default();
        let mut state = LiveState::default();
        let mut live_bytes = 0u64;
        let mut last_checkpoint_seq = 0u64;
        let mut had_checkpoint = false;
        let mut tail: Option<(u64, PathBuf, u64)> = None; // (seq, path, valid_len)
        for (idx, (seq, path)) in segments.iter().enumerate() {
            let scan = scan_segment(path)?;
            replay.segments_scanned += 1;
            replay.records_scanned += scan.records.len() as u64;
            for record in &scan.records {
                if record.kind() == RecordKind::Checkpoint {
                    last_checkpoint_seq = *seq;
                    had_checkpoint = true;
                }
                state.apply(record);
            }
            live_bytes += scan.valid_len;
            tail = Some((*seq, path.clone(), scan.valid_len));
            if scan.torn {
                replay.torn_tail = true;
                // Records past a torn point are unreachable on the next
                // scan too; drop any higher-numbered segments so appends
                // resume directly after the last intact record.
                for (_, stale) in &segments[idx + 1..] {
                    fs::remove_file(stale)?;
                }
                break;
            }
        }

        let (seq, file, seg_len) = match tail {
            Some((seq, path, valid_len)) => {
                let file = fs::OpenOptions::new().write(true).open(&path)?;
                if valid_len < SEGMENT_MAGIC.len() as u64 {
                    // The magic itself was torn; rebuild an empty segment.
                    file.set_len(0)?;
                    let mut file = file;
                    file.write_all(SEGMENT_MAGIC)?;
                    file.sync_data()?;
                    live_bytes += SEGMENT_MAGIC.len() as u64;
                    (seq, file, SEGMENT_MAGIC.len() as u64)
                } else {
                    file.set_len(valid_len)?;
                    let file = fs::OpenOptions::new().append(true).open(&path)?;
                    (seq, file, valid_len)
                }
            }
            None => {
                let (file, len) = create_segment(&dir, 0)?;
                live_bytes = len;
                (0, file, len)
            }
        };

        replay.parked = state
            .parked
            .iter()
            .map(|(&key, (timeout_nanos, wire))| ParkedMail {
                key,
                timeout_nanos: *timeout_nanos,
                wire: wire.clone(),
            })
            .collect();
        replay.open_hops = state.open_hops.values().cloned().collect();
        replay.committed = state.committed.iter().cloned().collect();

        let segment_count = if replay.segments_scanned == 0 {
            1
        } else {
            replay.segments_scanned
        };
        let stats = JournalStats {
            segments: segment_count,
            live_bytes,
            last_checkpoint_seq: if had_checkpoint {
                last_checkpoint_seq
            } else {
                0
            },
            parked: state.parked.len() as u64,
            open_hops: state.open_hops.len() as u64,
            committed_hops: state.committed.len() as u64,
            ..JournalStats::default()
        };

        let synced = Arc::new(AtomicU64::new(0));
        Ok((
            Journal {
                inner: Mutex::new(Inner {
                    dir,
                    config,
                    seq,
                    file: Arc::new(file),
                    seg_len,
                    unsynced: 0,
                    group_buf: Vec::new(),
                    grouping: false,
                    synced: Arc::clone(&synced),
                    state,
                    stats,
                    appended: [0; 6],
                    frame: Vec::new(),
                }),
                sync_lock: Mutex::new(()),
                synced,
            },
            replay,
        ))
    }

    /// Journals a parked message and returns its sequence key. Synced
    /// before returning (write-ahead: the park must survive a crash that
    /// the sender believes was an accepted delivery).
    ///
    /// # Errors
    ///
    /// I/O failure on write, rotation, or fsync.
    pub fn mail_parked(&self, timeout: Duration, wire: &Bytes) -> Result<u64, JournalError> {
        let (key, lsn) = {
            let mut inner = self.inner.lock();
            let key = inner.state.next_mail_key;
            let lsn = inner.append(&Record::MailParked {
                key,
                timeout_nanos: timeout.as_nanos() as u64,
                wire: wire.clone(),
            })?;
            (key, lsn)
        };
        self.ensure_synced(lsn)?;
        Ok(key)
    }

    /// Journals that the parked message `key` left the queue (delivered
    /// to its agent or expired). Fsync-batched.
    ///
    /// # Errors
    ///
    /// I/O failure on write, rotation, or fsync.
    pub fn mail_delivered(&self, key: u64) -> Result<(), JournalError> {
        let due = {
            let mut inner = self.inner.lock();
            let lsn = inner.append(&Record::MailDelivered { key })?;
            inner.sync_due().then_some(lsn)
        };
        due.map_or(Ok(()), |lsn| self.ensure_synced(lsn))
    }

    /// Makes every record appended at or before `lsn` durable, joining or
    /// leading a group commit. Fast path: a concurrent leader's fsync
    /// already covered `lsn`. Slow path: take the sync lock, snapshot the
    /// current tail file and tip LSN under the append lock, fsync with
    /// *neither* append nor state blocked, then publish the new horizon.
    ///
    /// Rotation safety: `rotate()` fsyncs the outgoing file while holding
    /// the append lock, so any record at or below the snapshot tip is
    /// either in the snapshot file or already durable in an earlier one.
    fn ensure_synced(&self, lsn: u64) -> Result<(), JournalError> {
        if self.synced.load(Ordering::Acquire) >= lsn {
            return Ok(());
        }
        let _leader = self.sync_lock.lock();
        if self.synced.load(Ordering::Acquire) >= lsn {
            return Ok(());
        }
        // Commit window: give concurrently-appending threads one
        // scheduling slot to land their records before the tip is
        // snapshotted, so this fsync covers them too and their own
        // `ensure_synced` takes the fast path instead of another flush.
        std::thread::yield_now();
        let (file, tip) = {
            let inner = self.inner.lock();
            (Arc::clone(&inner.file), inner.stats.records)
        };
        file.sync_data()?;
        self.synced.fetch_max(tip, Ordering::Release);
        let mut inner = self.inner.lock();
        inner.stats.fsyncs += 1;
        // Exactly the records appended while the flush ran remain unsynced.
        inner.unsynced = usize::try_from(inner.stats.records - tip).unwrap_or(usize::MAX);
        Ok(())
    }

    /// Runs `f` with a [`GroupScope`] appender under the append lock, then
    /// makes everything it wrote durable with one shared group-commit
    /// fsync before returning. This is the bulk write-ahead path: a burst
    /// of parks/begins journaled through one `with_group` costs one fsync
    /// (often zero, when a concurrent leader's sync already covers it)
    /// instead of one per record.
    ///
    /// # Errors
    ///
    /// I/O failure on write, rotation, or fsync; errors from `f`.
    pub fn with_group<R>(
        &self,
        f: impl FnOnce(&mut GroupScope<'_>) -> Result<R, JournalError>,
    ) -> Result<R, JournalError> {
        let (result, lsn) = {
            let mut inner = self.inner.lock();
            inner.grouping = true;
            let result = f(&mut GroupScope { inner: &mut inner });
            inner.grouping = false;
            // Even on a closure error the frames already appended have
            // been counted and applied, so they must reach the file.
            let flush = inner.flush_group_buf();
            let result = result?;
            flush?;
            (result, inner.stats.records)
        };
        self.ensure_synced(lsn)?;
        Ok(result)
    }

    /// Journals a hop begin. Synced before returning (write-ahead: the
    /// sender must not transmit, and the receiver must not ack, a hop
    /// that a crash would forget).
    ///
    /// # Errors
    ///
    /// I/O failure on write, rotation, or fsync.
    pub fn hop_begin(
        &self,
        key: &str,
        parent: Option<&str>,
        inbound: bool,
        to: &str,
        wire: &Bytes,
    ) -> Result<(), JournalError> {
        let lsn = self.inner.lock().append(&Record::HopBegin {
            key: key.to_owned(),
            parent: parent.map(str::to_owned),
            inbound,
            to: to.to_owned(),
            wire: wire.clone(),
        })?;
        self.ensure_synced(lsn)
    }

    /// The receiver's door: journals an inbound hop begin *unless* the key
    /// has already been seen (open or terminal), making this the dedup
    /// point for sender retries and replayed re-ships. Returns `true` when
    /// the hop is fresh and was journaled (synced before returning, so an
    /// ack sent afterwards never outlives the record), `false` when the
    /// arrival is a duplicate that should be acked but not executed.
    ///
    /// # Errors
    ///
    /// I/O failure on write, rotation, or fsync.
    pub fn begin_inbound_hop(
        &self,
        key: &str,
        parent: Option<&str>,
        wire: &Bytes,
    ) -> Result<bool, JournalError> {
        let lsn = {
            let mut inner = self.inner.lock();
            if inner.state.committed.contains(key) || inner.state.open_hops.contains_key(key) {
                return Ok(false);
            }
            inner.append(&Record::HopBegin {
                key: key.to_owned(),
                parent: parent.map(str::to_owned),
                inbound: true,
                to: String::new(),
                wire: wire.clone(),
            })?
        };
        self.ensure_synced(lsn)?;
        Ok(true)
    }

    /// Whether `key` is known to the journal, open or terminal.
    pub fn hop_seen(&self, key: &str) -> bool {
        let inner = self.inner.lock();
        inner.state.committed.contains(key) || inner.state.open_hops.contains_key(key)
    }

    /// Journals hop completion. Fsync-batched: losing this record only
    /// causes a deduplicated retry on replay, never a duplicate run.
    ///
    /// # Errors
    ///
    /// I/O failure on write, rotation, or fsync.
    pub fn hop_committed(&self, key: &str) -> Result<(), JournalError> {
        let due = {
            let mut inner = self.inner.lock();
            let lsn = inner.append(&Record::HopCommitted {
                key: key.to_owned(),
            })?;
            inner.sync_due().then_some(lsn)
        };
        due.map_or(Ok(()), |lsn| self.ensure_synced(lsn))
    }

    /// Journals hop abandonment (retry budget exhausted). Fsync-batched.
    ///
    /// # Errors
    ///
    /// I/O failure on write, rotation, or fsync.
    pub fn hop_aborted(&self, key: &str) -> Result<(), JournalError> {
        let due = {
            let mut inner = self.inner.lock();
            let lsn = inner.append(&Record::HopAborted {
                key: key.to_owned(),
            })?;
            inner.sync_due().then_some(lsn)
        };
        due.map_or(Ok(()), |lsn| self.ensure_synced(lsn))
    }

    /// Journals a burst of parked messages under one group-commit fsync:
    /// every record in the burst is written, then a single sync makes
    /// them all durable before this returns. That amortizes the fsync a
    /// write-ahead park pays across the burst while preserving the
    /// write-ahead contract — provided the caller acknowledges none of
    /// the burst before the call returns. Returns the assigned sequence
    /// keys, in order.
    ///
    /// # Errors
    ///
    /// I/O failure on write, rotation, or fsync.
    pub fn mail_parked_batch(&self, items: &[(Duration, Bytes)]) -> Result<Vec<u64>, JournalError> {
        self.with_group(|group| {
            let mut keys = Vec::with_capacity(items.len());
            for (timeout, wire) in items {
                keys.push(group.mail_parked(*timeout, wire)?);
            }
            Ok(keys)
        })
    }

    /// Journals a burst of hop begins under one group-commit fsync (see
    /// [`Journal::mail_parked_batch`] for the durability contract).
    ///
    /// # Errors
    ///
    /// I/O failure on write, rotation, or fsync.
    pub fn hop_begin_batch(&self, hops: &[OpenHop]) -> Result<(), JournalError> {
        self.with_group(|group| {
            for hop in hops {
                group.hop_begin(
                    &hop.key,
                    hop.parent.as_deref(),
                    hop.inbound,
                    &hop.to,
                    &hop.wire,
                )?;
            }
            Ok(())
        })
    }

    /// Forces any batched records to disk.
    ///
    /// # Errors
    ///
    /// I/O failure on fsync.
    pub fn sync(&self) -> Result<(), JournalError> {
        self.inner.lock().sync_locked()
    }

    /// Writes a checkpoint carrying the full live state into a fresh
    /// segment, then deletes every older segment. After this, replay
    /// cost is proportional to live state, not journal history.
    ///
    /// # Errors
    ///
    /// I/O failure writing the checkpoint or removing old segments.
    pub fn checkpoint(&self) -> Result<(), JournalError> {
        let mut inner = self.inner.lock();
        inner.rotate()?;
        let checkpoint = Record::Checkpoint(inner.state.to_checkpoint());
        inner.append(&checkpoint)?;
        inner.sync_locked()?;
        let keep = inner.seq;
        for (seq, path) in list_segments(&inner.dir)? {
            if seq < keep {
                fs::remove_file(path)?;
            }
        }
        sync_dir(&inner.dir)?;
        inner.stats.checkpoints += 1;
        inner.stats.last_checkpoint_seq = keep;
        inner.stats.segments = 1;
        inner.stats.live_bytes = inner.seg_len;
        Ok(())
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> JournalStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        stats.parked = inner.state.parked.len() as u64;
        stats.open_hops = inner.state.open_hops.len() as u64;
        stats.committed_hops = inner.state.committed.len() as u64;
        stats
    }
}

impl Inner {
    /// Whether the fsync-batch backstop requires a sync now.
    fn sync_due(&self) -> bool {
        self.unsynced >= self.config.fsync_batch.max(1)
    }

    /// Writes any group-buffered frames through to the file. Must run
    /// before anything syncs or swaps the file, and before the append
    /// lock is released at the end of a group.
    fn flush_group_buf(&mut self) -> Result<(), JournalError> {
        if !self.group_buf.is_empty() {
            (&*self.file).write_all(&self.group_buf)?;
            self.group_buf.clear();
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), JournalError> {
        // Make the outgoing segment durable before any append lands in
        // the next one — this is what lets `ensure_synced` reason about a
        // single tail file: records at or below a snapshot tip are either
        // in that file or already synced here.
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        self.unsynced = 0;
        self.synced.fetch_max(self.stats.records, Ordering::Release);
        self.seq += 1;
        let (file, len) = create_segment(&self.dir, self.seq)?;
        self.file = Arc::new(file);
        self.seg_len = len;
        self.stats.segments += 1;
        self.stats.live_bytes += len;
        Ok(())
    }

    fn sync_locked(&mut self) -> Result<(), JournalError> {
        self.flush_group_buf()?;
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
            self.stats.fsyncs += 1;
            self.synced.fetch_max(self.stats.records, Ordering::Release);
        }
        Ok(())
    }

    /// Appends one record and returns its LSN (the running record count).
    ///
    /// Never fsyncs — durability is the caller's job via
    /// [`Journal::ensure_synced`], *after* releasing the append lock, so
    /// that one fsync can cover every record appended before it and other
    /// threads keep appending while the disk flushes. Even the
    /// `fsync_batch` backstop for completion records is enforced by the
    /// public append methods through `ensure_synced`, never in here.
    fn append(&mut self, record: &Record) -> Result<u64, JournalError> {
        if self.seg_len >= self.config.segment_bytes {
            self.flush_group_buf()?;
            self.rotate()?;
        }
        let frame_len = if self.grouping {
            // Frame straight into the group buffer; the whole group
            // reaches the file as one write when the scope ends.
            let start = self.group_buf.len();
            frame_into(&mut self.group_buf, record);
            (self.group_buf.len() - start) as u64
        } else {
            let mut frame = std::mem::take(&mut self.frame);
            frame.clear();
            frame_into(&mut frame, record);
            let result = (&*self.file).write_all(&frame);
            let frame_len = frame.len() as u64;
            self.frame = frame;
            result?;
            frame_len
        };
        self.seg_len += frame_len;
        self.stats.records += 1;
        self.stats.bytes += frame_len;
        self.stats.live_bytes += frame_len;
        self.state.apply(record);
        let kind = record.kind();
        self.appended[kind.index()] += 1;
        self.unsynced += 1;
        if let Some(crash) = self.config.crash_after {
            if crash.kind == kind && self.appended[kind.index()] == crash.nth {
                // The record that triggers the crash must be durable first:
                // the scenario modelled is "SIGKILL right after the fsync".
                let _ = self.flush_group_buf();
                let _ = self.file.sync_data();
                eprintln!(
                    "journal: crash injection after {} #{}",
                    kind.name(),
                    crash.nth
                );
                std::process::abort();
            }
        }
        Ok(self.stats.records)
    }
}

fn create_segment(dir: &Path, seq: u64) -> Result<(fs::File, u64), JournalError> {
    let path = segment_path(dir, seq);
    let mut file = fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    file.write_all(SEGMENT_MAGIC)?;
    file.sync_data()?;
    sync_dir(dir)?;
    Ok((file, SEGMENT_MAGIC.len() as u64))
}

/// Persists directory entries (new/removed segment files) themselves.
fn sync_dir(dir: &Path) -> Result<(), JournalError> {
    // Directory fsync is best-effort: some filesystems refuse to sync a
    // directory handle, and losing a whole just-created segment is
    // recoverable (it is replayed as absent).
    if let Ok(handle) = fs::File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "taxj-{}-{}-{tag}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-")
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn wire(tag: &[u8]) -> Bytes {
        Bytes::copy_from_slice(tag)
    }

    #[test]
    fn park_deliver_replay() {
        let dir = tmp_dir("park");
        {
            let (journal, replay) = Journal::open(&dir, JournalConfig::default()).unwrap();
            assert_eq!(replay.records_scanned, 0);
            let k1 = journal
                .mail_parked(Duration::from_secs(30), &wire(b"m1"))
                .unwrap();
            let k2 = journal
                .mail_parked(Duration::from_secs(5), &wire(b"m2"))
                .unwrap();
            assert_ne!(k1, k2);
            journal.mail_delivered(k1).unwrap();
            journal.sync().unwrap();
        }
        let (journal, replay) = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert_eq!(replay.parked.len(), 1);
        assert_eq!(replay.parked[0].wire.as_ref(), b"m2");
        assert_eq!(replay.parked[0].timeout_nanos, 5_000_000_000);
        assert!(!replay.torn_tail);
        // A new park after replay gets a fresh key.
        let k3 = journal
            .mail_parked(Duration::from_secs(1), &wire(b"m3"))
            .unwrap();
        assert!(k3 > replay.parked[0].key);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hop_lifecycle_and_parent_subsumption() {
        let dir = tmp_dir("hops");
        {
            let (journal, _) = Journal::open(&dir, JournalConfig::default()).unwrap();
            // Inbound hop k1 runs; its task ships child hop k2; the
            // daemon dies before k1's commit is written.
            journal
                .hop_begin("k1", None, true, "", &wire(b"h1"))
                .unwrap();
            journal
                .hop_begin("k2", Some("k1"), false, "beta", &wire(b"h2"))
                .unwrap();
            journal.hop_committed("k2").unwrap();
        }
        let (_, replay) = Journal::open(&dir, JournalConfig::default()).unwrap();
        // k1 is subsumed by k2's begin: nothing to resume, both deduped.
        assert!(replay.open_hops.is_empty());
        let mut committed = replay.committed.clone();
        committed.sort();
        assert_eq!(committed, vec!["k1".to_owned(), "k2".to_owned()]);
        let seen: Vec<&str> = replay.seen_hops().collect();
        assert_eq!(seen.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_inbound_hop_is_resumed() {
        let dir = tmp_dir("resume");
        {
            let (journal, _) = Journal::open(&dir, JournalConfig::default()).unwrap();
            journal
                .hop_begin("k9", None, true, "", &wire(b"agent"))
                .unwrap();
        }
        let (_, replay) = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert_eq!(replay.open_hops.len(), 1);
        assert!(replay.open_hops[0].inbound);
        assert_eq!(replay.open_hops[0].wire.as_ref(), b"agent");
        assert!(replay.seen_hops().any(|k| k == "k9"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let dir = tmp_dir("ckpt");
        let config = JournalConfig {
            segment_bytes: 128,
            ..JournalConfig::default()
        };
        {
            let (journal, _) = Journal::open(&dir, config).unwrap();
            for i in 0..20 {
                let key = journal
                    .mail_parked(Duration::from_secs(30), &wire(b"bulk-message"))
                    .unwrap();
                if i % 2 == 0 {
                    journal.mail_delivered(key).unwrap();
                }
            }
            journal.hop_begin("h", None, true, "", &wire(b"a")).unwrap();
            assert!(journal.stats().segments > 1);
            journal.checkpoint().unwrap();
            let stats = journal.stats();
            assert_eq!(stats.segments, 1);
            assert_eq!(stats.parked, 10);
        }
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        let (_, replay) = Journal::open(&dir, config).unwrap();
        assert_eq!(replay.parked.len(), 10);
        assert_eq!(replay.open_hops.len(), 1);
        // Only the checkpoint record remains to scan.
        assert_eq!(replay.records_scanned, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncated_then_appendable() {
        let dir = tmp_dir("torn");
        {
            let (journal, _) = Journal::open(&dir, JournalConfig::default()).unwrap();
            journal.hop_committed("a").unwrap();
            journal.hop_committed("b").unwrap();
            journal.sync().unwrap();
        }
        // Tear the tail mid-frame.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();

        let (journal, replay) = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records_scanned, 1);
        journal.hop_committed("c").unwrap();
        journal.sync().unwrap();
        drop(journal);

        let (_, replay) = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records_scanned, 2);
        let mut committed = replay.committed;
        committed.sort();
        assert_eq!(committed, vec!["a".to_owned(), "c".to_owned()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_batching_policy() {
        let dir = tmp_dir("fsync");
        let config = JournalConfig {
            fsync_batch: 4,
            ..JournalConfig::default()
        };
        let (journal, _) = Journal::open(&dir, config).unwrap();
        let base = journal.stats().fsyncs;
        // Write-ahead records sync every time.
        journal
            .hop_begin("w", None, false, "beta", &wire(b"x"))
            .unwrap();
        assert_eq!(journal.stats().fsyncs, base + 1);
        // Batched records sync once per `fsync_batch`.
        for _ in 0..3 {
            journal.hop_committed("w").unwrap();
        }
        assert_eq!(journal.stats().fsyncs, base + 1);
        journal.hop_committed("w").unwrap();
        assert_eq!(journal.stats().fsyncs, base + 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inbound_door_dedups_retries_and_committed_hops() {
        let dir = tmp_dir("door");
        let (journal, _) = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert!(journal.begin_inbound_hop("k1", None, &wire(b"a")).unwrap());
        // A sender retry of an open hop is suppressed.
        assert!(!journal.begin_inbound_hop("k1", None, &wire(b"a")).unwrap());
        assert!(journal.hop_seen("k1"));
        journal.hop_committed("k1").unwrap();
        // And a retry after commit stays suppressed, without reopening.
        assert!(!journal.begin_inbound_hop("k1", None, &wire(b"a")).unwrap());
        assert_eq!(journal.stats().open_hops, 0);
        assert_eq!(journal.stats().committed_hops, 1);
        drop(journal);

        // The dedup survives a restart via replay.
        let (journal, replay) = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert!(replay.seen_hops().any(|k| k == "k1"));
        assert!(!journal.begin_inbound_hop("k1", None, &wire(b"a")).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn late_begin_does_not_reopen_committed_hop() {
        let dir = tmp_dir("reopen");
        {
            let (journal, _) = Journal::open(&dir, JournalConfig::default()).unwrap();
            // Raw hop_begin (the sender-side path) after a commit of the
            // same key: replay must still see the hop as terminal.
            journal.hop_committed("k").unwrap();
            journal.hop_begin("k", None, true, "", &wire(b"x")).unwrap();
        }
        let (_, replay) = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert!(replay.open_hops.is_empty());
        assert_eq!(replay.committed, vec!["k".to_owned()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_point_parse() {
        let point = CrashPoint::parse("hop-begin:2").unwrap();
        assert_eq!(point.kind, RecordKind::HopBegin);
        assert_eq!(point.nth, 2);
        let point = CrashPoint::parse("mail-parked").unwrap();
        assert_eq!(point.nth, 1);
        assert!(CrashPoint::parse("hop-begin:0").is_none());
        assert!(CrashPoint::parse("nope").is_none());
    }
}
