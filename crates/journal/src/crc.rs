//! Table-based CRC-32 (IEEE 802.3 polynomial, reflected).
//!
//! The journal frames every record with a CRC over its payload so that a
//! torn write — a crash mid-`write(2)` — is detected as a checksum
//! mismatch rather than replayed as garbage. The tables are computed once
//! at first use; the polynomial and bit order match the ubiquitous
//! zlib/PNG CRC-32, which makes frames checkable with standard tooling.

use std::sync::OnceLock;

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-16 tables: `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k]` advances a byte that sits `k` positions ahead of the CRC
/// register, letting the hot loop fold sixteen bytes per iteration with
/// no loop-carried dependency between the sixteen lookups. On multi-KB
/// record payloads this is the difference between the CRC and the
/// `write(2)` being visible in the append profile at all.
fn tables() -> &'static [[u32; 256]; 16] {
    static TABLES: OnceLock<[[u32; 256]; 16]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 16];
        for (i, slot) in tables[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        for k in 1..16 {
            for i in 0..256usize {
                let prev = tables[k - 1][i];
                tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            }
        }
        tables
    })
}

/// CRC-32 of `data` (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(16);
    for c in &mut chunks {
        let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
        crc = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][(a >> 24) as usize]
            ^ t[11][(b & 0xFF) as usize]
            ^ t[10][((b >> 8) & 0xFF) as usize]
            ^ t[9][((b >> 16) & 0xFF) as usize]
            ^ t[8][(b >> 24) as usize]
            ^ t[7][(d & 0xFF) as usize]
            ^ t[6][((d >> 8) & 0xFF) as usize]
            ^ t[5][((d >> 16) & 0xFF) as usize]
            ^ t[4][(d >> 24) as usize]
            ^ t[3][(e & 0xFF) as usize]
            ^ t[2][((e >> 8) & 0xFF) as usize]
            ^ t[1][((e >> 16) & 0xFF) as usize]
            ^ t[0][(e >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ t[0][idx];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn all_lengths_match_bytewise_reference() {
        fn reference(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &byte in data {
                crc ^= u32::from(byte);
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ 0xEDB8_8320
                    } else {
                        crc >> 1
                    };
                }
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..96u16).map(|i| (i as u8).wrapping_mul(37)).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
