use serde::{Deserialize, Serialize};
use tacoma_briefcase::Briefcase;
use tacoma_web::WebUrl;

/// Webbot's run configuration: the §5 constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebbotConfig {
    /// The reference page traversal starts from.
    pub start: WebUrl,
    /// Maximum search-tree depth. The paper used 4 ("Webbot became
    /// unstable with a search tree deeper than 4").
    pub max_depth: usize,
    /// Only URIs whose text starts with this prefix are checked; others
    /// are logged as rejected.
    pub prefix: String,
    /// Fixed robot CPU cost per page processed (parsing, bookkeeping).
    pub page_work_ns: u64,
    /// Robot CPU cost per body byte parsed.
    pub byte_work_ns: u64,
}

impl WebbotConfig {
    /// A scan of `host`'s whole site from its index page, depth 4 — the
    /// §5 configuration.
    pub fn scan_site(host: &str) -> Self {
        WebbotConfig {
            start: WebUrl::new(host, "/index.html"),
            max_depth: 4,
            prefix: format!("http://{host}/"),
            page_work_ns: 500_000, // 0.5 ms fixed per page
            byte_work_ns: 300,     // 0.3 µs per body byte
        }
    }

    /// Writes the config into briefcase folders (the arguments mwWebbot
    /// passes to `ag_exec`).
    pub fn write_to(&self, bc: &mut Briefcase) {
        bc.set_single("WBT:START", self.start.to_string());
        bc.set_single("WBT:DEPTH", self.max_depth as i64);
        bc.set_single("WBT:PREFIX", self.prefix.as_str());
        bc.set_single("WBT:PAGE-WORK-NS", self.page_work_ns as i64);
        bc.set_single("WBT:BYTE-WORK-NS", self.byte_work_ns as i64);
    }

    /// Reads a config back from briefcase folders.
    pub fn read_from(bc: &Briefcase) -> Option<Self> {
        Some(WebbotConfig {
            start: bc.single_str("WBT:START").ok()?.parse().ok()?,
            max_depth: bc.single_i64("WBT:DEPTH").ok()?.max(0) as usize,
            prefix: bc.single_str("WBT:PREFIX").ok()?.to_owned(),
            page_work_ns: bc.single_i64("WBT:PAGE-WORK-NS").unwrap_or(500_000).max(0) as u64,
            byte_work_ns: bc.single_i64("WBT:BYTE-WORK-NS").unwrap_or(300).max(0) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn briefcase_roundtrip() {
        let config = WebbotConfig::scan_site("www.cs.uit.no");
        let mut bc = Briefcase::new();
        config.write_to(&mut bc);
        assert_eq!(WebbotConfig::read_from(&bc), Some(config));
    }

    #[test]
    fn missing_folders_yield_none() {
        assert_eq!(WebbotConfig::read_from(&Briefcase::new()), None);
    }

    #[test]
    fn scan_site_uses_paper_constraints() {
        let config = WebbotConfig::scan_site("server");
        assert_eq!(config.max_depth, 4);
        assert_eq!(config.prefix, "http://server/");
        assert_eq!(config.start.path(), "/index.html");
    }
}
