//! Multi-hop webbot tours: one agent, many servers, one merged report.
//!
//! The Figure-5 `mwWebbot` visits a single server. A tour generalizes it:
//! the agent carries the Webbot binary along a planned itinerary, scans
//! each stop's site locally via `ag_exec`, merges the per-site reports in
//! its briefcase, and ships the combined report home. The visit order is
//! an input — the scenario crate's planner picks it to minimize virtual
//! makespan over heterogeneous links; the naive baseline visits stops in
//! request order.
//!
//! On hostile networks a stop may be down or partitioned when the agent
//! tries to hop; the tour skips it (recording the miss in
//! `TOUR:UNREACHABLE`) and presses on, so a crash scheduled by a scenario
//! costs coverage, not the whole tour.
//!
//! The §4 group-communication wrapper realizes report fan-out: a tour
//! built with replica homes is wrapped in `group:fifo:…` over the
//! replicas' `ag_cabinet` services, and on completion multicasts the
//! parked report to every one of them with a single send to the literal
//! `group` target.

use tacoma_briefcase::{folders, Briefcase};
use tacoma_core::wrappers::GROUP_TARGET;
use tacoma_core::{AgentSpec, HostHooks, Outcome};

use crate::mobile::{webbot_bundle, MW_BINARY_SIZE};
use crate::{WebbotConfig, WebbotReport};

/// Registry key of the tour-webbot binary.
pub const TOUR_KEY: &str = "tour_webbot";

/// The cabinet drawer tour reports are parked in (at home and at every
/// group replica).
pub const TOUR_DRAWER: &str = "tour-report";

/// Builds a tour agent visiting `stops` in the given order from `home`.
///
/// When `replicas` is non-empty the agent is wrapped in the §4
/// group-communication wrapper (FIFO order) over the replicas' cabinet
/// services, and the final report is multicast to all of them in
/// addition to being parked at home.
pub fn tour_spec(home: &str, stops: &[String], replicas: &[String]) -> AgentSpec {
    let mut spec = AgentSpec::bundle("tourWebbot", tour_bundle())
        .folder("TOUR:PHASE", ["outbound"])
        .folder("TOUR:HOME", [home])
        .folder("TOUR:STOPS", stops.iter().map(String::as_str))
        .folder("TOUR:IDX", ["0"])
        .folder("EXEC-BIN", [webbot_bundle().encode()]);
    if !replicas.is_empty() {
        let members: Vec<String> = replicas.iter().map(|h| format!("ag_cabinet@{h}")).collect();
        spec = spec
            .folder("TOUR:GROUP", ["1"])
            .wrap(format!("group:fifo:{}", members.join(",")));
    }
    spec
}

/// The tour driver's artifact bundle (same realistic wrapper-binary size
/// as `mwWebbot`).
pub fn tour_bundle() -> tacoma_core::ArtifactBundle {
    tacoma_core::ArtifactBundle::new().with(tacoma_core::BinaryArtifact::native(
        TOUR_KEY,
        tacoma_core::Architecture::simulated(),
        TOUR_KEY,
        MW_BINARY_SIZE,
    ))
}

fn stops_of(bc: &Briefcase) -> Vec<String> {
    bc.folder("TOUR:STOPS").map_or_else(Vec::new, |f| {
        f.iter()
            .filter_map(|e| e.as_str().ok().map(str::to_owned))
            .collect()
    })
}

fn idx_of(bc: &Briefcase) -> usize {
    bc.single_str("TOUR:IDX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Hops toward the next reachable stop at or after `idx`; falls through
/// to the report leg when the itinerary is exhausted.
fn advance(bc: &mut Briefcase, hooks: &mut dyn HostHooks, mut idx: usize) -> Outcome {
    let stops = stops_of(bc);
    while idx < stops.len() {
        let stop = &stops[idx];
        bc.set_single("TOUR:IDX", idx.to_string());
        bc.set_single("TOUR:PHASE", "scan");
        let dest = format!("tacoma://{stop}/vm_bin");
        match hooks.go(&dest, bc) {
            tacoma_core::GoDecision::Moved => return Outcome::Moved { to: dest },
            tacoma_core::GoDecision::Unreachable => {
                hooks.display(&format!("tourWebbot: skipping unreachable {stop}"));
                bc.append("TOUR:UNREACHABLE", stop.as_str());
                idx += 1;
            }
        }
    }
    head_home(bc, hooks)
}

fn head_home(bc: &mut Briefcase, hooks: &mut dyn HostHooks) -> Outcome {
    let Ok(home) = bc.single_str("TOUR:HOME").map(str::to_owned) else {
        return Outcome::Exit(2);
    };
    bc.set_single("TOUR:PHASE", "report");
    // The binary has done its job; only the merged report travels home.
    bc.remove_folder("EXEC-BIN");
    let dest = format!("tacoma://{home}/vm_bin");
    match hooks.go(&dest, bc) {
        tacoma_core::GoDecision::Moved => Outcome::Moved { to: dest },
        tacoma_core::GoDecision::Unreachable => {
            hooks.display(&format!("tourWebbot: unable to return to {dest}"));
            Outcome::Exit(5)
        }
    }
}

/// The tour program: a phase machine (TACOMA agents restart `main` at
/// every hop with their state in the briefcase).
pub(crate) fn tour_main(bc: &mut Briefcase, hooks: &mut dyn HostHooks) -> Outcome {
    let phase = bc.single_str("TOUR:PHASE").unwrap_or("outbound").to_owned();
    match phase.as_str() {
        "outbound" => {
            bc.set_single("TOUR:T0-MS", hooks.now_ms());
            advance(bc, hooks, 0)
        }
        "scan" => {
            let stops = stops_of(bc);
            let idx = idx_of(bc);
            let Some(here) = stops.get(idx) else {
                return Outcome::Exit(2);
            };

            // Scan this stop's site locally through ag_exec, §5-style.
            let mut request = Briefcase::new();
            request.set_single(folders::COMMAND, "exec");
            if let Ok(bin) = bc.element("EXEC-BIN", 0) {
                request.set_single("EXEC-BIN", bin.clone());
            }
            WebbotConfig::scan_site(here).write_to(&mut request);
            let Some(reply) = hooks.meet("ag_exec", &request) else {
                hooks.display(&format!("tourWebbot: ag_exec unavailable on {here}"));
                bc.append("TOUR:UNREACHABLE", here.as_str());
                return advance(bc, hooks, idx + 1);
            };
            let stop_report = WebbotReport::read_from(&reply);
            let mut merged = WebbotReport::read_from(bc);
            merged.merge(&stop_report);
            merged.write_to(bc);
            bc.append("TOUR:VISITED", here.as_str());

            advance(bc, hooks, idx + 1)
        }
        "report" => {
            bc.set_single("TOUR:T-HOME-MS", hooks.now_ms());
            let store = store_request(bc);
            if hooks.meet("ag_cabinet", &store).is_none() {
                hooks.display("warning: could not park tour report in ag_cabinet");
            }
            // §4 fan-out: one send to the literal group target; the
            // wrapper multicasts the store request to every replica's
            // cabinet service.
            if bc.single_str("TOUR:GROUP") == Ok("1") {
                hooks.activate(GROUP_TARGET, &store);
            }
            let report = WebbotReport::read_from(bc);
            hooks.display(&format!("tourWebbot done: {}", report.summary()));
            Outcome::Exit(0)
        }
        other => {
            hooks.display(&format!("tourWebbot: unknown phase {other:?}"));
            Outcome::Exit(9)
        }
    }
}

/// A cabinet `store` request carrying the whole tour briefcase (report,
/// visit log, timing stamps) into [`TOUR_DRAWER`].
fn store_request(bc: &Briefcase) -> Briefcase {
    let mut request = Briefcase::new();
    request.set_single(folders::COMMAND, "store");
    request.append(folders::ARGS, TOUR_DRAWER);
    request.set_single("CABINET-DATA", bc.encode());
    request
}

/// Timing and coverage parsed from a parked tour briefcase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TourStamps {
    /// Launch time, virtual ms.
    pub t0: i64,
    /// Report-home time, virtual ms.
    pub home: i64,
    /// Stops scanned.
    pub visited: Vec<String>,
    /// Stops skipped as unreachable.
    pub unreachable: Vec<String>,
}

impl TourStamps {
    /// Reads stamps from a parked tour briefcase.
    pub fn read_from(bc: &Briefcase) -> TourStamps {
        let list = |name: &str| {
            bc.folder(name).map_or_else(Vec::new, |f| {
                f.iter()
                    .filter_map(|e| e.as_str().ok().map(str::to_owned))
                    .collect()
            })
        };
        TourStamps {
            t0: bc.single_i64("TOUR:T0-MS").unwrap_or(0),
            home: bc.single_i64("TOUR:T-HOME-MS").unwrap_or(0),
            visited: list("TOUR:VISITED"),
            unreachable: list("TOUR:UNREACHABLE"),
        }
    }

    /// The tour's virtual makespan in milliseconds: launch to report.
    pub fn makespan_ms(&self) -> i64 {
        self.home - self.t0
    }
}

/// Fetches a parked tour (merged report + stamps) from `host`'s cabinet,
/// or `None` if no tour has reported there. `owner_home` is the host the
/// tour launched from — cabinet drawers are scoped by owning principal,
/// including the copies the group wrapper fans out to replicas.
pub fn fetch_tour(
    system: &mut tacoma_core::TaxSystem,
    host: &str,
    owner_home: &str,
) -> Option<(WebbotReport, TourStamps)> {
    let owner = tacoma_core::Principal::local_system(owner_home);
    let parked = crate::fleet::fetch_parked(system, host, &owner, TOUR_DRAWER)?;
    Some((
        WebbotReport::read_from(&parked),
        TourStamps::read_from(&parked),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetParams, FleetPlan};

    fn tour_system(pairs: &[(&str, &str)]) -> (tacoma_core::TaxSystem, FleetParams) {
        let plan = FleetPlan::from_pairs(
            pairs
                .iter()
                .map(|(c, s)| ((*c).to_owned(), (*s).to_owned())),
        );
        let params = FleetParams {
            plan,
            pages: 12,
            total_bytes: 120_000,
            seed: 99,
            max_depth: 3,
            link: tacoma_core::LinkSpec::lan_100mbit(),
            server_work_ns: tacoma_web::DEFAULT_SERVER_WORK_NS,
        };
        let system = crate::fleet::build_fleet(&params, 0);
        (system, params)
    }

    #[test]
    fn tour_scans_every_stop_and_reports_home() {
        let (mut system, _) = tour_system(&[("home0", "s0"), ("home0", "s1"), ("home0", "s2")]);
        let stops: Vec<String> = ["s0", "s1", "s2"].map(str::to_owned).to_vec();
        system
            .launch("home0", tour_spec("home0", &stops, &[]))
            .unwrap();
        assert!(system.run_until_quiet().quiesced());

        let (report, stamps) =
            fetch_tour(&mut system, "home0", "home0").expect("tour reported home");
        assert_eq!(stamps.visited, stops);
        assert!(stamps.unreachable.is_empty());
        assert!(stamps.makespan_ms() > 0);
        // Three distinct sites merged into one report.
        assert!(report.pages_scanned > 0);
        assert!(report.links_checked > 0);
    }

    #[test]
    fn group_wrapper_fans_report_to_replicas() {
        let (mut system, _) = tour_system(&[("home0", "s0"), ("home1", "s0"), ("home2", "s0")]);
        let stops = vec!["s0".to_owned()];
        let replicas: Vec<String> = ["home1", "home2"].map(str::to_owned).to_vec();
        system
            .launch("home0", tour_spec("home0", &stops, &replicas))
            .unwrap();
        assert!(system.run_until_quiet().quiesced());

        let (home_report, _) =
            fetch_tour(&mut system, "home0", "home0").expect("tour reported home");
        for replica in ["home1", "home2"] {
            let (replica_report, stamps) = fetch_tour(&mut system, replica, "home0")
                .unwrap_or_else(|| panic!("{replica} got copy"));
            assert_eq!(replica_report.pages_scanned, home_report.pages_scanned);
            assert_eq!(stamps.visited, stops);
        }
    }

    #[test]
    fn unreachable_stop_is_skipped_not_fatal() {
        let (mut system, _) = tour_system(&[("home0", "s0"), ("home0", "s1")]);
        let dead = tacoma_core::HostId::new("s1").unwrap();
        system.network().crash_host(&dead);
        let stops: Vec<String> = ["s0", "s1"].map(str::to_owned).to_vec();
        system
            .launch("home0", tour_spec("home0", &stops, &[]))
            .unwrap();
        assert!(system.run_until_quiet().quiesced());

        let (_, stamps) = fetch_tour(&mut system, "home0", "home0").expect("tour reported home");
        assert_eq!(stamps.visited, vec!["s0".to_owned()]);
        assert_eq!(stamps.unreachable, vec!["s1".to_owned()]);
        // The miss is accounted as unreachable, not random loss.
        assert!(system.network().stats().total_unreachable() > 0);
    }

    #[test]
    fn spec_carries_itinerary_and_group_wrapper() {
        let stops = vec!["s1".to_owned(), "s2".to_owned()];
        let replicas = vec!["home0".to_owned(), "home1".to_owned()];
        let spec = tour_spec("home0", &stops, &replicas);
        let mut system = tacoma_core::SystemBuilder::new()
            .host("probe")
            .unwrap()
            .build();
        let host = system.host("probe").unwrap();
        crate::mobile::install_programs(&host);
        system.launch("probe", spec).unwrap();
        let bc = host.peek_task_briefcase().expect("briefcase queued");
        assert_eq!(bc.single_str("TOUR:PHASE").unwrap(), "outbound");
        assert_eq!(stops_of(&bc), stops);
        assert_eq!(bc.single_str("TOUR:GROUP").unwrap(), "1");
        let wrappers = bc.folder("WRAPPERS").unwrap();
        assert_eq!(wrappers.len(), 1);
        assert_eq!(
            wrappers.get(0).unwrap().as_str().unwrap(),
            "group:fifo:ag_cabinet@home0,ag_cabinet@home1"
        );
    }

    #[test]
    fn spec_without_replicas_has_no_wrapper() {
        let spec = tour_spec("home", &["s".to_owned()], &[]);
        let mut system = tacoma_core::SystemBuilder::new()
            .host("probe")
            .unwrap()
            .build();
        let host = system.host("probe").unwrap();
        crate::mobile::install_programs(&host);
        system.launch("probe", spec).unwrap();
        let bc = host.peek_task_briefcase().expect("briefcase queued");
        assert!(bc.folder("WRAPPERS").is_none());
        assert!(bc.single_str("TOUR:GROUP").is_err());
    }

    #[test]
    fn stamps_read_back() {
        let mut bc = Briefcase::new();
        bc.set_single("TOUR:T0-MS", 100i64);
        bc.set_single("TOUR:T-HOME-MS", 450i64);
        bc.append("TOUR:VISITED", "s1");
        bc.append("TOUR:VISITED", "s2");
        bc.append("TOUR:UNREACHABLE", "s3");
        let stamps = TourStamps::read_from(&bc);
        assert_eq!(stamps.makespan_ms(), 350);
        assert_eq!(stamps.visited, vec!["s1".to_owned(), "s2".to_owned()]);
        assert_eq!(stamps.unreachable, vec!["s3".to_owned()]);
    }
}
