//! The stationary robot: a faithful reimplementation of the W3C Webbot's
//! link-validation behaviour (§5).

use std::collections::HashSet;

use tacoma_core::HostHooks;
use tacoma_web::{ContentType, WebClient, WebUrl};

use crate::{LinkIssue, RejectReason, Rejected, WebbotConfig, WebbotReport};

/// The robot. Stateless between runs; everything it learns goes into the
/// [`WebbotReport`].
#[derive(Debug, Default)]
pub struct Webbot;

impl Webbot {
    /// A new robot.
    pub fn new() -> Self {
        Webbot
    }

    /// Runs one scan. The robot reaches the web only through the hooks'
    /// `meet` (via [`WebClient`]), so the caller decides whether that is a
    /// loopback or a network path — mobility without modifying the robot.
    pub fn run(&self, config: &WebbotConfig, hooks: &mut dyn HostHooks) -> WebbotReport {
        let mut report = WebbotReport::default();
        // Best depth a URL has been reached at. Depth-first traversal can
        // first find a page on a long path; if it is later rediscovered
        // on a shorter one, it is re-expanded (from the local page cache,
        // never refetched) so the depth limit prunes the same set of
        // pages the shortest paths define.
        let mut best_depth: std::collections::HashMap<WebUrl, usize> = Default::default();
        // Fetched pages: `(is_html, links)`; `None` marks a fetch failure
        // that must not be retried.
        let mut cache: std::collections::HashMap<WebUrl, Option<(bool, Vec<String>)>> =
            Default::default();
        let mut rejected_seen: HashSet<(String, RejectReason)> = HashSet::new();
        // Depth-first, like the original ("following links in depth first
        // manner, subjected to certain constraints").
        let mut stack: Vec<(WebUrl, usize, String)> = Vec::new();

        if !config.start.matches_prefix(&config.prefix) {
            report.rejected.push(Rejected {
                referrer: "-".to_owned(),
                url: config.start.to_string(),
                reason: RejectReason::Prefix,
            });
            return report;
        }
        stack.push((config.start.clone(), 0, "-".to_owned()));

        while let Some((url, depth, referrer)) = stack.pop() {
            match best_depth.get(&url) {
                Some(&d) if d <= depth => continue,
                _ => {}
            }
            best_depth.insert(url.clone(), depth);

            if !cache.contains_key(&url) {
                report.links_checked += 1;
                let mut client = WebClient::new(hooks);
                let fetched = match client.get(&url) {
                    None => {
                        report.invalid.push(LinkIssue {
                            referrer: referrer.clone(),
                            url: url.to_string(),
                            status: 0,
                        });
                        None
                    }
                    Some(page) if page.status == 301 => {
                        report.redirects += 1;
                        // Follow the Location header as a link found at
                        // this page (prefix/depth constraints reapply).
                        match page.location.as_deref().and_then(|l| url.join(l).ok()) {
                            Some(target) => Some((true, vec![target.to_string()])),
                            None => {
                                report.invalid.push(LinkIssue {
                                    referrer: referrer.clone(),
                                    url: url.to_string(),
                                    status: 301,
                                });
                                None
                            }
                        }
                    }
                    Some(page) if !page.is_ok() => {
                        report.invalid.push(LinkIssue {
                            referrer: referrer.clone(),
                            url: url.to_string(),
                            status: page.status,
                        });
                        None
                    }
                    Some(page) => {
                        report.pages_scanned += 1;
                        report.bytes_fetched += page.size;
                        report.age_days_total += page.age_days as u64;
                        // Robot-side processing cost: parse and bookkeep.
                        hooks.work_ns(config.page_work_ns + page.size * config.byte_work_ns);
                        if page.content_type != ContentType::Html {
                            report.non_html += 1;
                            Some((false, Vec::new()))
                        } else {
                            Some((true, page.links))
                        }
                    }
                };
                cache.insert(url.clone(), fetched);
            }

            let Some(Some((is_html, links))) = cache.get(&url) else {
                continue;
            };
            if !is_html {
                continue;
            }
            let links = links.clone();

            let here = url.to_string();
            for target in links.iter().rev() {
                let Ok(resolved) = url.join(target) else {
                    report.invalid.push(LinkIssue {
                        referrer: here.clone(),
                        url: target.clone(),
                        status: 0,
                    });
                    continue;
                };
                if !resolved.matches_prefix(&config.prefix) {
                    if rejected_seen.insert((resolved.to_string(), RejectReason::Prefix)) {
                        report.rejected.push(Rejected {
                            referrer: here.clone(),
                            url: resolved.to_string(),
                            reason: RejectReason::Prefix,
                        });
                    }
                    continue;
                }
                if depth + 1 > config.max_depth {
                    if rejected_seen.insert((resolved.to_string(), RejectReason::Depth)) {
                        report.rejected.push(Rejected {
                            referrer: here.clone(),
                            url: resolved.to_string(),
                            reason: RejectReason::Depth,
                        });
                    }
                    continue;
                }
                match best_depth.get(&resolved) {
                    Some(&d) if d <= depth + 1 => {}
                    _ => stack.push((resolved, depth + 1, here.clone())),
                }
            }
        }
        report
    }

    /// The §5 second step: validate a list of URIs (typically the
    /// prefix-rejected external links) with cheap `head` checks, returning
    /// the invalid ones.
    pub fn check_uris<'a, I>(
        &self,
        uris: I,
        hooks: &mut dyn HostHooks,
        per_check_work_ns: u64,
    ) -> Vec<LinkIssue>
    where
        I: IntoIterator<Item = &'a Rejected>,
    {
        let mut invalid = Vec::new();
        let mut checked: HashSet<String> = HashSet::new();
        for rejected in uris {
            if !checked.insert(rejected.url.clone()) {
                continue;
            }
            hooks.work_ns(per_check_work_ns);
            let Ok(url) = rejected.url.parse::<WebUrl>() else {
                invalid.push(LinkIssue {
                    referrer: rejected.referrer.clone(),
                    url: rejected.url.clone(),
                    status: 0,
                });
                continue;
            };
            let mut client = WebClient::new(hooks);
            match client.head(&url) {
                Some(outcome) if outcome.is_ok() => {}
                Some(outcome) => invalid.push(LinkIssue {
                    referrer: rejected.referrer.clone(),
                    url: rejected.url.clone(),
                    status: outcome.status,
                }),
                None => invalid.push(LinkIssue {
                    referrer: rejected.referrer.clone(),
                    url: rejected.url.clone(),
                    status: 0,
                }),
            }
        }
        invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_briefcase::{folders, Briefcase};
    use tacoma_core::{GoDecision, NullHooks};
    use tacoma_web::{Document, Site};

    /// Hooks that answer `meet` by serving a set of in-memory sites —
    /// letting robot logic be tested without a kernel.
    struct FakeWeb {
        sites: Vec<Site>,
        requests: u64,
        work: u64,
    }

    impl FakeWeb {
        fn new(sites: Vec<Site>) -> Self {
            FakeWeb {
                sites,
                requests: 0,
                work: 0,
            }
        }
    }

    impl tacoma_core::HostHooks for FakeWeb {
        fn display(&mut self, _: &str) {}
        fn go(&mut self, _: &str, _: &Briefcase) -> GoDecision {
            GoDecision::Unreachable
        }
        fn spawn(&mut self, _: &str, _: &Briefcase) -> Option<String> {
            None
        }
        fn activate(&mut self, _: &str, _: &Briefcase) -> bool {
            false
        }
        fn meet(&mut self, uri: &str, bc: &Briefcase) -> Option<Briefcase> {
            self.requests += 1;
            // uri is tacoma://<host>/ag_http
            let host = uri.strip_prefix("tacoma://")?.split('/').next()?;
            let site = self.sites.iter().find(|s| s.host() == host)?;
            let verb = bc.single_str(folders::COMMAND).ok()?;
            let path = bc.element(folders::ARGS, 0).ok()?.as_str().ok()?;
            let mut reply = Briefcase::new();
            reply.set_single(folders::STATUS, "ok");
            match site.get(path) {
                Some(doc) if doc.redirect_to.is_some() => {
                    reply.set_single("HTTP-STATUS", 301i64);
                    reply.set_single("LOCATION", doc.redirect_to.clone().unwrap());
                    reply.set_single("SIZE", 0i64);
                }
                Some(doc) => {
                    reply.set_single("HTTP-STATUS", 200i64);
                    reply.set_single("CONTENT-TYPE", doc.content_type.as_str());
                    reply.set_single("SIZE", doc.size as i64);
                    reply.set_single("AGE-DAYS", doc.age_days as i64);
                    if verb == "get" && doc.is_html() {
                        for link in &doc.links {
                            reply.append("LINKS", link.as_str());
                        }
                    }
                }
                None => {
                    reply.set_single("HTTP-STATUS", 404i64);
                    reply.set_single("SIZE", 0i64);
                }
            }
            Some(reply)
        }
        fn await_bc(&mut self, _: i64) -> Option<Briefcase> {
            None
        }
        fn now_ms(&mut self) -> i64 {
            0
        }
        fn host_name(&mut self) -> String {
            "tester".into()
        }
        fn work_ns(&mut self, nanos: u64) {
            self.work += nanos;
        }
    }

    fn dept_site() -> Site {
        let mut s = Site::empty("cs");
        s.add(
            Document::html("/index.html", 1000)
                .link("/a.html")
                .link("/missing.html")
                .link("http://outside/x.html")
                .link("/pic.gif"),
        );
        s.add(
            Document::html("/a.html", 500)
                .link("/b.html")
                .link("/index.html"),
        );
        s.add(Document::html("/b.html", 400).link("/c.html"));
        s.add(Document::html("/c.html", 300).link("/d.html"));
        s.add(Document::html("/d.html", 200));
        s.add(Document::asset("/pic.gif", 2000, ContentType::Image));
        s
    }

    #[test]
    fn finds_dead_links_and_counts_pages() {
        let mut web = FakeWeb::new(vec![dept_site()]);
        let config = WebbotConfig::scan_site("cs");
        let report = Webbot::new().run(&config, &mut web);

        assert_eq!(report.pages_scanned, 6, "5 html + 1 gif");
        assert_eq!(report.non_html, 1);
        assert_eq!(report.invalid.len(), 1);
        assert_eq!(report.invalid[0].url, "http://cs/missing.html");
        assert_eq!(report.invalid[0].status, 404);
        assert_eq!(report.bytes_fetched, 1000 + 500 + 400 + 300 + 200 + 2000);
    }

    #[test]
    fn external_links_are_rejected_not_followed() {
        let mut web = FakeWeb::new(vec![dept_site()]);
        let config = WebbotConfig::scan_site("cs");
        let report = Webbot::new().run(&config, &mut web);
        let prefix_rejected: Vec<_> = report.prefix_rejected().collect();
        assert_eq!(prefix_rejected.len(), 1);
        assert_eq!(prefix_rejected[0].url, "http://outside/x.html");
    }

    #[test]
    fn depth_limit_rejects_deep_links() {
        let mut web = FakeWeb::new(vec![dept_site()]);
        let mut config = WebbotConfig::scan_site("cs");
        config.max_depth = 3;
        // index(0) -> a(1) -> b(2) -> c(3) -> d would be 4: rejected.
        let report = Webbot::new().run(&config, &mut web);
        assert!(report
            .rejected
            .iter()
            .any(|r| r.reason == RejectReason::Depth && r.url == "http://cs/d.html"));
        assert_eq!(report.pages_scanned, 5, "d.html not scanned");
    }

    #[test]
    fn visited_pages_are_not_refetched() {
        let mut web = FakeWeb::new(vec![dept_site()]);
        let config = WebbotConfig::scan_site("cs");
        let report = Webbot::new().run(&config, &mut web);
        // 6 ok documents + 1 404 = 7 fetches despite the back-link to
        // index.
        assert_eq!(web.requests, 7);
        assert_eq!(report.links_checked, 7);
    }

    #[test]
    fn robot_charges_cpu_work() {
        let mut web = FakeWeb::new(vec![dept_site()]);
        let config = WebbotConfig::scan_site("cs");
        Webbot::new().run(&config, &mut web);
        let expected_min = 6 * config.page_work_ns;
        assert!(
            web.work >= expected_min,
            "work {} < {expected_min}",
            web.work
        );
    }

    #[test]
    fn unreachable_server_is_invalid_status_zero() {
        let mut web = FakeWeb::new(vec![]);
        let config = WebbotConfig::scan_site("nowhere");
        let report = Webbot::new().run(&config, &mut web);
        assert_eq!(report.invalid.len(), 1);
        assert_eq!(report.invalid[0].status, 0);
        assert_eq!(report.pages_scanned, 0);
    }

    #[test]
    fn out_of_prefix_start_is_rejected_immediately() {
        let mut web = FakeWeb::new(vec![dept_site()]);
        let mut config = WebbotConfig::scan_site("cs");
        config.start = "http://other/index.html".parse().unwrap();
        let report = Webbot::new().run(&config, &mut web);
        assert_eq!(report.pages_scanned, 0);
        assert_eq!(report.rejected.len(), 1);
    }

    #[test]
    fn redirects_are_followed_and_counted() {
        let mut site = dept_site();
        site.add(Document::moved("/old-entry.html", "/hidden.html"));
        site.add(Document::html("/hidden.html", 123));
        // Link the moved stub from the index.
        let mut index = site.get("/index.html").unwrap().clone();
        index.links.push("/old-entry.html".to_owned());
        site.add(index);

        let mut web = FakeWeb::new(vec![site]);
        let config = WebbotConfig::scan_site("cs");
        let report = Webbot::new().run(&config, &mut web);
        assert_eq!(report.redirects, 1);
        // The redirect target was scanned like a normal page.
        assert_eq!(report.pages_scanned, 7, "6 original docs + hidden.html");
        assert!(report.bytes_fetched >= 123);
    }

    #[test]
    fn redirect_chains_terminate_on_cycles() {
        let mut site = Site::empty("cs");
        site.add(Document::html("/index.html", 10).link("/a.html"));
        site.add(Document::moved("/a.html", "/b.html"));
        site.add(Document::moved("/b.html", "/a.html"));
        let mut web = FakeWeb::new(vec![site]);
        let config = WebbotConfig::scan_site("cs");
        let report = Webbot::new().run(&config, &mut web);
        // The visited set breaks the cycle: each stub fetched once.
        assert_eq!(report.redirects, 2);
        assert_eq!(report.pages_scanned, 1);
    }

    #[test]
    fn second_step_checks_externals() {
        let mut ext = Site::empty("outside");
        ext.add(Document::html("/x.html", 10));
        let mut web = FakeWeb::new(vec![dept_site(), ext]);

        let config = WebbotConfig::scan_site("cs");
        let report = Webbot::new().run(&config, &mut web);
        let rejected: Vec<Rejected> = report.prefix_rejected().cloned().collect();
        let invalid = Webbot::new().check_uris(rejected.iter(), &mut web, 100_000);
        assert!(invalid.is_empty(), "x.html exists on outside: {invalid:?}");

        // Now against a world where the external host lacks the page.
        let mut web2 = FakeWeb::new(vec![dept_site(), Site::empty("outside")]);
        let invalid = Webbot::new().check_uris(rejected.iter(), &mut web2, 100_000);
        assert_eq!(invalid.len(), 1);
        assert_eq!(invalid[0].status, 404);
    }

    #[test]
    fn second_step_dedupes_urls() {
        let rejected = [
            Rejected {
                referrer: "a".into(),
                url: "http://outside/x.html".into(),
                reason: RejectReason::Prefix,
            },
            Rejected {
                referrer: "b".into(),
                url: "http://outside/x.html".into(),
                reason: RejectReason::Prefix,
            },
        ];
        let mut web = FakeWeb::new(vec![]);
        let invalid = Webbot::new().check_uris(rejected.iter(), &mut web, 0);
        assert_eq!(invalid.len(), 1, "same URL checked once");
        assert_eq!(web.requests, 1);
    }

    #[test]
    fn null_hooks_scan_reports_everything_unreachable() {
        let mut hooks = NullHooks::default();
        let config = WebbotConfig::scan_site("cs");
        let report = Webbot::new().run(&config, &mut hooks);
        assert_eq!(report.invalid.len(), 1);
        assert_eq!(report.pages_scanned, 0);
    }
}
