//! The §5 measurement, packaged: build the department deployment, run the
//! same scan stationary and mobile, and compare virtual elapsed time and
//! network bytes.
//!
//! "In a test, the Webbot scanned 917 html pages containing 3 MBytes on
//! our web-server. […] We found that executing a Webbot scan for invalid
//! links on our CS department server locally is 16 % faster than doing it
//! over a 100MBit network."

use std::sync::Arc;
use std::time::Duration;

use tacoma_briefcase::{folders, Briefcase};
use tacoma_core::{LinkSpec, Principal, SystemBuilder, TaxSystem};
use tacoma_web::{Site, SiteSpec, WebServer, DEFAULT_SERVER_WORK_NS};

use crate::mobile::{self, RunStamps, REPORT_DRAWER};
use crate::{WebbotConfig, WebbotReport};

/// Host names used by the case study.
pub const CLIENT: &str = "client";
/// The web server host.
pub const SERVER: &str = "server";

/// Parameters of one case-study run.
#[derive(Debug, Clone)]
pub struct CaseStudyParams {
    /// HTML pages on the server (paper: 917).
    pub pages: usize,
    /// Total site bytes (paper: 3 MB).
    pub total_bytes: u64,
    /// Site/topology seed.
    pub seed: u64,
    /// Link between client and server (paper: 100 Mbit LAN).
    pub link: LinkSpec,
    /// Number of external hosts the site links out to.
    pub external_hosts: usize,
    /// Whether the run performs the §5 second step (external checks).
    pub check_externals: bool,
    /// Server CPU per request.
    pub server_work_ns: u64,
    /// Webbot depth limit (paper: 4).
    pub max_depth: usize,
}

impl Default for CaseStudyParams {
    fn default() -> Self {
        CaseStudyParams {
            pages: 917,
            total_bytes: 3_000_000,
            seed: 1900,
            link: LinkSpec::lan_100mbit(),
            external_hosts: 2,
            check_externals: false,
            server_work_ns: DEFAULT_SERVER_WORK_NS,
            max_depth: 4,
        }
    }
}

impl CaseStudyParams {
    /// The exact §5 configuration.
    pub fn paper() -> Self {
        CaseStudyParams::default()
    }

    /// Scales the data volume (the WAN-conjecture sweep).
    pub fn with_volume(mut self, total_bytes: u64) -> Self {
        self.total_bytes = total_bytes;
        self
    }

    /// Changes the client–server link.
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Enables the §5 second step.
    pub fn with_external_checks(mut self) -> Self {
        self.check_externals = true;
        self
    }

    fn external_host_names(&self) -> Vec<String> {
        (0..self.external_hosts)
            .map(|i| format!("ext{i}"))
            .collect()
    }
}

/// What one run produced.
#[derive(Debug, Clone)]
pub struct CaseStudyOutcome {
    /// The combined report that came home.
    pub report: WebbotReport,
    /// Scan-phase virtual time — the paper's measured quantity.
    pub scan_time: Duration,
    /// Whole-journey virtual time (travel + scan + external checks +
    /// report).
    pub total_time: Duration,
    /// Bytes that crossed the client–server link (both directions).
    pub link_bytes: u64,
    /// Bytes that crossed any network link.
    pub network_bytes: u64,
}

/// Builds the deployment: client, server (with the generated site), and
/// external hosts (each serving a small site so external links can be
/// validated). Returns the system; hosts are [`CLIENT`], [`SERVER`],
/// `ext0..`.
pub fn build_system(params: &CaseStudyParams) -> TaxSystem {
    let externals = params.external_host_names();
    let mut builder = SystemBuilder::new()
        .default_link(params.link)
        .seed(params.seed)
        .trust_all()
        .host(CLIENT)
        .expect("valid host name")
        .host(SERVER)
        .expect("valid host name");
    for ext in &externals {
        builder = builder.host(ext).expect("valid host name");
    }
    let system = builder.build();

    // The department site.
    let spec = SiteSpec {
        host: SERVER.to_owned(),
        pages: params.pages,
        total_bytes: params.total_bytes,
        seed: params.seed,
        max_depth: params.max_depth,
        ..SiteSpec::paper_site(SERVER)
    }
    .with_external_hosts(externals.clone());
    let site = Site::generate(&spec);
    let server = system.host(SERVER).expect("server host");
    server.add_service(Arc::new(
        WebServer::new(site).with_work_ns(params.server_work_ns),
    ));

    // Each external host serves a one-page site: `/index.html` exists,
    // everything else 404s — exactly what the generator's external links
    // need to be partly valid, partly dead.
    for ext in &externals {
        let mut ext_site = Site::empty(ext.clone());
        ext_site.add(tacoma_web::Document::html("/index.html", 2_048));
        let host = system.host(ext).expect("external host");
        host.add_service(Arc::new(
            WebServer::new(ext_site).with_work_ns(params.server_work_ns),
        ));
    }

    // The Webbot binary (and drivers) are installable everywhere.
    for name in system.host_names() {
        mobile::install_programs(&system.host(&name).expect("listed host"));
    }
    system
}

/// Runs the stationary baseline: the robot executes at [`CLIENT`],
/// pulling every page across the link.
pub fn run_stationary(params: &CaseStudyParams) -> CaseStudyOutcome {
    let mut system = build_system(params);
    let config = webbot_config(params);
    let spec = mobile::stationary_spec(&config, params.check_externals);
    system
        .launch(CLIENT, spec)
        .expect("launch stationary webbot");
    system.run_until_quiet();
    collect(&mut system, CLIENT)
}

/// Runs the mobile version: `rwWebbot(mwWebbot(Webbot))` travels to
/// [`SERVER`], scans over loopback, and ships the report home.
pub fn run_mobile(params: &CaseStudyParams) -> CaseStudyOutcome {
    let mut system = build_system(params);
    let config = webbot_config(params);
    let monitor = format!("tacoma://{CLIENT}/ag_log");
    let spec = mobile::mw_webbot_spec(
        SERVER,
        CLIENT,
        &config,
        params.check_externals,
        Some(&monitor),
    );
    system.launch(CLIENT, spec).expect("launch mwWebbot");
    system.run_until_quiet();
    collect(&mut system, CLIENT)
}

fn webbot_config(params: &CaseStudyParams) -> WebbotConfig {
    let mut config = WebbotConfig::scan_site(SERVER);
    config.max_depth = params.max_depth;
    config
}

/// Fetches the parked report from `home`'s cabinet and assembles the
/// outcome.
fn collect(system: &mut TaxSystem, home: &str) -> CaseStudyOutcome {
    let principal = Principal::local_system(home);
    let mut request = Briefcase::new();
    request.set_single(folders::COMMAND, "fetch");
    request.append(folders::ARGS, REPORT_DRAWER);
    let reply = system
        .call_service(home, "ag_cabinet", &principal, request)
        .expect("cabinet reachable");
    let data = reply
        .element("CABINET-DATA", 0)
        .unwrap_or_else(|_| panic!("no parked report; agent never came home? reply: {reply:?}"));
    let parked = Briefcase::decode(data.data()).expect("parked briefcase decodes");

    let report = WebbotReport::read_from(&parked);
    let stamps = RunStamps::read_from(&parked);
    debug_assert!(stamps.is_monotone(), "stamps out of order: {stamps:?}");

    let stats = system.network().stats();
    let client: tacoma_core::HostId = CLIENT.parse().expect("client id");
    let server: tacoma_core::HostId = SERVER.parse().expect("server id");
    let link_bytes = stats.pair(&client, &server).bytes + stats.pair(&server, &client).bytes;

    CaseStudyOutcome {
        report,
        scan_time: Duration::from_millis(stamps.scan_ms().max(0) as u64),
        total_time: Duration::from_millis(stamps.total_ms().max(0) as u64),
        link_bytes,
        network_bytes: stats.network_bytes(),
    }
}

/// Speedup of `local` over `remote` as the paper states it: how much
/// faster the local scan is, as a fraction of the remote time.
pub fn speedup(remote: Duration, local: Duration) -> f64 {
    if remote.is_zero() {
        return 0.0;
    }
    (remote.as_secs_f64() - local.as_secs_f64()) / remote.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A site comfortably larger than the travelling agent (~0.6 MB of
    /// binaries), so the §5 trade-off points the paper's way; the
    /// crossover below it is exercised by the E2/E8 benches.
    fn small_params() -> CaseStudyParams {
        CaseStudyParams {
            pages: 60,
            total_bytes: 2_000_000,
            seed: 11,
            ..CaseStudyParams::default()
        }
    }

    #[test]
    fn stationary_scan_pulls_site_over_the_link() {
        let out = run_stationary(&small_params());
        assert_eq!(
            out.report.pages_scanned as usize,
            60 + out.report.non_html as usize
        );
        assert!(
            !out.report.invalid.is_empty(),
            "generated site has dead links"
        );
        // Pages crossed the network.
        assert!(
            out.link_bytes >= 2_000_000,
            "link bytes {} < site bytes",
            out.link_bytes
        );
        assert!(out.scan_time > Duration::ZERO);
    }

    #[test]
    fn mobile_scan_keeps_pages_off_the_link() {
        let params = small_params();
        let stationary = run_stationary(&params);
        let mobile = run_mobile(&params);

        // Same findings either way: the robot is the same binary.
        assert_eq!(stationary.report.pages_scanned, mobile.report.pages_scanned);
        assert_eq!(stationary.report.invalid, mobile.report.invalid);
        assert_eq!(stationary.report.bytes_fetched, mobile.report.bytes_fetched);

        // The mobile run moves the agent + binary + report (~0.5 MB), not
        // the site; the stationary run moves the site + requests.
        assert!(
            mobile.link_bytes < stationary.link_bytes,
            "mobile {} !< stationary {}",
            mobile.link_bytes,
            stationary.link_bytes
        );

        // And the local scan phase is faster.
        assert!(
            mobile.scan_time < stationary.scan_time,
            "mobile {:?} !< stationary {:?}",
            mobile.scan_time,
            stationary.scan_time
        );
    }

    #[test]
    fn external_checks_add_findings() {
        let params = small_params().with_external_checks();
        let out = run_mobile(&params);
        // Dead external links (missing paths on ext hosts) are reported
        // with their referrers.
        let external_invalid: Vec<_> = out
            .report
            .invalid
            .iter()
            .filter(|i| i.url.contains("/missing/"))
            .collect();
        assert!(
            !external_invalid.is_empty(),
            "expected dead externals: {:?}",
            out.report.summary()
        );
    }

    #[test]
    fn speedup_definition() {
        assert!((speedup(Duration::from_secs(100), Duration::from_secs(84)) - 0.16).abs() < 1e-9);
        assert_eq!(speedup(Duration::ZERO, Duration::ZERO), 0.0);
    }
}
