//! A fleet of §5 case studies side by side: `K` disjoint client/server
//! pairs, each running its own mobilized Webbot scan — the workload the
//! parallel tick scheduler exists for.
//!
//! Under the classic sequential scheduler every pair's scan serializes on
//! the one global clock, so the fleet's virtual makespan is the *sum* of
//! the scans. Under the tick scheduler each pair's work runs in its own
//! batch with a forked clock, the barrier advances the global clock to the
//! slowest batch, and the makespan collapses towards the *longest single
//! scan* — the speedup [`run_fleet`] measures.

use std::sync::Arc;
use std::time::Duration;

use tacoma_briefcase::{folders, Briefcase};
use tacoma_core::{HostEvent, LinkSpec, Principal, SystemBuilder, TaxSystem};
use tacoma_web::{Site, SiteSpec, WebServer, DEFAULT_SERVER_WORK_NS};

use crate::mobile::{self, REPORT_DRAWER};
use crate::{WebbotConfig, WebbotReport};

/// One client/server pair of a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetPair {
    /// The home host the webbot launches from and reports back to.
    pub client: String,
    /// The host serving the site to scan.
    pub server: String,
}

/// The host sets a fleet run deploys over. Historically the harness
/// hard-coded `client{i}`/`server{i}` names; scenario-driven experiments
/// (exp_e11) hand it arbitrary generated host sets instead, so exp_e9 and
/// exp_e11 share this one harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetPlan {
    pairs: Vec<FleetPair>,
}

impl FleetPlan {
    /// The classic synthetic plan: `k` disjoint `client{i}`/`server{i}`
    /// pairs.
    pub fn numbered(k: usize) -> Self {
        FleetPlan {
            pairs: (0..k)
                .map(|i| FleetPair {
                    client: client_name(i),
                    server: server_name(i),
                })
                .collect(),
        }
    }

    /// A plan over explicit `(client, server)` host names — e.g. hosts
    /// drawn from a generated scenario topology.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (String, String)>,
    {
        FleetPlan {
            pairs: pairs
                .into_iter()
                .map(|(client, server)| FleetPair { client, server })
                .collect(),
        }
    }

    /// The pairs, in deployment order.
    pub fn pairs(&self) -> &[FleetPair] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the plan has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Every host in the plan exactly once, in first-mention order.
    pub fn hosts(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut hosts = Vec::new();
        for pair in &self.pairs {
            for h in [&pair.client, &pair.server] {
                if seen.insert(h.clone()) {
                    hosts.push(h.clone());
                }
            }
        }
        hosts
    }
}

/// Parameters of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// The client/server host sets to deploy.
    pub plan: FleetPlan,
    /// HTML pages on each server.
    pub pages: usize,
    /// Total site bytes on each server.
    pub total_bytes: u64,
    /// Site/topology seed.
    pub seed: u64,
    /// Link between every host pair.
    pub link: LinkSpec,
    /// Server CPU per request.
    pub server_work_ns: u64,
    /// Webbot depth limit.
    pub max_depth: usize,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            plan: FleetPlan::numbered(4),
            pages: 40,
            total_bytes: 400_000,
            seed: 1900,
            link: LinkSpec::lan_100mbit(),
            server_work_ns: DEFAULT_SERVER_WORK_NS,
            max_depth: 4,
        }
    }
}

/// What a fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Global virtual time at quiescence — the fleet's makespan.
    pub virtual_makespan: Duration,
    /// Each pair's combined report, indexed by pair.
    pub reports: Vec<WebbotReport>,
    /// Scheduler steps executed.
    pub steps: usize,
    /// The full event trace, for determinism comparisons.
    pub trace: Vec<(String, HostEvent)>,
}

/// The `i`-th pair's client host name.
pub fn client_name(i: usize) -> String {
    format!("client{i}")
}

/// The `i`-th pair's server host name.
pub fn server_name(i: usize) -> String {
    format!("server{i}")
}

/// Builds the fleet deployment: `pairs` clients, `pairs` servers (each
/// with its own generated site), Webbot programs installed everywhere.
/// `threads` selects the scheduler exactly as
/// [`SystemBuilder::threads`] does (`0` = sequential).
pub fn build_fleet(params: &FleetParams, threads: usize) -> TaxSystem {
    let mut builder = SystemBuilder::new()
        .default_link(params.link)
        .seed(params.seed)
        .threads(threads)
        .trust_all();
    for host in params.plan.hosts() {
        builder = builder.host(&host).expect("valid host name");
    }
    let system = builder.build();
    install_fleet_sites(&system, params);
    for name in system.host_names() {
        mobile::install_programs(&system.host(&name).expect("listed host"));
    }
    system
}

/// Installs each plan server's generated site (and the webbot programs'
/// prerequisite, the web server service) on an already-built system. Used
/// by [`build_fleet`] and by the scenario harness, which builds its system
/// from a generated topology instead.
///
/// # Panics
///
/// Panics if a plan server is not a host of `system`.
pub fn install_fleet_sites(system: &TaxSystem, params: &FleetParams) {
    let mut installed = std::collections::BTreeSet::new();
    for (i, pair) in params.plan.pairs().iter().enumerate() {
        if !installed.insert(pair.server.clone()) {
            continue;
        }
        let spec = SiteSpec {
            host: pair.server.clone(),
            pages: params.pages,
            total_bytes: params.total_bytes,
            // Distinct sites per pair, deterministically.
            seed: params.seed.wrapping_add(i as u64),
            max_depth: params.max_depth,
            ..SiteSpec::paper_site(&pair.server)
        };
        let site = Site::generate(&spec);
        let host = system.host(&pair.server).expect("server host");
        host.add_service(Arc::new(
            WebServer::new(site).with_work_ns(params.server_work_ns),
        ));
    }
}

/// Launches one mobile Webbot per pair, runs the system to quiescence,
/// and collects every pair's report.
///
/// # Panics
///
/// Panics if any launch fails or a pair's report never comes home —
/// both indicate a broken deployment, not a measurable outcome.
pub fn run_fleet(params: &FleetParams, threads: usize) -> FleetOutcome {
    let mut system = build_fleet(params, threads);
    for pair in params.plan.pairs() {
        let mut config = WebbotConfig::scan_site(&pair.server);
        config.max_depth = params.max_depth;
        let spec = mobile::mw_webbot_spec(&pair.server, &pair.client, &config, false, None);
        system
            .launch(&pair.client, spec)
            .expect("launch fleet webbot");
    }
    let outcome = system.run_until_quiet();
    assert!(outcome.quiesced(), "fleet did not quiesce");

    let reports = params
        .plan
        .pairs()
        .iter()
        .map(|pair| fetch_report(&mut system, &pair.client))
        .collect();
    FleetOutcome {
        virtual_makespan: system.clock().now().since_epoch(),
        reports,
        steps: outcome.steps(),
        trace: system.events(),
    }
}

/// Fetches a briefcase parked in `host`'s cabinet under `drawer`, or
/// `None` if the drawer is empty or the cabinet unreachable. Cabinet
/// drawers are scoped by owning principal, so `owner` must be the
/// principal the parking agent ran as — for an agent launched from host
/// `h`, that is `Principal::local_system(h)`.
pub fn fetch_parked(
    system: &mut TaxSystem,
    host: &str,
    owner: &Principal,
    drawer: &str,
) -> Option<Briefcase> {
    let mut request = Briefcase::new();
    request.set_single(folders::COMMAND, "fetch");
    request.append(folders::ARGS, drawer);
    let reply = system
        .call_service(host, "ag_cabinet", owner, request)
        .ok()?;
    let data = reply.element("CABINET-DATA", 0).ok()?;
    Briefcase::decode(data.data()).ok()
}

/// Fetches the parked report from `home`'s cabinet.
///
/// # Panics
///
/// Panics if the cabinet is unreachable or holds no report — the agent
/// never came home.
pub fn fetch_report(system: &mut TaxSystem, home: &str) -> WebbotReport {
    let owner = Principal::local_system(home);
    let parked = fetch_parked(system, home, &owner, REPORT_DRAWER)
        .unwrap_or_else(|| panic!("no parked report on {home}; agent never came home?"));
    WebbotReport::read_from(&parked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetParams {
        FleetParams {
            plan: FleetPlan::numbered(4),
            pages: 20,
            total_bytes: 200_000,
            seed: 77,
            ..FleetParams::default()
        }
    }

    /// The headline claim: on a 4-pair fleet the tick scheduler's virtual
    /// makespan is at least 2x better than the sequential scheduler's,
    /// and the scans find exactly the same things.
    #[test]
    fn parallel_fleet_halves_virtual_makespan() {
        let params = small();
        let sequential = run_fleet(&params, 0);
        let parallel = run_fleet(&params, 4);

        assert_eq!(sequential.reports.len(), 4);
        assert_eq!(sequential.reports, parallel.reports);
        for report in &sequential.reports {
            assert!(report.pages_scanned > 0);
        }
        assert!(
            parallel.virtual_makespan * 2 <= sequential.virtual_makespan,
            "parallel {:?} not 2x better than sequential {:?}",
            parallel.virtual_makespan,
            sequential.virtual_makespan,
        );
    }

    /// The harness is name-agnostic: an explicit plan over scenario-style
    /// generated host names behaves exactly like the numbered plan.
    #[test]
    fn explicit_plan_runs_like_numbered() {
        let plan = FleetPlan::from_pairs([
            ("h000.gen".to_owned(), "h001.gen".to_owned()),
            ("h002.gen".to_owned(), "h003.gen".to_owned()),
        ]);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.hosts().len(), 4);
        let params = FleetParams {
            plan,
            pages: 10,
            total_bytes: 100_000,
            seed: 5,
            ..FleetParams::default()
        };
        let outcome = run_fleet(&params, 2);
        assert_eq!(outcome.reports.len(), 2);
        for report in &outcome.reports {
            assert!(report.pages_scanned > 0);
        }
    }

    /// The determinism contract on the real workload: one worker and four
    /// workers produce identical traces (and therefore identical
    /// makespans and reports).
    #[test]
    fn fleet_traces_are_worker_count_invariant() {
        let params = small();
        let single = run_fleet(&params, 1);
        let multi = run_fleet(&params, 4);
        assert_eq!(single.virtual_makespan, multi.virtual_makespan);
        assert_eq!(single.reports, multi.reports);
        assert_eq!(single.trace, multi.trace);
    }
}
