//! A fleet of §5 case studies side by side: `K` disjoint client/server
//! pairs, each running its own mobilized Webbot scan — the workload the
//! parallel tick scheduler exists for.
//!
//! Under the classic sequential scheduler every pair's scan serializes on
//! the one global clock, so the fleet's virtual makespan is the *sum* of
//! the scans. Under the tick scheduler each pair's work runs in its own
//! batch with a forked clock, the barrier advances the global clock to the
//! slowest batch, and the makespan collapses towards the *longest single
//! scan* — the speedup [`run_fleet`] measures.

use std::sync::Arc;
use std::time::Duration;

use tacoma_briefcase::{folders, Briefcase};
use tacoma_core::{HostEvent, LinkSpec, Principal, SystemBuilder, TaxSystem};
use tacoma_web::{Site, SiteSpec, WebServer, DEFAULT_SERVER_WORK_NS};

use crate::mobile::{self, REPORT_DRAWER};
use crate::{WebbotConfig, WebbotReport};

/// Parameters of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Number of disjoint client/server pairs.
    pub pairs: usize,
    /// HTML pages on each server.
    pub pages: usize,
    /// Total site bytes on each server.
    pub total_bytes: u64,
    /// Site/topology seed.
    pub seed: u64,
    /// Link between every host pair.
    pub link: LinkSpec,
    /// Server CPU per request.
    pub server_work_ns: u64,
    /// Webbot depth limit.
    pub max_depth: usize,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            pairs: 4,
            pages: 40,
            total_bytes: 400_000,
            seed: 1900,
            link: LinkSpec::lan_100mbit(),
            server_work_ns: DEFAULT_SERVER_WORK_NS,
            max_depth: 4,
        }
    }
}

/// What a fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Global virtual time at quiescence — the fleet's makespan.
    pub virtual_makespan: Duration,
    /// Each pair's combined report, indexed by pair.
    pub reports: Vec<WebbotReport>,
    /// Scheduler steps executed.
    pub steps: usize,
    /// The full event trace, for determinism comparisons.
    pub trace: Vec<(String, HostEvent)>,
}

/// The `i`-th pair's client host name.
pub fn client_name(i: usize) -> String {
    format!("client{i}")
}

/// The `i`-th pair's server host name.
pub fn server_name(i: usize) -> String {
    format!("server{i}")
}

/// Builds the fleet deployment: `pairs` clients, `pairs` servers (each
/// with its own generated site), Webbot programs installed everywhere.
/// `threads` selects the scheduler exactly as
/// [`SystemBuilder::threads`] does (`0` = sequential).
pub fn build_fleet(params: &FleetParams, threads: usize) -> TaxSystem {
    let mut builder = SystemBuilder::new()
        .default_link(params.link)
        .seed(params.seed)
        .threads(threads)
        .trust_all();
    for i in 0..params.pairs {
        builder = builder
            .host(&client_name(i))
            .expect("valid host name")
            .host(&server_name(i))
            .expect("valid host name");
    }
    let system = builder.build();

    for i in 0..params.pairs {
        let server = server_name(i);
        let spec = SiteSpec {
            host: server.clone(),
            pages: params.pages,
            total_bytes: params.total_bytes,
            // Distinct sites per pair, deterministically.
            seed: params.seed.wrapping_add(i as u64),
            max_depth: params.max_depth,
            ..SiteSpec::paper_site(&server)
        };
        let site = Site::generate(&spec);
        let host = system.host(&server).expect("server host");
        host.add_service(Arc::new(
            WebServer::new(site).with_work_ns(params.server_work_ns),
        ));
    }
    for name in system.host_names() {
        mobile::install_programs(&system.host(&name).expect("listed host"));
    }
    system
}

/// Launches one mobile Webbot per pair, runs the system to quiescence,
/// and collects every pair's report.
///
/// # Panics
///
/// Panics if any launch fails or a pair's report never comes home —
/// both indicate a broken deployment, not a measurable outcome.
pub fn run_fleet(params: &FleetParams, threads: usize) -> FleetOutcome {
    let mut system = build_fleet(params, threads);
    for i in 0..params.pairs {
        let mut config = WebbotConfig::scan_site(&server_name(i));
        config.max_depth = params.max_depth;
        let spec = mobile::mw_webbot_spec(&server_name(i), &client_name(i), &config, false, None);
        system
            .launch(&client_name(i), spec)
            .expect("launch fleet webbot");
    }
    let outcome = system.run_until_quiet();
    assert!(outcome.quiesced(), "fleet did not quiesce");

    let reports = (0..params.pairs)
        .map(|i| fetch_report(&mut system, &client_name(i)))
        .collect();
    FleetOutcome {
        virtual_makespan: system.clock().now().since_epoch(),
        reports,
        steps: outcome.steps(),
        trace: system.events(),
    }
}

/// Fetches the parked report from `home`'s cabinet.
fn fetch_report(system: &mut TaxSystem, home: &str) -> WebbotReport {
    let principal = Principal::local_system(home);
    let mut request = Briefcase::new();
    request.set_single(folders::COMMAND, "fetch");
    request.append(folders::ARGS, REPORT_DRAWER);
    let reply = system
        .call_service(home, "ag_cabinet", &principal, request)
        .expect("cabinet reachable");
    let data = reply
        .element("CABINET-DATA", 0)
        .unwrap_or_else(|_| panic!("no parked report on {home}; agent never came home?"));
    let parked = Briefcase::decode(data.data()).expect("parked briefcase decodes");
    WebbotReport::read_from(&parked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetParams {
        FleetParams {
            pairs: 4,
            pages: 20,
            total_bytes: 200_000,
            seed: 77,
            ..FleetParams::default()
        }
    }

    /// The headline claim: on a 4-pair fleet the tick scheduler's virtual
    /// makespan is at least 2x better than the sequential scheduler's,
    /// and the scans find exactly the same things.
    #[test]
    fn parallel_fleet_halves_virtual_makespan() {
        let params = small();
        let sequential = run_fleet(&params, 0);
        let parallel = run_fleet(&params, 4);

        assert_eq!(sequential.reports.len(), 4);
        assert_eq!(sequential.reports, parallel.reports);
        for report in &sequential.reports {
            assert!(report.pages_scanned > 0);
        }
        assert!(
            parallel.virtual_makespan * 2 <= sequential.virtual_makespan,
            "parallel {:?} not 2x better than sequential {:?}",
            parallel.virtual_makespan,
            sequential.virtual_makespan,
        );
    }

    /// The determinism contract on the real workload: one worker and four
    /// workers produce identical traces (and therefore identical
    /// makespans and reports).
    #[test]
    fn fleet_traces_are_worker_count_invariant() {
        let params = small();
        let single = run_fleet(&params, 1);
        let multi = run_fleet(&params, 4);
        assert_eq!(single.virtual_makespan, multi.virtual_makespan);
        assert_eq!(single.reports, multi.reports);
        assert_eq!(single.trace, multi.trace);
    }
}
