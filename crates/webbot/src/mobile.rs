//! The mobility wrappers of Figure 5: `mwWebbot` carries the Webbot
//! binary to the web server, runs it there through `ag_exec`, performs the
//! second validation step on the rejected external URIs, and ships the
//! combined report home.
//!
//! Both the Webbot and `mwWebbot` are "binaries" in this reproduction's
//! sense: signed native artifacts executed by `vm_bin` through the
//! host's [`NativeRegistry`](tacoma_core::NativeRegistry) (see the workspace DESIGN.md for the
//! substitution rationale). Their briefcase payloads are padded to
//! realistic binary sizes so moving them costs real bandwidth.

use tacoma_briefcase::{folders, Briefcase};
use tacoma_core::{AgentSpec, Architecture, ArtifactBundle, BinaryArtifact, HostHooks, TaxHost};

use crate::{LinkIssue, RejectReason, Rejected, Webbot, WebbotConfig, WebbotReport};

/// Registry key of the Webbot binary.
pub const WEBBOT_KEY: &str = "webbot";
/// Registry key of the mwWebbot mobility wrapper binary.
pub const MW_WEBBOT_KEY: &str = "mw_webbot";
/// Registry key of the stationary driver binary (the baseline).
pub const STATIONARY_KEY: &str = "stationary_webbot";

/// Size of the Webbot "binary" on the wire (a period-realistic statically
/// linked C program).
pub const WEBBOT_BINARY_SIZE: usize = 250_000;
/// Size of the mwWebbot wrapper binary.
pub const MW_BINARY_SIZE: usize = 60_000;

/// The cabinet drawer reports are parked in when a run completes.
pub const REPORT_DRAWER: &str = "webbot-report";

/// CPU cost per external `head` check in the second step.
const EXT_CHECK_WORK_NS: u64 = 200_000;

/// The Webbot artifact bundle — one payload per architecture, as §5's
/// "an agent may submit a list of binaries matching different
/// architectures to ag_exec".
pub fn webbot_bundle() -> ArtifactBundle {
    ArtifactBundle::new()
        .with(BinaryArtifact::native(
            WEBBOT_KEY,
            Architecture::simulated(),
            WEBBOT_KEY,
            WEBBOT_BINARY_SIZE,
        ))
        .with(BinaryArtifact::native(
            WEBBOT_KEY,
            Architecture::i386_linux(),
            WEBBOT_KEY,
            WEBBOT_BINARY_SIZE,
        ))
}

/// The mwWebbot artifact bundle.
pub fn mw_webbot_bundle() -> ArtifactBundle {
    ArtifactBundle::new().with(BinaryArtifact::native(
        MW_WEBBOT_KEY,
        Architecture::simulated(),
        MW_WEBBOT_KEY,
        MW_BINARY_SIZE,
    ))
}

/// Installs the Webbot, mwWebbot, and stationary-driver programs on a
/// host's native registry. The Webbot must be installed wherever it may
/// execute (every host, like any COTS binary fetched from the W3C).
pub fn install_programs(host: &TaxHost) {
    host.install_native(WEBBOT_KEY, |bc, hooks| {
        let Some(config) = WebbotConfig::read_from(bc) else {
            bc.set_single(folders::STATUS, "error: webbot: missing WBT config");
            return Ok(tacoma_core::Outcome::Exit(2));
        };
        let report = Webbot::new().run(&config, hooks);
        report.write_to(bc);
        Ok(tacoma_core::Outcome::Exit(0))
    });

    host.install_native(MW_WEBBOT_KEY, |bc, hooks| Ok(mw_webbot_main(bc, hooks)));

    host.install_native(STATIONARY_KEY, |bc, hooks| Ok(stationary_main(bc, hooks)));

    host.install_native(crate::tour::TOUR_KEY, |bc, hooks| {
        Ok(crate::tour::tour_main(bc, hooks))
    });
}

/// Builds the Figure-5 mobile agent: `rwWebbot(mwWebbot(Webbot))`.
///
/// * `target` — the web server host to scan.
/// * `home` — where the report must come back to.
/// * `monitor` — optional URI for the rwWebbot monitoring layer
///   (`ag_log` somewhere); `None` omits the outer wrapper.
pub fn mw_webbot_spec(
    target: &str,
    home: &str,
    config: &WebbotConfig,
    check_externals: bool,
    monitor: Option<&str>,
) -> AgentSpec {
    let mut state = Briefcase::new();
    config.write_to(&mut state);

    let mut spec = AgentSpec::bundle("mwWebbot", mw_webbot_bundle())
        .folder("MW:PHASE", ["outbound"])
        .folder("MW:TARGET", [target])
        .folder("MW:HOME", [home])
        .folder("MW:CHECK-EXT", [if check_externals { "1" } else { "0" }])
        .folder("EXEC-BIN", [webbot_bundle().encode()]);
    // Copy the Webbot arguments into the agent's briefcase.
    for f in state {
        spec = spec.folder(f.name().to_owned(), f.into_elements());
    }
    if let Some(monitor) = monitor {
        spec = spec.wrap(format!("monitor:{monitor}"));
    }
    spec
}

/// Builds the stationary baseline: the same Webbot driven from wherever
/// it is launched, pulling pages over the network.
pub fn stationary_spec(config: &WebbotConfig, check_externals: bool) -> AgentSpec {
    let mut state = Briefcase::new();
    config.write_to(&mut state);
    let bundle = ArtifactBundle::new().with(BinaryArtifact::native(
        STATIONARY_KEY,
        Architecture::simulated(),
        STATIONARY_KEY,
        MW_BINARY_SIZE,
    ));
    let mut spec = AgentSpec::bundle("webbot", bundle)
        .folder("MW:CHECK-EXT", [if check_externals { "1" } else { "0" }]);
    for f in state {
        spec = spec.folder(f.name().to_owned(), f.into_elements());
    }
    spec
}

/// The mwWebbot program: a phase machine, because TACOMA agents restart
/// `main` at every hop with their state in the briefcase.
fn mw_webbot_main(bc: &mut Briefcase, hooks: &mut dyn HostHooks) -> tacoma_core::Outcome {
    let phase = bc.single_str("MW:PHASE").unwrap_or("outbound").to_owned();
    match phase.as_str() {
        "outbound" => {
            bc.set_single("MW:T0-MS", hooks.now_ms());
            let Ok(target) = bc.single_str("MW:TARGET").map(str::to_owned) else {
                return tacoma_core::Outcome::Exit(2);
            };
            bc.set_single("MW:PHASE", "scan");
            let dest = format!("tacoma://{target}/vm_bin");
            match hooks.go(&dest, bc) {
                tacoma_core::GoDecision::Moved => tacoma_core::Outcome::Moved { to: dest },
                tacoma_core::GoDecision::Unreachable => {
                    hooks.display(&format!("mwWebbot: unable to reach {dest}"));
                    tacoma_core::Outcome::Exit(3)
                }
            }
        }
        "scan" => {
            bc.set_single("MW:T-ARRIVE-MS", hooks.now_ms());

            // Step one: run the Webbot binary here via ag_exec (§5).
            let mut request = Briefcase::new();
            request.set_single(folders::COMMAND, "exec");
            if let Ok(bin) = bc.element("EXEC-BIN", 0) {
                request.set_single("EXEC-BIN", bin.clone());
            }
            // Forward the Webbot arguments.
            for name in [
                "WBT:START",
                "WBT:DEPTH",
                "WBT:PREFIX",
                "WBT:PAGE-WORK-NS",
                "WBT:BYTE-WORK-NS",
            ] {
                if let Some(folder) = bc.folder(name) {
                    let mut copied = tacoma_briefcase::Folder::new(name);
                    copied.extend(folder.iter().cloned());
                    request.insert_folder(copied);
                }
            }
            let Some(reply) = hooks.meet("ag_exec", &request) else {
                hooks.display("mwWebbot: ag_exec unavailable");
                return tacoma_core::Outcome::Exit(4);
            };
            let mut report = WebbotReport::read_from(&reply);
            bc.set_single("MW:T-SCAN-DONE-MS", hooks.now_ms());

            // Step two: validate the URIs Webbot rejected for pointing
            // outside the prefix.
            if bc.single_str("MW:CHECK-EXT") == Ok("1") {
                let work_list: Vec<Rejected> = report.prefix_rejected().cloned().collect();
                let externally_invalid =
                    Webbot::new().check_uris(work_list.iter(), hooks, EXT_CHECK_WORK_NS);
                bc.set_single("MW:EXT-CHECKED", work_list.len() as i64);
                report.links_checked += work_list.len() as u64;
                report.invalid.extend(externally_invalid);
            }
            bc.set_single("MW:T-EXT-DONE-MS", hooks.now_ms());

            // Only the condensed result travels home: drop the binary and
            // write the combined report ("the resulting list of invalid
            // URIs and the referring pages is then transmitted back").
            bc.remove_folder("EXEC-BIN");
            report.write_to(bc);

            let Ok(home) = bc.single_str("MW:HOME").map(str::to_owned) else {
                return tacoma_core::Outcome::Exit(2);
            };
            bc.set_single("MW:PHASE", "report");
            let dest = format!("tacoma://{home}/vm_bin");
            match hooks.go(&dest, bc) {
                tacoma_core::GoDecision::Moved => tacoma_core::Outcome::Moved { to: dest },
                tacoma_core::GoDecision::Unreachable => {
                    hooks.display(&format!("mwWebbot: unable to return to {dest}"));
                    tacoma_core::Outcome::Exit(5)
                }
            }
        }
        "report" => {
            bc.set_single("MW:T-HOME-MS", hooks.now_ms());
            park_report(bc, hooks);
            let report = WebbotReport::read_from(bc);
            hooks.display(&format!("mwWebbot done: {}", report.summary()));
            tacoma_core::Outcome::Exit(0)
        }
        other => {
            hooks.display(&format!("mwWebbot: unknown phase {other:?}"));
            tacoma_core::Outcome::Exit(9)
        }
    }
}

/// The stationary driver: run the robot from here, optionally check the
/// externals, park the report.
fn stationary_main(bc: &mut Briefcase, hooks: &mut dyn HostHooks) -> tacoma_core::Outcome {
    bc.set_single("MW:T0-MS", hooks.now_ms());
    let Some(config) = WebbotConfig::read_from(bc) else {
        return tacoma_core::Outcome::Exit(2);
    };
    let mut report = Webbot::new().run(&config, hooks);
    bc.set_single("MW:T-SCAN-DONE-MS", hooks.now_ms());
    if bc.single_str("MW:CHECK-EXT") == Ok("1") {
        let work_list: Vec<Rejected> = report.prefix_rejected().cloned().collect();
        let externally_invalid =
            Webbot::new().check_uris(work_list.iter(), hooks, EXT_CHECK_WORK_NS);
        report.links_checked += work_list.len() as u64;
        report.invalid.extend(externally_invalid);
    }
    bc.set_single("MW:T-EXT-DONE-MS", hooks.now_ms());
    bc.set_single("MW:T-HOME-MS", hooks.now_ms());
    report.write_to(bc);
    park_report(bc, hooks);
    hooks.display(&format!("webbot done: {}", report.summary()));
    tacoma_core::Outcome::Exit(0)
}

/// Parks the whole agent briefcase (report + timing stamps) in the local
/// cabinet under [`REPORT_DRAWER`].
fn park_report(bc: &Briefcase, hooks: &mut dyn HostHooks) {
    let mut request = Briefcase::new();
    request.set_single(folders::COMMAND, "store");
    request.append(folders::ARGS, REPORT_DRAWER);
    request.set_single("CABINET-DATA", bc.encode());
    if hooks.meet("ag_cabinet", &request).is_none() {
        hooks.display("warning: could not park report in ag_cabinet");
    }
}

/// A parsed set of the run's timing stamps, all in virtual milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStamps {
    /// Launch time.
    pub t0: i64,
    /// Arrival at the server (mobile only; equals `t0` for stationary).
    pub arrive: i64,
    /// Scan complete.
    pub scan_done: i64,
    /// External checks complete.
    pub ext_done: i64,
    /// Report back home.
    pub home: i64,
}

impl RunStamps {
    /// Reads stamps from a parked report briefcase.
    pub fn read_from(bc: &Briefcase) -> RunStamps {
        let get = |name: &str| bc.single_i64(name).unwrap_or(0);
        let t0 = get("MW:T0-MS");
        let arrive = bc.single_i64("MW:T-ARRIVE-MS").unwrap_or(t0);
        RunStamps {
            t0,
            arrive,
            scan_done: get("MW:T-SCAN-DONE-MS"),
            ext_done: get("MW:T-EXT-DONE-MS"),
            home: get("MW:T-HOME-MS"),
        }
    }

    /// The scan phase duration in milliseconds — the paper's measured
    /// quantity.
    pub fn scan_ms(&self) -> i64 {
        self.scan_done - self.arrive
    }

    /// Whole-journey duration in milliseconds.
    pub fn total_ms(&self) -> i64 {
        self.home - self.t0
    }

    /// Ensures the stamps are monotone (a report that travelled through
    /// broken clocks is suspect).
    pub fn is_monotone(&self) -> bool {
        self.t0 <= self.arrive
            && self.arrive <= self.scan_done
            && self.scan_done <= self.ext_done
            && self.ext_done <= self.home
    }

    /// The reject reason constant, re-exported for harness assertions.
    pub fn prefix_reason() -> RejectReason {
        RejectReason::Prefix
    }
}

/// Re-export for harnesses that assemble issues.
pub type ExternalIssue = LinkIssue;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_cost_realistic_bytes() {
        let w = webbot_bundle().encode();
        assert!(
            w.len() >= 2 * WEBBOT_BINARY_SIZE,
            "two architectures carried"
        );
        let m = mw_webbot_bundle().encode();
        assert!(m.len() >= MW_BINARY_SIZE);
    }

    #[test]
    fn spec_carries_binary_config_and_wrapper() {
        let config = WebbotConfig::scan_site("server");
        let spec = mw_webbot_spec(
            "server",
            "client",
            &config,
            true,
            Some("tacoma://client/ag_log"),
        );
        let principal = tacoma_core::Principal::new("p").unwrap();
        let bc = match spec_briefcase(&spec, &principal) {
            Ok(bc) => bc,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(bc.single_str("MW:PHASE").unwrap(), "outbound");
        assert_eq!(bc.single_str("MW:TARGET").unwrap(), "server");
        assert!(bc.element("EXEC-BIN", 0).unwrap().len() >= WEBBOT_BINARY_SIZE);
        assert_eq!(bc.single_str("WBT:PREFIX").unwrap(), "http://server/");
        assert_eq!(bc.folder("WRAPPERS").unwrap().len(), 1);
    }

    // AgentSpec::build_briefcase is crate-private to tacoma-core; go
    // through a tiny system launch instead.
    fn spec_briefcase(
        spec: &AgentSpec,
        _principal: &tacoma_core::Principal,
    ) -> Result<Briefcase, tacoma_core::TaxError> {
        let mut system = tacoma_core::SystemBuilder::new().host("probe")?.build();
        let host = system.host("probe").unwrap();
        install_programs(&host);
        let address = system.launch("probe", spec.clone())?;
        // The task is queued but unrun: read its briefcase via the
        // registry? Simpler: run and read the parked state is overkill —
        // instead reconstruct from a fresh build by launching on a host
        // with no scheduler run. We can reach the queued briefcase through
        // the host's task queue indirectly: pop it.
        let _ = address;
        // Peek: the task queue holds exactly one task.
        let task_bc = host.peek_task_briefcase().expect("briefcase queued");
        Ok(task_bc)
    }

    #[test]
    fn stamps_roundtrip_and_monotonicity() {
        let mut bc = Briefcase::new();
        bc.set_single("MW:T0-MS", 10i64);
        bc.set_single("MW:T-ARRIVE-MS", 20i64);
        bc.set_single("MW:T-SCAN-DONE-MS", 50i64);
        bc.set_single("MW:T-EXT-DONE-MS", 60i64);
        bc.set_single("MW:T-HOME-MS", 70i64);
        let stamps = RunStamps::read_from(&bc);
        assert!(stamps.is_monotone());
        assert_eq!(stamps.scan_ms(), 30);
        assert_eq!(stamps.total_ms(), 60);
    }

    #[test]
    fn stationary_stamps_default_arrive_to_t0() {
        let mut bc = Briefcase::new();
        bc.set_single("MW:T0-MS", 5i64);
        bc.set_single("MW:T-SCAN-DONE-MS", 25i64);
        let stamps = RunStamps::read_from(&bc);
        assert_eq!(stamps.arrive, 5);
        assert_eq!(stamps.scan_ms(), 20);
    }
}
