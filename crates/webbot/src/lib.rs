//! The §5 case study: **mining for dead links** with a mobilized Webbot.
//!
//! > "The idea here is to take a stationary web robot and encapsulate it
//! > using a mobile agent wrapper. […] We are able to achieve this by
//! > reusing an existing freely available robot and without relying on
//! > special system support in the execution environment of the web
//! > server, beyond the basic TAX agent system."
//!
//! Three layers, matching Figure 5:
//!
//! * [`Webbot`] — the stationary robot itself (our reimplementation of the
//!   W3C Webbot): depth-first link validation under a depth limit and a
//!   URI-prefix constraint, logging followed, invalid, and **rejected**
//!   links. It only talks to the web through
//!   [`WebClient`](tacoma_web::WebClient), so the identical "binary" runs
//!   from anywhere.
//! * [`mw_webbot`](mobile) — the mobility wrapper: carries the Webbot
//!   binary in its briefcase, relocates to the web server, runs it there
//!   through `ag_exec`, re-checks the URIs Webbot rejected for pointing
//!   outside the prefix, and ships only the combined report home.
//! * `rwWebbot` — the monitoring layer is the kernel's stock
//!   [`monitor`](tacoma_core::wrappers::MonitorWrapper) wrapper, stacked
//!   around `mw_webbot` exactly as in Figure 5.
//!
//! [`experiment`] packages the paper's measurement: the same scan run
//! stationary (pulling pages over the network) and mobile (at the
//! server), on the same generated site, under the same cost model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod experiment;
pub mod fleet;
pub mod mobile;
mod report;
mod robot;
pub mod tour;

pub use config::WebbotConfig;
pub use report::{LinkIssue, RejectReason, Rejected, WebbotReport};
pub use robot::Webbot;
