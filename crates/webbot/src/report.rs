use serde::{Deserialize, Serialize};
use tacoma_briefcase::Briefcase;

/// Why a discovered link was not followed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The URI falls outside the configured prefix — the links the §5
    /// wrapper re-checks in its second step.
    Prefix,
    /// Following it would exceed the depth limit.
    Depth,
}

impl RejectReason {
    fn as_str(self) -> &'static str {
        match self {
            RejectReason::Prefix => "prefix",
            RejectReason::Depth => "depth",
        }
    }

    fn from_str_lossy(s: &str) -> Self {
        if s == "depth" {
            RejectReason::Depth
        } else {
            RejectReason::Prefix
        }
    }
}

/// An invalid link: where it was found and what failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkIssue {
    /// The page carrying the link.
    pub referrer: String,
    /// The broken target.
    pub url: String,
    /// Status observed (404, or 0 for unreachable host).
    pub status: u16,
}

/// A link logged but not followed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejected {
    /// The page carrying the link.
    pub referrer: String,
    /// The target that was not followed.
    pub url: String,
    /// Why.
    pub reason: RejectReason,
}

/// Everything a Webbot run produces — the statistics the paper's robot
/// gathers (link validity, age, type) plus the rejected-link log the
/// wrapper's second step consumes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WebbotReport {
    /// Pages fetched and processed.
    pub pages_scanned: u64,
    /// Body bytes transferred by the scan.
    pub bytes_fetched: u64,
    /// Links checked (followed or validated).
    pub links_checked: u64,
    /// Sum of page ages, for the mean-age statistic.
    pub age_days_total: u64,
    /// Non-HTML documents encountered.
    pub non_html: u64,
    /// `301 Moved` responses followed.
    pub redirects: u64,
    /// Broken links found.
    pub invalid: Vec<LinkIssue>,
    /// Links rejected by constraints.
    pub rejected: Vec<Rejected>,
}

impl WebbotReport {
    /// Mean page age in days, if any pages were scanned.
    pub fn mean_age_days(&self) -> Option<f64> {
        if self.pages_scanned == 0 {
            None
        } else {
            Some(self.age_days_total as f64 / self.pages_scanned as f64)
        }
    }

    /// The prefix-rejected URIs — the §5 second-step work list.
    pub fn prefix_rejected(&self) -> impl Iterator<Item = &Rejected> {
        self.rejected
            .iter()
            .filter(|r| r.reason == RejectReason::Prefix)
    }

    /// Serializes the report into `WBT:` briefcase folders.
    pub fn write_to(&self, bc: &mut Briefcase) {
        bc.set_single("WBT:PAGES", self.pages_scanned as i64);
        bc.set_single("WBT:BYTES", self.bytes_fetched as i64);
        bc.set_single("WBT:CHECKED", self.links_checked as i64);
        bc.set_single("WBT:AGE-TOTAL", self.age_days_total as i64);
        bc.set_single("WBT:NON-HTML", self.non_html as i64);
        bc.set_single("WBT:REDIRECTS", self.redirects as i64);
        let invalid = bc.ensure_folder("WBT:INVALID");
        invalid.clear();
        for issue in &self.invalid {
            invalid.append(format!("{} {} {}", issue.status, issue.referrer, issue.url));
        }
        let rejected = bc.ensure_folder("WBT:REJECTED");
        rejected.clear();
        for r in &self.rejected {
            rejected.append(format!("{} {} {}", r.reason.as_str(), r.referrer, r.url));
        }
    }

    /// Reads a report back from `WBT:` folders (tolerant of missing
    /// counters, strict enough to drop malformed lines).
    pub fn read_from(bc: &Briefcase) -> WebbotReport {
        let mut report = WebbotReport {
            pages_scanned: bc.single_i64("WBT:PAGES").unwrap_or(0).max(0) as u64,
            bytes_fetched: bc.single_i64("WBT:BYTES").unwrap_or(0).max(0) as u64,
            links_checked: bc.single_i64("WBT:CHECKED").unwrap_or(0).max(0) as u64,
            age_days_total: bc.single_i64("WBT:AGE-TOTAL").unwrap_or(0).max(0) as u64,
            non_html: bc.single_i64("WBT:NON-HTML").unwrap_or(0).max(0) as u64,
            redirects: bc.single_i64("WBT:REDIRECTS").unwrap_or(0).max(0) as u64,
            ..WebbotReport::default()
        };
        if let Some(folder) = bc.folder("WBT:INVALID") {
            for e in folder {
                let Ok(line) = e.as_str() else { continue };
                let mut parts = line.splitn(3, ' ');
                let (Some(status), Some(referrer), Some(url)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    continue;
                };
                let Ok(status) = status.parse() else { continue };
                report.invalid.push(LinkIssue {
                    referrer: referrer.to_owned(),
                    url: url.to_owned(),
                    status,
                });
            }
        }
        if let Some(folder) = bc.folder("WBT:REJECTED") {
            for e in folder {
                let Ok(line) = e.as_str() else { continue };
                let mut parts = line.splitn(3, ' ');
                let (Some(reason), Some(referrer), Some(url)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    continue;
                };
                report.rejected.push(Rejected {
                    referrer: referrer.to_owned(),
                    url: url.to_owned(),
                    reason: RejectReason::from_str_lossy(reason),
                });
            }
        }
        report
    }

    /// Folds another report into this one — the multi-hop tour agent
    /// accumulates one combined report across every server it visits.
    pub fn merge(&mut self, other: &WebbotReport) {
        self.pages_scanned += other.pages_scanned;
        self.bytes_fetched += other.bytes_fetched;
        self.links_checked += other.links_checked;
        self.age_days_total += other.age_days_total;
        self.non_html += other.non_html;
        self.redirects += other.redirects;
        self.invalid.extend(other.invalid.iter().cloned());
        self.rejected.extend(other.rejected.iter().cloned());
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} pages, {} bytes, {} links checked, {} invalid, {} rejected",
            self.pages_scanned,
            self.bytes_fetched,
            self.links_checked,
            self.invalid.len(),
            self.rejected.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WebbotReport {
        WebbotReport {
            pages_scanned: 917,
            bytes_fetched: 3_000_000,
            links_checked: 5000,
            age_days_total: 90_000,
            non_html: 12,
            redirects: 3,
            invalid: vec![LinkIssue {
                referrer: "http://s/index.html".into(),
                url: "http://s/dead/0001.html".into(),
                status: 404,
            }],
            rejected: vec![
                Rejected {
                    referrer: "http://s/p/0001.html".into(),
                    url: "http://ext/x.html".into(),
                    reason: RejectReason::Prefix,
                },
                Rejected {
                    referrer: "http://s/p/0002.html".into(),
                    url: "http://s/p/0003.html".into(),
                    reason: RejectReason::Depth,
                },
            ],
        }
    }

    #[test]
    fn briefcase_roundtrip() {
        let report = sample();
        let mut bc = Briefcase::new();
        report.write_to(&mut bc);
        assert_eq!(WebbotReport::read_from(&bc), report);
    }

    #[test]
    fn prefix_rejected_filters_depth() {
        let report = sample();
        let work: Vec<&Rejected> = report.prefix_rejected().collect();
        assert_eq!(work.len(), 1);
        assert_eq!(work[0].url, "http://ext/x.html");
    }

    #[test]
    fn mean_age() {
        assert_eq!(sample().mean_age_days(), Some(90_000.0 / 917.0));
        assert_eq!(WebbotReport::default().mean_age_days(), None);
    }

    #[test]
    fn read_from_empty_briefcase_is_default() {
        assert_eq!(
            WebbotReport::read_from(&Briefcase::new()),
            WebbotReport::default()
        );
    }

    #[test]
    fn malformed_lines_are_dropped_not_fatal() {
        let mut bc = Briefcase::new();
        sample().write_to(&mut bc);
        bc.ensure_folder("WBT:INVALID").append("garbage");
        bc.ensure_folder("WBT:INVALID").append("notanumber a b");
        let report = WebbotReport::read_from(&bc);
        assert_eq!(report.invalid.len(), 1);
    }

    #[test]
    fn summary_mentions_key_counts() {
        let s = sample().summary();
        assert!(s.contains("917 pages") && s.contains("1 invalid"));
    }
}
