//! **TaxScript** — the mobile-agent language of this TAX reproduction.
//!
//! The original TACOMA/TAX agents were ordinary C programs (Figure 4)
//! compiled by `ag_cc`/`ag_exec` at the destination host and executed by
//! `vm_bin`. Rust cannot safely load foreign machine code, so TaxScript
//! stands in for C: a small C-flavoured language whose *source* or
//! compiled *bytecode* travels inside the agent's briefcase, is compiled
//! at the destination (reproducing the Figure 3 pipeline), and runs on a
//! sandboxed stack VM with a fuel limit.
//!
//! The pipeline mirrors a real toolchain:
//!
//! * [`lex`] — source text → tokens
//! * [`parse`] — tokens → AST
//! * [`compile`] — AST → [`Program`] (bytecode + constant pool)
//! * [`Program::encode`] / [`Program::decode`] — the "binary" that rides
//!   in a briefcase `CODE` folder
//! * [`Vm::run`] — executes a program against the agent's briefcase and a
//!   [`HostHooks`] implementation supplying mobility and communication
//!
//! Faithful to TACOMA, there is **no execution-state capture**: a
//! successful `go(uri)` ends the current run with
//! [`Outcome::Moved`]; the destination VM re-enters `main` from the top
//! with the (updated) briefcase.
//!
//! # Example: the Figure 4 agent
//!
//! ```
//! use tacoma_briefcase::Briefcase;
//! use tacoma_taxscript::{compile_source, NullHooks, Outcome, Vm};
//!
//! let source = r#"
//!     fn main() {
//!         while (1) {
//!             display("Hello world");
//!             let e = bc_remove("HOSTS", 0);
//!             if (e == nil) { exit(0); }
//!             if (go(e)) { display("Unable to reach " + e); }
//!         }
//!     }
//! "#;
//! let program = compile_source(source).unwrap();
//!
//! let mut bc = Briefcase::new();
//! bc.append("HOSTS", "tacoma://h1/vm_script");
//!
//! // NullHooks: every go() fails, so the agent drains HOSTS and exits.
//! let mut vm = Vm::new(&program, NullHooks::default());
//! let outcome = vm.run(&mut bc).unwrap();
//! assert_eq!(outcome, Outcome::Exit(0));
//! assert_eq!(vm.hooks().displayed.len(), 3); // hello, unable-to-reach, hello
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
mod builtins;
mod bytecode;
mod compiler;
mod dispatch;
mod error;
mod hooks;
mod lexer;
mod opt;
mod parser;
mod program;
mod value;
mod vm;

pub use analysis::{analyze, AnalysisReport, Capabilities, Diagnostic, VerifyError};
pub use builtins::Builtin;
pub use bytecode::Op;
pub use compiler::compile;
pub use dispatch::ExecScratch;
pub use error::{CompileError, LexError, ParseError, RuntimeError, ScriptError};
pub use hooks::{GoDecision, HostHooks, NullHooks};
pub use lexer::lex;
pub use parser::parse;
pub use program::{Program, PROGRAM_MAGIC};
pub use value::Value;
pub use vm::{Outcome, Vm, DEFAULT_FUEL};

/// Compiles TaxScript source straight to a runnable [`Program`].
///
/// # Errors
///
/// Any [`ScriptError`] from lexing, parsing, or compilation.
pub fn compile_source(source: &str) -> Result<Program, ScriptError> {
    let tokens = lex(source)?;
    let items = parse(&tokens)?;
    Ok(compile(&items)?)
}
