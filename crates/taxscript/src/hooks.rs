//! The host interface: how a running agent reaches the TAX library
//! primitives (§3.1) from inside the VM sandbox.

use tacoma_briefcase::Briefcase;

/// The host's answer to a `go(uri)` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoDecision {
    /// The move will happen: the VM stops with
    /// [`Outcome::Moved`](crate::Outcome) and the host ships the
    /// briefcase. Per TACOMA semantics the current instance terminates.
    Moved,
    /// The destination is unreachable; `go` returns nonzero to the script
    /// (the Figure-4 `if (go(next, bc))` failure branch).
    Unreachable,
}

/// Host callbacks for mobility, communication, and environment queries.
///
/// The VM calls these when the script invokes the corresponding builtin.
/// The kernel's implementation routes through the firewall; tests can use
/// [`NullHooks`].
pub trait HostHooks {
    /// `display(...)` — a line of agent output.
    fn display(&mut self, text: &str);

    /// `go(uri)` — request relocation. The current briefcase is provided
    /// so the host can validate the destination against it.
    fn go(&mut self, uri: &str, briefcase: &Briefcase) -> GoDecision;

    /// `spawn(uri)` — request a clone at `uri` with a fresh instance
    /// number. Returns the new instance (hex) or `None` on failure.
    fn spawn(&mut self, uri: &str, briefcase: &Briefcase) -> Option<String>;

    /// `activate(uri)` — asynchronously send a copy of the briefcase.
    /// Returns whether the send was accepted.
    fn activate(&mut self, uri: &str, briefcase: &Briefcase) -> bool;

    /// `meet(uri)` — RPC: send the briefcase, wait for the reply.
    /// Returns the reply briefcase, or `None` on failure/timeout.
    fn meet(&mut self, uri: &str, briefcase: &Briefcase) -> Option<Briefcase>;

    /// `await_bc(timeout_ms)` — block for an incoming briefcase.
    fn await_bc(&mut self, timeout_ms: i64) -> Option<Briefcase>;

    /// `now_ms()` — the host's (virtual) clock in milliseconds.
    fn now_ms(&mut self) -> i64;

    /// `host_name()` — where the agent is currently executing.
    fn host_name(&mut self) -> String;

    /// Charges `nanos` of simulated CPU work to the host's clock. Used by
    /// native programs (and cost-calibrated services) so computation has a
    /// virtual-time cost alongside communication. The default is a no-op,
    /// which is right for hosts without a virtual clock.
    fn work_ns(&mut self, nanos: u64) {
        let _ = nanos;
    }
}

/// A null host: collects `display` output, fails every `go`/`spawn`/
/// communication, reports time zero. Useful for unit tests and for
/// running pure computations.
#[derive(Debug, Default)]
pub struct NullHooks {
    /// Everything the agent displayed, in order.
    pub displayed: Vec<String>,
}

impl HostHooks for NullHooks {
    fn display(&mut self, text: &str) {
        self.displayed.push(text.to_owned());
    }

    fn go(&mut self, _uri: &str, _briefcase: &Briefcase) -> GoDecision {
        GoDecision::Unreachable
    }

    fn spawn(&mut self, _uri: &str, _briefcase: &Briefcase) -> Option<String> {
        None
    }

    fn activate(&mut self, _uri: &str, _briefcase: &Briefcase) -> bool {
        false
    }

    fn meet(&mut self, _uri: &str, _briefcase: &Briefcase) -> Option<Briefcase> {
        None
    }

    fn await_bc(&mut self, _timeout_ms: i64) -> Option<Briefcase> {
        None
    }

    fn now_ms(&mut self) -> i64 {
        0
    }

    fn host_name(&mut self) -> String {
        "localhost".to_owned()
    }
}
