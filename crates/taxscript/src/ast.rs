//! The TaxScript abstract syntax tree.

/// A top-level item: a function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name (`main` is the agent entry point).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Function body.
    pub body: Block,
    /// Source line of the `fn` keyword.
    pub line: u32,
}

/// A `{ ... }` statement sequence introducing a lexical scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `name = expr;`
    Assign {
        /// Target variable (must be bound by an enclosing `let` or param).
        name: String,
        /// New value.
        value: Expr,
    },
    /// `if (cond) {..} else {..}` — else branch optional.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
    },
    /// `while (cond) {..}`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// An expression evaluated for effect; its value is discarded.
    Expr(Expr),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `nil`
    Nil,
    /// Variable reference.
    Var(String),
    /// `[a, b, c]` list literal.
    List(Vec<Expr>),
    /// `expr[index]`
    Index {
        /// The list or string being indexed.
        target: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// Binary operator application. `&&`/`||` short-circuit.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A call to a builtin or user-defined function.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line, for diagnostics.
        line: u32,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+` (integer addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}
