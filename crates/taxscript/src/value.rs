//! Runtime values.

use std::fmt;

use tacoma_briefcase::Element;

use crate::RuntimeError;

/// A TaxScript runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The absent value; `bc_get` past the end yields `nil`, which is how
    /// the Figure-4 agent detects an exhausted itinerary.
    Nil,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Immutable list.
    List(Vec<Value>),
}

impl Value {
    /// Truthiness: `nil` and `false` are false; `0` is false; empty
    /// strings/lists are false; everything else is true. `while (1)` is
    /// the canonical infinite loop (Figure 4).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Nil => false,
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.is_empty(),
        }
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::List(_) => "list",
        }
    }

    /// Renders the value the way `display` and `str()` do.
    pub fn render(&self) -> String {
        match self {
            Value::Nil => "nil".to_owned(),
            Value::Bool(b) => b.to_string(),
            Value::Int(v) => v.to_string(),
            Value::Str(s) => s.clone(),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
        }
    }

    /// Converts a briefcase element to a value: UTF-8 text becomes a
    /// string; anything else is surfaced as a string of hex (agents that
    /// need raw binary use dedicated builtins).
    pub fn from_element(e: &Element) -> Value {
        match e.as_str() {
            Ok(s) => Value::Str(s.to_owned()),
            Err(_) => {
                let hex: String = e.data().iter().map(|b| format!("{b:02x}")).collect();
                Value::Str(hex)
            }
        }
    }

    /// Converts a value to a briefcase element (its rendering).
    pub fn to_element(&self) -> Element {
        Element::from(self.render())
    }

    /// Requires a string, for builtins.
    pub fn expect_str(&self, builtin: &'static str) -> Result<&str, RuntimeError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(RuntimeError::BuiltinType {
                name: builtin,
                expected: "a string",
            }),
        }
    }

    /// Requires an integer, for builtins.
    pub fn expect_int(&self, builtin: &'static str) -> Result<i64, RuntimeError> {
        match self {
            Value::Int(v) => Ok(*v),
            _ => Err(RuntimeError::BuiltinType {
                name: builtin,
                expected: "an integer",
            }),
        }
    }

    /// Requires a list, for builtins.
    pub fn expect_list(&self, builtin: &'static str) -> Result<&[Value], RuntimeError> {
        match self {
            Value::List(l) => Ok(l),
            _ => Err(RuntimeError::BuiltinType {
                name: builtin,
                expected: "a list",
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_c_conventions() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Nil.truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::List(vec![]).truthy());
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Nil.render(), "nil");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("a".into())]).render(),
            "[1, a]"
        );
    }

    #[test]
    fn element_roundtrip_for_text() {
        let v = Value::Str("tacoma://h/vm".into());
        assert_eq!(Value::from_element(&v.to_element()), v);
    }

    #[test]
    fn binary_elements_surface_as_hex() {
        let e = Element::from(vec![0xff, 0xfe]);
        assert_eq!(Value::from_element(&e), Value::Str("fffe".into()));
    }

    #[test]
    fn expectations_report_builtin_name() {
        let err = Value::Nil.expect_str("substr").unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::BuiltinType { name: "substr", .. }
        ));
    }
}
