//! The compile tier: lowering wire [`Op`] programs into the dense
//! internal [`ExecOp`] form the fused dispatcher runs.
//!
//! The wire `Op` enum stays the stable interchange format — the
//! analyzer, golden corpus, and briefcase encoding never see `ExecOp`.
//! Lowering happens lazily (and exactly once) per [`Program`] via
//! [`Program::exec`](crate::Program), and performs three rewrites:
//!
//! 1. **Constant folding** — `Const a; Const b; <op>` with statically
//!    known operands collapses to a single push (or `True`/`False` for
//!    comparisons). Division and modulo are never folded so a constant
//!    zero divisor still faults at run time exactly like the legacy
//!    interpreter.
//! 2. **Superinstruction fusion** — the hot sequences
//!    `Load+Load+Add+Store`, `Load+Const+Add+Store` (the `i = i + 1`
//!    shape), `Load+Const+Lt+JumpIfFalse` (the `while (i < n)` loop
//!    header), and `Const+CallBuiltin` each become one `ExecOp`.
//! 3. **Basic-block fuel accounting** — every block begins with an
//!    [`ExecOp::Fence`] carrying the block's *wire* instruction count.
//!    The dispatcher charges the whole block at entry instead of
//!    checking fuel per instruction, so a fused op's cost is exactly
//!    the number of wire ops it replaced and totals agree with the
//!    legacy interpreter at every block boundary.
//!
//! Fusion never crosses a block boundary: a window is only fused when
//! none of its interior instructions is a jump target, so every wire
//! jump target maps 1:1 onto a lowered block entry.

use std::collections::BTreeSet;

use crate::program::{Const, FnProto};
use crate::vm::add_values;
use crate::{Builtin, Op, Program, Value};

/// Straight-line runs longer than this are split into multiple blocks,
/// bounding how far the fused tier's fuel and stack checks can drift
/// from the legacy per-instruction points.
pub(crate) const MAX_BLOCK_WIRE_OPS: usize = 64;

/// One lowered instruction. Unlike the wire [`Op`], constant indices
/// are `u32` (folding can grow the pool past `u16`) and the fused
/// variants carry several operands, so `ExecOp` is allowed to be wider
/// than `Op` — 16 bytes instead of 8 (asserted by `exec_ops_are_small`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ExecOp {
    /// Block prologue: charge `cost` fuel (the wire instruction count of
    /// the block) and bounds-check the value stack.
    Fence(u32),
    /// Push `consts[idx]`.
    Const(u32),
    /// A wire `Const` whose pool index was out of range; faults with the
    /// same error the legacy interpreter raises when it executes.
    BadConst,
    Nil,
    True,
    False,
    Load(u16),
    Store(u16),
    Pop,
    Dup,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    Not,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Jump(u32),
    JumpIfFalse(u32),
    JumpIfTrue(u32),
    MakeList(u16),
    Index,
    Call {
        fn_idx: u16,
        argc: u8,
    },
    CallBuiltin {
        builtin: Builtin,
        argc: u8,
    },
    Return,
    /// `Load a; Load b; Add; Store dst` (4 wire ops).
    LoadLoadAddStore {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `Load slot; Const cidx; Add; Store dst` (4 wire ops) — the
    /// `i = i + 1` counter bump.
    LoadConstAddStore {
        slot: u16,
        cidx: u32,
        dst: u16,
    },
    /// `Load slot; Const cidx; Lt; JumpIfFalse target` (4 wire ops) —
    /// the `while (i < n)` loop header. Jumps when `!(slot < cidx)`.
    LoadConstLtJf {
        slot: u16,
        cidx: u32,
        target: u32,
    },
    /// `Const cidx; CallBuiltin` (2 wire ops) — e.g. `exit(0)`,
    /// `display("…")`, `bc_len("HOSTS")`.
    ConstCallBuiltin {
        cidx: u32,
        builtin: Builtin,
        argc: u8,
    },
}

/// One lowered function body.
#[derive(Debug)]
pub(crate) struct ExecFn {
    pub(crate) code: Vec<ExecOp>,
    pub(crate) n_locals: u16,
}

/// A lowered program: the constant pool pre-converted to [`Value`]s
/// (plus any constants materialized by folding) and one [`ExecFn`] per
/// wire function.
#[derive(Debug)]
pub(crate) struct ExecProgram {
    pub(crate) consts: Vec<Value>,
    pub(crate) fns: Vec<ExecFn>,
    pub(crate) main_idx: u16,
    /// The largest single block charge in the program — the bound on
    /// how much earlier (in fuel units) the fused tier can report
    /// out-of-fuel relative to the legacy interpreter.
    pub(crate) max_block_cost: u32,
}

impl ExecProgram {
    /// Lowers a wire program. Never fails: statically malformed
    /// references become runtime-faulting ops with the same error the
    /// legacy interpreter raises, so lowering needs no `Result` and the
    /// fused tier accepts exactly the programs the legacy tier accepts.
    pub(crate) fn lower(program: &Program) -> ExecProgram {
        let mut consts: Vec<Value> = program
            .constants()
            .iter()
            .map(|c| match c {
                Const::Int(v) => Value::Int(*v),
                Const::Str(s) => Value::Str(s.clone()),
            })
            .collect();
        let mut max_block_cost = 0u32;
        let fns = program
            .functions()
            .iter()
            .map(|f| lower_fn(f, program.constants(), &mut consts, &mut max_block_cost))
            .collect();
        ExecProgram {
            consts,
            fns,
            main_idx: program.main_index() as u16,
            max_block_cost,
        }
    }
}

/// Ops that end a basic block: control transfers plus builtin calls
/// (builtins can terminate the run, so ending the block there keeps
/// fused and legacy fuel totals equal at every termination point).
fn is_terminator(op: Op) -> bool {
    matches!(
        op,
        Op::Jump(_)
            | Op::JumpIfFalse(_)
            | Op::JumpIfTrue(_)
            | Op::Call { .. }
            | Op::CallBuiltin { .. }
            | Op::Return
    )
}

fn lower_fn(
    f: &FnProto,
    wire_consts: &[Const],
    consts: &mut Vec<Value>,
    max_block_cost: &mut u32,
) -> ExecFn {
    let len = f.code.len();

    // Pass 1: basic-block boundaries — function entry, every jump
    // target, every post-terminator position, and cap-splits of long
    // straight-line runs.
    let mut starts = BTreeSet::new();
    starts.insert(0);
    starts.insert(len);
    for (i, &op) in f.code.iter().enumerate() {
        if is_terminator(op) {
            starts.insert(i + 1);
        }
        match op {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => {
                let t = t as usize;
                if t <= len {
                    starts.insert(t);
                }
            }
            _ => {}
        }
    }
    let natural: Vec<usize> = starts.iter().copied().collect();
    for w in natural.windows(2) {
        let mut at = w[0] + MAX_BLOCK_WIRE_OPS;
        while at < w[1] {
            starts.insert(at);
            at += MAX_BLOCK_WIRE_OPS;
        }
    }
    let starts: Vec<usize> = starts.iter().copied().collect();

    // Pass 2: emit, fusing within blocks; `map[wire_pc] -> lowered pc`.
    let mut code: Vec<ExecOp> = Vec::with_capacity(len + starts.len());
    let mut map = vec![0u32; len + 1];
    for w in starts.windows(2) {
        let (start, end) = (w[0], w[1]);
        let cost = (end - start) as u32;
        *max_block_cost = (*max_block_cost).max(cost);
        let fence_at = code.len() as u32;
        code.push(ExecOp::Fence(cost));
        let mut pc = start;
        while pc < end {
            let at = code.len() as u32;
            let (op, used) = fuse_at(&f.code[pc..end], wire_consts, consts);
            code.push(op);
            for k in 0..used {
                map[pc + k] = at;
            }
            pc += used;
        }
        // A jump to the block start must land on the Fence (charging the
        // block), not on its first instruction.
        map[start] = fence_at;
    }
    map[len] = code.len() as u32;

    // Pass 3: retarget jumps into the lowered index space. In-range
    // targets are always block starts, so they land on a Fence;
    // off-the-end targets (legal per `Program::validate`) map past the
    // lowered code and fault as "pc ran off the end", like the legacy
    // interpreter.
    let off_end = code.len() as u32;
    for op in &mut code {
        match op {
            ExecOp::Jump(t)
            | ExecOp::JumpIfFalse(t)
            | ExecOp::JumpIfTrue(t)
            | ExecOp::LoadConstLtJf { target: t, .. } => {
                let wire_t = *t as usize;
                *t = if wire_t <= len { map[wire_t] } else { off_end };
            }
            _ => {}
        }
    }

    ExecFn {
        code,
        n_locals: f.n_locals,
    }
}

/// Tries each fusion window (longest first) at the head of `w`, which
/// never extends past the current block. Returns the lowered op and how
/// many wire ops it consumed.
fn fuse_at(w: &[Op], wire_consts: &[Const], consts: &mut Vec<Value>) -> (ExecOp, usize) {
    if w.len() >= 4 {
        match w[..4] {
            [Op::Load(a), Op::Load(b), Op::Add, Op::Store(dst)] => {
                return (ExecOp::LoadLoadAddStore { a, b, dst }, 4);
            }
            [Op::Load(slot), Op::Const(c), Op::Add, Op::Store(dst)]
                if (c as usize) < wire_consts.len() =>
            {
                return (
                    ExecOp::LoadConstAddStore {
                        slot,
                        cidx: c as u32,
                        dst,
                    },
                    4,
                );
            }
            [Op::Load(slot), Op::Const(c), Op::Lt, Op::JumpIfFalse(target)]
                if (c as usize) < wire_consts.len() =>
            {
                return (
                    ExecOp::LoadConstLtJf {
                        slot,
                        cidx: c as u32,
                        target,
                    },
                    4,
                );
            }
            _ => {}
        }
    }
    if w.len() >= 3 {
        if let [Op::Const(i), Op::Const(j), op] = w[..3] {
            if let Some(folded) = fold_consts(i, j, op, wire_consts, consts) {
                return (folded, 3);
            }
        }
    }
    if w.len() >= 2 {
        if let [Op::Const(c), Op::CallBuiltin { builtin, argc }] = w[..2] {
            if (c as usize) < wire_consts.len() {
                return (
                    ExecOp::ConstCallBuiltin {
                        cidx: c as u32,
                        builtin,
                        argc,
                    },
                    2,
                );
            }
        }
    }
    (mirror(w[0], wire_consts.len()), 1)
}

/// Folds `Const i; Const j; op` when the result is statically known
/// *and* the legacy interpreter could not fault on it. Division/modulo
/// (zero divisors) and mixed-type comparisons are left to run time.
fn fold_consts(
    i: u16,
    j: u16,
    op: Op,
    wire_consts: &[Const],
    consts: &mut Vec<Value>,
) -> Option<ExecOp> {
    let a = const_value(wire_consts.get(i as usize)?);
    let b = const_value(wire_consts.get(j as usize)?);
    match op {
        Op::Add => add_values(&a, &b).ok().map(|v| push_const(consts, v)),
        Op::Sub | Op::Mul => match (&a, &b) {
            (Value::Int(x), Value::Int(y)) => {
                let v = if matches!(op, Op::Sub) {
                    x.wrapping_sub(*y)
                } else {
                    x.wrapping_mul(*y)
                };
                Some(push_const(consts, Value::Int(v)))
            }
            _ => None,
        },
        Op::Eq => Some(bool_op(a == b)),
        Op::Ne => Some(bool_op(a != b)),
        Op::Lt | Op::Le | Op::Gt | Op::Ge => {
            let ord = match (&a, &b) {
                (Value::Int(x), Value::Int(y)) => x.cmp(y),
                (Value::Str(x), Value::Str(y)) => x.cmp(y),
                _ => return None,
            };
            Some(bool_op(match op {
                Op::Lt => ord.is_lt(),
                Op::Le => ord.is_le(),
                Op::Gt => ord.is_gt(),
                _ => ord.is_ge(),
            }))
        }
        _ => None,
    }
}

fn const_value(c: &Const) -> Value {
    match c {
        Const::Int(v) => Value::Int(*v),
        Const::Str(s) => Value::Str(s.clone()),
    }
}

fn bool_op(b: bool) -> ExecOp {
    if b {
        ExecOp::True
    } else {
        ExecOp::False
    }
}

/// Interns `v` in the lowered constant pool, reusing an equal entry.
fn push_const(consts: &mut Vec<Value>, v: Value) -> ExecOp {
    if let Some(i) = consts.iter().position(|c| *c == v) {
        return ExecOp::Const(i as u32);
    }
    consts.push(v);
    ExecOp::Const((consts.len() - 1) as u32)
}

/// 1:1 lowering for everything outside a fusion window.
fn mirror(op: Op, n_wire_consts: usize) -> ExecOp {
    match op {
        // Wire constant indices are validated at decode, but programs
        // built in memory can carry bad ones. The lowered pool is the
        // wire pool *plus folded extras*, so an out-of-range wire index
        // must not be allowed to alias a folded constant — it lowers to
        // the op that raises the legacy "bad constant index" fault.
        Op::Const(i) if (i as usize) >= n_wire_consts => ExecOp::BadConst,
        Op::Const(i) => ExecOp::Const(u32::from(i)),
        Op::Nil => ExecOp::Nil,
        Op::True => ExecOp::True,
        Op::False => ExecOp::False,
        Op::Load(s) => ExecOp::Load(s),
        Op::Store(s) => ExecOp::Store(s),
        Op::Pop => ExecOp::Pop,
        Op::Dup => ExecOp::Dup,
        Op::Add => ExecOp::Add,
        Op::Sub => ExecOp::Sub,
        Op::Mul => ExecOp::Mul,
        Op::Div => ExecOp::Div,
        Op::Mod => ExecOp::Mod,
        Op::Neg => ExecOp::Neg,
        Op::Not => ExecOp::Not,
        Op::Eq => ExecOp::Eq,
        Op::Ne => ExecOp::Ne,
        Op::Lt => ExecOp::Lt,
        Op::Le => ExecOp::Le,
        Op::Gt => ExecOp::Gt,
        Op::Ge => ExecOp::Ge,
        Op::Jump(t) => ExecOp::Jump(t),
        Op::JumpIfFalse(t) => ExecOp::JumpIfFalse(t),
        Op::JumpIfTrue(t) => ExecOp::JumpIfTrue(t),
        Op::MakeList(n) => ExecOp::MakeList(n),
        Op::Index => ExecOp::Index,
        Op::Call { fn_idx, argc } => ExecOp::Call { fn_idx, argc },
        Op::CallBuiltin { builtin, argc } => ExecOp::CallBuiltin { builtin, argc },
        Op::Return => ExecOp::Return,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    #[test]
    fn exec_ops_are_small() {
        // The wire `Op` must stay register-sized (≤ 8 bytes, asserted
        // in bytecode.rs) because it is the interchange format copied
        // into encode buffers and analysis tables. `ExecOp` trades that
        // for wider operands — u32 constant indices and three-operand
        // fused forms — and is allowed up to one cache-line half.
        assert!(
            std::mem::size_of::<ExecOp>() <= 16,
            "{}",
            std::mem::size_of::<ExecOp>()
        );
    }

    fn lowered_main(src: &str) -> (ExecProgram, usize) {
        let p = compile_source(src).unwrap();
        let main = p.main_index();
        (ExecProgram::lower(&p), main)
    }

    #[test]
    fn loop_header_and_counter_bump_fuse() {
        let (exec, main) = lowered_main("fn main() { let i = 0; while (i < 10) { i = i + 1; } }");
        let code = &exec.fns[main].code;
        assert!(
            code.iter()
                .any(|op| matches!(op, ExecOp::LoadConstLtJf { .. })),
            "{code:?}"
        );
        assert!(
            code.iter()
                .any(|op| matches!(op, ExecOp::LoadConstAddStore { .. })),
            "{code:?}"
        );
    }

    #[test]
    fn local_sum_fuses() {
        let (exec, main) =
            lowered_main("fn main() { let a = 1; let b = 2; let c = 0; c = a + b; }");
        assert!(
            exec.fns[main]
                .code
                .iter()
                .any(|op| matches!(op, ExecOp::LoadLoadAddStore { .. })),
            "{:?}",
            exec.fns[main].code
        );
    }

    #[test]
    fn const_builtin_fuses() {
        let (exec, main) = lowered_main(r#"fn main() { exit(0); }"#);
        assert!(
            exec.fns[main]
                .code
                .iter()
                .any(|op| matches!(op, ExecOp::ConstCallBuiltin { .. })),
            "{:?}",
            exec.fns[main].code
        );
    }

    #[test]
    fn constants_fold() {
        let (exec, main) = lowered_main("fn main() { let x = 2 + 3; }");
        let code = &exec.fns[main].code;
        assert!(!code.iter().any(|op| matches!(op, ExecOp::Add)), "{code:?}");
        assert!(exec.consts.contains(&Value::Int(5)), "{:?}", exec.consts);
    }

    #[test]
    fn division_by_constant_zero_is_not_folded() {
        let (exec, main) = lowered_main("fn main() { let x = 1 / 0; }");
        assert!(
            exec.fns[main]
                .code
                .iter()
                .any(|op| matches!(op, ExecOp::Div)),
            "{:?}",
            exec.fns[main].code
        );
    }

    #[test]
    fn every_block_starts_with_a_fence_and_costs_cover_the_wire() {
        // Total fuel charged on a straight-line path equals the wire
        // instruction count: the sum of all fence costs equals the
        // function's wire length.
        let p = compile_source(
            r#"
            fn helper(x) { return x * 2; }
            fn main() {
                let total = 0;
                let i = 0;
                while (i < 10) { total = total + helper(i); i = i + 1; }
                display("total " + str(total));
                exit(0);
            }
            "#,
        )
        .unwrap();
        let exec = ExecProgram::lower(&p);
        for (f, wire) in exec.fns.iter().zip(p.functions()) {
            assert!(matches!(f.code[0], ExecOp::Fence(_)), "{:?}", f.code);
            let fenced: u32 = f
                .code
                .iter()
                .filter_map(|op| match op {
                    ExecOp::Fence(c) => Some(*c),
                    _ => None,
                })
                .sum();
            assert_eq!(fenced as usize, wire.code.len());
        }
        assert!(exec.max_block_cost >= 1);
    }

    #[test]
    fn long_straightline_blocks_are_capped() {
        let body: String = (0..200).map(|i| format!("let x{i} = {i};")).collect();
        let (exec, main) = lowered_main(&format!("fn main() {{ {body} }}"));
        for op in &exec.fns[main].code {
            if let ExecOp::Fence(c) = op {
                assert!(*c as usize <= MAX_BLOCK_WIRE_OPS, "block cost {c}");
            }
        }
    }

    #[test]
    fn jump_targets_land_on_fences() {
        let (exec, main) = lowered_main(
            r#"fn main() {
                let i = 0;
                while (i < 3) { if (i == 1) { display("mid"); } i = i + 1; }
            }"#,
        );
        let code = &exec.fns[main].code;
        for op in code {
            let t = match op {
                ExecOp::Jump(t)
                | ExecOp::JumpIfFalse(t)
                | ExecOp::JumpIfTrue(t)
                | ExecOp::LoadConstLtJf { target: t, .. } => *t as usize,
                _ => continue,
            };
            assert!(
                t == code.len() || matches!(code[t], ExecOp::Fence(_)),
                "target {t} in {code:?}"
            );
        }
    }
}
