//! The AST → bytecode compiler.

use std::collections::HashMap;

use crate::ast::{BinaryOp, Block, Expr, FnDef, Stmt, UnaryOp};
use crate::program::{Const, FnProto, Program};
use crate::{Builtin, CompileError, Op};

/// Compiles parsed function definitions into a [`Program`].
///
/// # Errors
///
/// [`CompileError`] on undefined names, arity mismatches, a missing
/// `main`, or resource-limit overflows.
pub fn compile(items: &[FnDef]) -> Result<Program, CompileError> {
    // Pass 1: the function table, so calls can be forward references.
    let mut fn_indices: HashMap<&str, u16> = HashMap::new();
    for (i, f) in items.iter().enumerate() {
        if fn_indices.insert(&f.name, i as u16).is_some() {
            return Err(CompileError::DuplicateFunction {
                name: f.name.clone(),
            });
        }
    }
    let main_idx = *fn_indices.get("main").ok_or(CompileError::NoMain)?;
    if !items[main_idx as usize].params.is_empty() {
        return Err(CompileError::ArityMismatch {
            name: "main".to_owned(),
            expected: 0,
            got: items[main_idx as usize].params.len(),
        });
    }

    // Pass 2: compile bodies against a shared constant pool.
    let mut pool = ConstPool::default();
    let mut functions = Vec::with_capacity(items.len());
    for f in items {
        functions.push(FnCompiler::new(items, &fn_indices, &mut pool).compile_fn(f)?);
    }

    let program = Program::from_parts(pool.constants, functions, main_idx);
    debug_assert!(
        program.validate().is_ok(),
        "compiler emitted invalid bytecode"
    );
    Ok(program)
}

#[derive(Default)]
struct ConstPool {
    constants: Vec<Const>,
    int_index: HashMap<i64, u16>,
    str_index: HashMap<String, u16>,
}

impl ConstPool {
    fn intern_int(&mut self, v: i64) -> Result<u16, CompileError> {
        if let Some(&i) = self.int_index.get(&v) {
            return Ok(i);
        }
        let i = self.push(Const::Int(v))?;
        self.int_index.insert(v, i);
        Ok(i)
    }

    fn intern_str(&mut self, s: &str) -> Result<u16, CompileError> {
        if let Some(&i) = self.str_index.get(s) {
            return Ok(i);
        }
        let i = self.push(Const::Str(s.to_owned()))?;
        self.str_index.insert(s.to_owned(), i);
        Ok(i)
    }

    fn push(&mut self, c: Const) -> Result<u16, CompileError> {
        let idx = self.constants.len();
        if idx > u16::MAX as usize {
            return Err(CompileError::TooManyConstants);
        }
        self.constants.push(c);
        Ok(idx as u16)
    }
}

struct FnCompiler<'a> {
    items: &'a [FnDef],
    fn_indices: &'a HashMap<&'a str, u16>,
    pool: &'a mut ConstPool,
    code: Vec<Op>,
    /// Lexical scopes: innermost last. Each maps name → slot.
    scopes: Vec<HashMap<String, u16>>,
    next_slot: u16,
    /// (break-patch-sites, continue-target) per enclosing loop.
    loops: Vec<LoopCtx>,
}

struct LoopCtx {
    start: u32,
    break_sites: Vec<usize>,
}

impl<'a> FnCompiler<'a> {
    fn new(
        items: &'a [FnDef],
        fn_indices: &'a HashMap<&'a str, u16>,
        pool: &'a mut ConstPool,
    ) -> Self {
        FnCompiler {
            items,
            fn_indices,
            pool,
            code: Vec::new(),
            scopes: vec![HashMap::new()],
            next_slot: 0,
            loops: Vec::new(),
        }
    }

    fn compile_fn(mut self, f: &FnDef) -> Result<FnProto, CompileError> {
        for param in &f.params {
            self.declare(param)?;
        }
        self.block(&f.body)?;
        // Implicit `return nil` falling off the end.
        self.code.push(Op::Nil);
        self.code.push(Op::Return);
        Ok(FnProto {
            name: f.name.clone(),
            arity: f.params.len() as u8,
            n_locals: self.next_slot,
            code: self.code,
        })
    }

    fn declare(&mut self, name: &str) -> Result<u16, CompileError> {
        let slot = self.next_slot;
        self.next_slot = self
            .next_slot
            .checked_add(1)
            .ok_or(CompileError::TooManyLocals)?;
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name.to_owned(), slot);
        Ok(slot)
    }

    fn lookup(&self, name: &str) -> Option<u16> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn block(&mut self, block: &Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let { name, value } => {
                self.expr(value)?;
                let slot = self.declare(name)?;
                self.code.push(Op::Store(slot));
            }
            Stmt::Assign { name, value } => {
                let slot = self
                    .lookup(name)
                    .ok_or_else(|| CompileError::UndefinedVariable { name: name.clone() })?;
                self.expr(value)?;
                self.code.push(Op::Store(slot));
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.expr(cond)?;
                let to_else = self.emit_patch(Op::JumpIfFalse(0));
                self.block(then_block)?;
                match else_block {
                    Some(else_block) => {
                        let to_end = self.emit_patch(Op::Jump(0));
                        self.patch(to_else);
                        self.block(else_block)?;
                        self.patch(to_end);
                    }
                    None => self.patch(to_else),
                }
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                self.expr(cond)?;
                let to_end = self.emit_patch(Op::JumpIfFalse(0));
                self.loops.push(LoopCtx {
                    start,
                    break_sites: Vec::new(),
                });
                self.block(body)?;
                self.code.push(Op::Jump(start));
                let ctx = self.loops.pop().expect("loop context pushed above");
                self.patch(to_end);
                for site in ctx.break_sites {
                    self.patch(site);
                }
            }
            Stmt::Return(value) => {
                match value {
                    Some(e) => self.expr(e)?,
                    None => self.code.push(Op::Nil),
                }
                self.code.push(Op::Return);
            }
            Stmt::Break => {
                if self.loops.is_empty() {
                    return Err(CompileError::NotInLoop { keyword: "break" });
                }
                let site = self.emit_patch(Op::Jump(0));
                self.loops
                    .last_mut()
                    .expect("checked nonempty")
                    .break_sites
                    .push(site);
            }
            Stmt::Continue => {
                let start = self
                    .loops
                    .last()
                    .ok_or(CompileError::NotInLoop {
                        keyword: "continue",
                    })?
                    .start;
                self.code.push(Op::Jump(start));
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.code.push(Op::Pop);
            }
        }
        Ok(())
    }

    /// Emits a jump with a placeholder target, returning the patch site.
    fn emit_patch(&mut self, op: Op) -> usize {
        let site = self.code.len();
        self.code.push(op);
        site
    }

    /// Points the jump at `site` to the current position.
    fn patch(&mut self, site: usize) {
        let target = self.here();
        match &mut self.code[site] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => *t = target,
            other => unreachable!("patched a non-jump {other:?}"),
        }
    }

    fn expr(&mut self, expr: &Expr) -> Result<(), CompileError> {
        match expr {
            Expr::Int(v) => {
                let idx = self.pool.intern_int(*v)?;
                self.code.push(Op::Const(idx));
            }
            Expr::Str(s) => {
                let idx = self.pool.intern_str(s)?;
                self.code.push(Op::Const(idx));
            }
            Expr::Bool(true) => self.code.push(Op::True),
            Expr::Bool(false) => self.code.push(Op::False),
            Expr::Nil => self.code.push(Op::Nil),
            Expr::Var(name) => {
                let slot = self
                    .lookup(name)
                    .ok_or_else(|| CompileError::UndefinedVariable { name: name.clone() })?;
                self.code.push(Op::Load(slot));
            }
            Expr::List(items) => {
                for item in items {
                    self.expr(item)?;
                }
                self.code.push(Op::MakeList(items.len() as u16));
            }
            Expr::Index { target, index } => {
                self.expr(target)?;
                self.expr(index)?;
                self.code.push(Op::Index);
            }
            Expr::Unary { op, operand } => {
                self.expr(operand)?;
                self.code.push(match op {
                    UnaryOp::Neg => Op::Neg,
                    UnaryOp::Not => Op::Not,
                });
            }
            Expr::Binary {
                op: BinaryOp::And,
                lhs,
                rhs,
            } => {
                // a && b  ⇒  bool, short-circuit.
                self.expr(lhs)?;
                let lhs_false = self.emit_patch(Op::JumpIfFalse(0));
                self.expr(rhs)?;
                let rhs_false = self.emit_patch(Op::JumpIfFalse(0));
                self.code.push(Op::True);
                let to_end = self.emit_patch(Op::Jump(0));
                self.patch(lhs_false);
                self.patch(rhs_false);
                self.code.push(Op::False);
                self.patch(to_end);
            }
            Expr::Binary {
                op: BinaryOp::Or,
                lhs,
                rhs,
            } => {
                self.expr(lhs)?;
                let lhs_true = self.emit_patch(Op::JumpIfTrue(0));
                self.expr(rhs)?;
                let rhs_true = self.emit_patch(Op::JumpIfTrue(0));
                self.code.push(Op::False);
                let to_end = self.emit_patch(Op::Jump(0));
                self.patch(lhs_true);
                self.patch(rhs_true);
                self.code.push(Op::True);
                self.patch(to_end);
            }
            Expr::Binary { op, lhs, rhs } => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                self.code.push(match op {
                    BinaryOp::Add => Op::Add,
                    BinaryOp::Sub => Op::Sub,
                    BinaryOp::Mul => Op::Mul,
                    BinaryOp::Div => Op::Div,
                    BinaryOp::Mod => Op::Mod,
                    BinaryOp::Eq => Op::Eq,
                    BinaryOp::Ne => Op::Ne,
                    BinaryOp::Lt => Op::Lt,
                    BinaryOp::Le => Op::Le,
                    BinaryOp::Gt => Op::Gt,
                    BinaryOp::Ge => Op::Ge,
                    BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
                });
            }
            Expr::Call { name, args, .. } => {
                // User-defined functions shadow builtins.
                if let Some(&fn_idx) = self.fn_indices.get(name.as_str()) {
                    let expected = self.items[fn_idx as usize].params.len();
                    if args.len() != expected {
                        return Err(CompileError::ArityMismatch {
                            name: name.clone(),
                            expected,
                            got: args.len(),
                        });
                    }
                    for arg in args {
                        self.expr(arg)?;
                    }
                    self.code.push(Op::Call {
                        fn_idx,
                        argc: args.len() as u8,
                    });
                } else if let Some(builtin) = Builtin::from_name(name) {
                    if let Some(expected) = builtin.arity() {
                        if args.len() != expected {
                            return Err(CompileError::ArityMismatch {
                                name: name.clone(),
                                expected,
                                got: args.len(),
                            });
                        }
                    }
                    for arg in args {
                        self.expr(arg)?;
                    }
                    self.code.push(Op::CallBuiltin {
                        builtin,
                        argc: args.len() as u8,
                    });
                } else {
                    return Err(CompileError::UndefinedFunction { name: name.clone() });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    #[test]
    fn missing_main_rejected() {
        let err = compile_source("fn helper() { return 1; }").unwrap_err();
        assert!(matches!(
            err,
            crate::ScriptError::Compile(CompileError::NoMain)
        ));
    }

    #[test]
    fn main_with_params_rejected() {
        let err = compile_source("fn main(x) { return x; }").unwrap_err();
        assert!(matches!(
            err,
            crate::ScriptError::Compile(CompileError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn undefined_variable_rejected() {
        let err = compile_source("fn main() { let x = y; }").unwrap_err();
        assert!(matches!(
            err,
            crate::ScriptError::Compile(CompileError::UndefinedVariable { .. })
        ));
    }

    #[test]
    fn variable_out_of_scope_rejected() {
        let err = compile_source("fn main() { if (1) { let x = 1; } let y = x; }").unwrap_err();
        assert!(matches!(
            err,
            crate::ScriptError::Compile(CompileError::UndefinedVariable { .. })
        ));
    }

    #[test]
    fn undefined_function_rejected() {
        let err = compile_source("fn main() { frobnicate(); }").unwrap_err();
        assert!(matches!(
            err,
            crate::ScriptError::Compile(CompileError::UndefinedFunction { .. })
        ));
    }

    #[test]
    fn user_function_arity_checked() {
        let err = compile_source("fn f(a, b) { return a; } fn main() { f(1); }").unwrap_err();
        assert!(matches!(
            err,
            crate::ScriptError::Compile(CompileError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn builtin_arity_checked() {
        let err = compile_source("fn main() { bc_len(); }").unwrap_err();
        assert!(matches!(
            err,
            crate::ScriptError::Compile(CompileError::ArityMismatch {
                expected: 1,
                got: 0,
                ..
            })
        ));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let err = compile_source("fn main() { break; }").unwrap_err();
        assert!(matches!(
            err,
            crate::ScriptError::Compile(CompileError::NotInLoop { keyword: "break" })
        ));
    }

    #[test]
    fn duplicate_functions_rejected() {
        let err = compile_source("fn main() { } fn main() { }").unwrap_err();
        assert!(matches!(
            err,
            crate::ScriptError::Compile(CompileError::DuplicateFunction { .. })
        ));
    }

    #[test]
    fn constants_are_interned() {
        let p = compile_source(r#"fn main() { let a = "x"; let b = "x"; let c = 5; let d = 5; }"#)
            .unwrap();
        assert_eq!(p.constants().len(), 2);
    }

    #[test]
    fn user_function_shadows_builtin() {
        // Defining `display` locally must compile to a Call, not CallBuiltin.
        let p = compile_source("fn display(x) { return x; } fn main() { display(1); }").unwrap();
        let main = &p.functions()[p.main_index()];
        assert!(main.code.iter().any(|op| matches!(op, Op::Call { .. })));
        assert!(!main
            .code
            .iter()
            .any(|op| matches!(op, Op::CallBuiltin { .. })));
    }

    #[test]
    fn compiled_programs_validate() {
        let p = compile_source(
            r#"
            fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
            fn main() {
                let i = 0;
                while (i < 5) {
                    if (i == 3) { break; }
                    if (i % 2 == 0 && i > 0 || false) { display(fib(i)); }
                    i = i + 1;
                }
            }
            "#,
        )
        .unwrap();
        assert!(p.validate().is_ok());
    }
}
