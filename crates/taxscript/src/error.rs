use std::fmt;

/// A lexical error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// A syntax error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A semantic error found while compiling the AST to bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// A variable was used before any `let` bound it.
    UndefinedVariable {
        /// The variable name.
        name: String,
    },
    /// A call targeted a name that is neither a builtin nor a defined
    /// function.
    UndefinedFunction {
        /// The function name.
        name: String,
    },
    /// A call had the wrong number of arguments.
    ArityMismatch {
        /// The function name.
        name: String,
        /// Parameters the function declares.
        expected: usize,
        /// Arguments the call supplied.
        got: usize,
    },
    /// `break` or `continue` appeared outside a loop.
    NotInLoop {
        /// `"break"` or `"continue"`.
        keyword: &'static str,
    },
    /// No `main` function was defined.
    NoMain,
    /// Two functions share a name.
    DuplicateFunction {
        /// The duplicated name.
        name: String,
    },
    /// More locals than the bytecode's 16-bit slot space.
    TooManyLocals,
    /// More constants than the constant pool can index.
    TooManyConstants,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UndefinedVariable { name } => write!(f, "undefined variable `{name}`"),
            CompileError::UndefinedFunction { name } => write!(f, "undefined function `{name}`"),
            CompileError::ArityMismatch {
                name,
                expected,
                got,
            } => {
                write!(f, "`{name}` takes {expected} arguments, {got} given")
            }
            CompileError::NotInLoop { keyword } => write!(f, "`{keyword}` outside of a loop"),
            CompileError::NoMain => write!(f, "no `main` function defined"),
            CompileError::DuplicateFunction { name } => {
                write!(f, "function `{name}` defined twice")
            }
            CompileError::TooManyLocals => write!(f, "function uses too many local variables"),
            CompileError::TooManyConstants => write!(f, "program uses too many constants"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A runtime fault inside the VM. Faults terminate the agent — the VM's
/// sandbox guarantee is that they can never escape as panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// An operator was applied to operands of the wrong type.
    TypeError {
        /// The operation attempted.
        op: &'static str,
        /// Rendered operand types.
        got: String,
    },
    /// Integer division or modulo by zero.
    DivisionByZero,
    /// The instruction budget was exhausted — the sandbox's CPU limit.
    OutOfFuel,
    /// The call stack exceeded its depth limit.
    StackOverflow,
    /// A builtin received the wrong number of arguments.
    BuiltinArity {
        /// The builtin's name.
        name: &'static str,
        /// Expected argument count.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// A builtin received an argument of the wrong type.
    BuiltinType {
        /// The builtin's name.
        name: &'static str,
        /// What was expected.
        expected: &'static str,
    },
    /// Malformed bytecode (bad jump target, constant index, …) — only
    /// possible for hand-crafted or corrupted programs, but contained as
    /// an error rather than a panic.
    CorruptProgram {
        /// Description of the corruption.
        detail: &'static str,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TypeError { op, got } => write!(f, "type error: cannot {op} {got}"),
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::OutOfFuel => write!(f, "agent exceeded its instruction budget"),
            RuntimeError::StackOverflow => write!(f, "call stack overflow"),
            RuntimeError::BuiltinArity {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "builtin `{name}` takes {expected} arguments, {got} given"
                )
            }
            RuntimeError::BuiltinType { name, expected } => {
                write!(f, "builtin `{name}` expected {expected}")
            }
            RuntimeError::CorruptProgram { detail } => write!(f, "corrupt program: {detail}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Any error from source text to a compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScriptError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error.
    Compile(CompileError),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex(e) => e.fmt(f),
            ScriptError::Parse(e) => e.fmt(f),
            ScriptError::Compile(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ScriptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScriptError::Lex(e) => Some(e),
            ScriptError::Parse(e) => Some(e),
            ScriptError::Compile(e) => Some(e),
        }
    }
}

impl From<LexError> for ScriptError {
    fn from(e: LexError) -> Self {
        ScriptError::Lex(e)
    }
}

impl From<ParseError> for ScriptError {
    fn from(e: ParseError) -> Self {
        ScriptError::Parse(e)
    }
}

impl From<CompileError> for ScriptError {
    fn from(e: CompileError) -> Self {
        ScriptError::Compile(e)
    }
}
