//! The TaxScript lexer.

use crate::LexError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// The kinds of TaxScript tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// String literal (escapes already processed).
    Str(String),
    /// Identifier.
    Ident(String),
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    /// `nil`
    Nil,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Str(_) => "string literal".to_owned(),
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Eof => "end of input".to_owned(),
            other => format!("`{}`", token_text(other)),
        }
    }
}

fn token_text(kind: &TokenKind) -> &'static str {
    match kind {
        TokenKind::Fn => "fn",
        TokenKind::Let => "let",
        TokenKind::If => "if",
        TokenKind::Else => "else",
        TokenKind::While => "while",
        TokenKind::Return => "return",
        TokenKind::Break => "break",
        TokenKind::Continue => "continue",
        TokenKind::True => "true",
        TokenKind::False => "false",
        TokenKind::Nil => "nil",
        TokenKind::LParen => "(",
        TokenKind::RParen => ")",
        TokenKind::LBrace => "{",
        TokenKind::RBrace => "}",
        TokenKind::LBracket => "[",
        TokenKind::RBracket => "]",
        TokenKind::Comma => ",",
        TokenKind::Semi => ";",
        TokenKind::Assign => "=",
        TokenKind::Plus => "+",
        TokenKind::Minus => "-",
        TokenKind::Star => "*",
        TokenKind::Slash => "/",
        TokenKind::Percent => "%",
        TokenKind::EqEq => "==",
        TokenKind::NotEq => "!=",
        TokenKind::Lt => "<",
        TokenKind::Le => "<=",
        TokenKind::Gt => ">",
        TokenKind::Ge => ">=",
        TokenKind::AndAnd => "&&",
        TokenKind::OrOr => "||",
        TokenKind::Bang => "!",
        _ => "?",
    }
}

/// Tokenizes TaxScript source. `//` starts a line comment.
///
/// # Errors
///
/// [`LexError`] on unterminated strings, bad escapes, overflowing integer
/// literals, or stray characters.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(tokens);
            };
            let kind = match b {
                b'0'..=b'9' => self.number()?,
                b'"' => self.string()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => self.symbol()?,
            };
            tokens.push(Token { kind, line, col });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, LexError> {
        let mut value: i64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            self.bump();
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as i64))
                .ok_or_else(|| self.err("integer literal overflows i64"))?;
        }
        Ok(TokenKind::Int(value))
    }

    fn string(&mut self) -> Result<TokenKind, LexError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(other) => {
                        return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                    }
                    None => return Err(self.err("unterminated string literal")),
                },
                Some(b'\n') => return Err(self.err("newline in string literal")),
                Some(b) => out.push(b as char),
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        match text {
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "nil" => TokenKind::Nil,
            other => TokenKind::Ident(other.to_owned()),
        }
    }

    fn symbol(&mut self) -> Result<TokenKind, LexError> {
        let b = self.bump().expect("peeked");
        let two = |lexer: &mut Self, second: u8, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(second) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        Ok(match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'=' => two(self, b'=', TokenKind::EqEq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::NotEq, TokenKind::Bang),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(self.err("expected `&&`"));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(self.err("expected `||`"));
                }
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("fn main while whilex"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident("main".into()),
                TokenKind::While,
                TokenKind::Ident("whilex".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds(r#"42 "a\nb""#),
            vec![
                TokenKind::Int(42),
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || = < >"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Assign,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // comment with * tokens\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"ab\ncd\"").is_err());
    }

    #[test]
    fn integer_overflow_detected() {
        assert!(lex("99999999999999999999").is_err());
        assert!(lex("9223372036854775807").is_ok());
    }

    #[test]
    fn stray_characters_rejected() {
        assert!(lex("@").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn escapes() {
        assert_eq!(
            kinds(r#""q\"t\\\n""#),
            vec![TokenKind::Str("q\"t\\\n".into()), TokenKind::Eof]
        );
        assert!(lex(r#""\x""#).is_err());
    }
}
