//! Recursive-descent parser for TaxScript.

use crate::ast::{BinaryOp, Block, Expr, FnDef, Stmt, UnaryOp};
use crate::lexer::{Token, TokenKind};
use crate::ParseError;

/// Parses a token stream (ending in `Eof`) into a list of function
/// definitions.
///
/// # Errors
///
/// [`ParseError`] on the first syntax error, with source position.
pub fn parse(tokens: &[Token]) -> Result<Vec<FnDef>, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.check(&TokenKind::Eof) {
        items.push(p.fn_def()?);
    }
    Ok(items)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        // The token stream always ends with Eof, so clamp.
        self.tokens
            .get(self.pos)
            .unwrap_or_else(|| self.tokens.last().expect("nonempty"))
    }

    fn check(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, ParseError> {
        if self.check(kind) {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {what}, found {}",
                self.peek().kind.describe()
            )))
        }
    }

    fn error(&self, message: String) -> ParseError {
        let t = self.peek();
        ParseError {
            line: t.line,
            col: t.col,
            message,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn fn_def(&mut self) -> Result<FnDef, ParseError> {
        let fn_token = self.expect(&TokenKind::Fn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                params.push(self.ident("parameter name")?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            body,
            line: fn_token.line,
        })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            if self.check(&TokenKind::Eof) {
                return Err(self.error("unterminated block: expected `}`".to_owned()));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // `}`
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match &self.peek().kind {
            TokenKind::Let => {
                self.bump();
                let name = self.ident("variable name")?;
                self.expect(&TokenKind::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Let { name, value })
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Return(value))
            }
            TokenKind::Break => {
                self.bump();
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Break)
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Continue)
            }
            // `ident = expr;` is an assignment; anything else is an
            // expression statement.
            TokenKind::Ident(_)
                if matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::Assign)
                ) =>
            {
                let name = self.ident("variable name")?;
                self.bump(); // `=`
                let value = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Assign { name, value })
            }
            _ => {
                let e = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::If, "`if`")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        let then_block = self.block()?;
        let else_block = if self.eat(&TokenKind::Else) {
            if self.check(&TokenKind::If) {
                // `else if`: wrap the nested if in a synthetic block.
                Some(Block {
                    stmts: vec![self.if_stmt()?],
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_block,
            else_block,
        })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.equality()?;
            lhs = Expr::Binary {
                op: BinaryOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.comparison()?;
        loop {
            let op = if self.eat(&TokenKind::EqEq) {
                BinaryOp::Eq
            } else if self.eat(&TokenKind::NotEq) {
                BinaryOp::Ne
            } else {
                return Ok(lhs);
            };
            let rhs = self.comparison()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = if self.eat(&TokenKind::Lt) {
                BinaryOp::Lt
            } else if self.eat(&TokenKind::Le) {
                BinaryOp::Le
            } else if self.eat(&TokenKind::Gt) {
                BinaryOp::Gt
            } else if self.eat(&TokenKind::Ge) {
                BinaryOp::Ge
            } else {
                return Ok(lhs);
            };
            let rhs = self.term()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = if self.eat(&TokenKind::Plus) {
                BinaryOp::Add
            } else if self.eat(&TokenKind::Minus) {
                BinaryOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.factor()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat(&TokenKind::Star) {
                BinaryOp::Mul
            } else if self.eat(&TokenKind::Slash) {
                BinaryOp::Div
            } else if self.eat(&TokenKind::Percent) {
                BinaryOp::Mod
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(self.unary()?),
            })
        } else if self.eat(&TokenKind::Bang) {
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(self.unary()?),
            })
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            if self.eat(&TokenKind::LBracket) {
                let index = self.expr()?;
                self.expect(&TokenKind::RBracket, "`]`")?;
                expr = Expr::Index {
                    target: Box::new(expr),
                    index: Box::new(index),
                };
            } else {
                return Ok(expr);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let token = self.peek().clone();
        match token.kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            TokenKind::Nil => {
                self.bump();
                Ok(Expr::Nil)
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.check(&TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket, "`]`")?;
                Ok(Expr::List(items))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    Ok(Expr::Call {
                        name,
                        args,
                        line: token.line,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.error(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Vec<FnDef>, ParseError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn figure4_agent_parses() {
        let src = r#"
            fn main() {
                while (1) {
                    display("Hello world");
                    let e = bc_remove("HOSTS", 0);
                    if (e == nil) { exit(0); }
                    if (go(e)) { display("Unable to reach " + e); }
                }
            }
        "#;
        let items = parse_src(src).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "main");
        assert!(items[0].params.is_empty());
    }

    #[test]
    fn precedence_binds_mul_over_add_over_cmp_over_and() {
        let items = parse_src("fn main() { let x = 1 + 2 * 3 < 7 && true; }").unwrap();
        let Stmt::Let { value, .. } = &items[0].body.stmts[0] else {
            panic!()
        };
        // Outermost must be `&&`.
        let Expr::Binary {
            op: BinaryOp::And,
            lhs,
            ..
        } = value
        else {
            panic!("expected And at top, got {value:?}")
        };
        let Expr::Binary {
            op: BinaryOp::Lt,
            lhs: add,
            ..
        } = lhs.as_ref()
        else {
            panic!("expected Lt under And")
        };
        assert!(matches!(
            add.as_ref(),
            Expr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn else_if_chains() {
        let items =
            parse_src("fn main() { if (1) { a(); } else if (2) { b(); } else { c(); } }").unwrap();
        let Stmt::If {
            else_block: Some(block),
            ..
        } = &items[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(matches!(block.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn assignment_vs_equality() {
        let items = parse_src("fn main() { let x = 0; x = x + 1; x == 2; }").unwrap();
        assert!(matches!(items[0].body.stmts[1], Stmt::Assign { .. }));
        assert!(matches!(
            items[0].body.stmts[2],
            Stmt::Expr(Expr::Binary {
                op: BinaryOp::Eq,
                ..
            })
        ));
    }

    #[test]
    fn list_literals_and_indexing() {
        let items = parse_src("fn main() { let l = [1, 2, 3]; let x = l[0]; }").unwrap();
        assert!(
            matches!(&items[0].body.stmts[0], Stmt::Let { value: Expr::List(v), .. } if v.len() == 3)
        );
        assert!(matches!(
            &items[0].body.stmts[1],
            Stmt::Let {
                value: Expr::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn missing_semicolon_reports_position() {
        let err = parse_src("fn main() { let x = 1 }").unwrap_err();
        assert!(err.message.contains("`;`"), "{}", err.message);
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unterminated_block_detected() {
        assert!(parse_src("fn main() { let x = 1;").is_err());
    }

    #[test]
    fn params_parse() {
        let items = parse_src("fn add(a, b) { return a + b; }").unwrap();
        assert_eq!(items[0].params, vec!["a", "b"]);
    }

    #[test]
    fn unary_chains() {
        let items = parse_src("fn main() { let x = --1; let y = !!true; }").unwrap();
        assert_eq!(items[0].body.stmts.len(), 2);
    }

    #[test]
    fn garbage_after_function_rejected() {
        assert!(parse_src("fn main() { } 42").is_err());
    }
}
