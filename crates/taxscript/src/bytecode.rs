//! The TaxScript bytecode instruction set: a small stack machine.

use serde::{Deserialize, Serialize};

use crate::Builtin;

/// One bytecode instruction.
///
/// Jump targets are absolute instruction indices within the owning
/// function's code vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Push constant `pool[idx]`.
    Const(u16),
    /// Push `nil`.
    Nil,
    /// Push `true`.
    True,
    /// Push `false`.
    False,
    /// Push a copy of local slot `idx`.
    Load(u16),
    /// Pop into local slot `idx`.
    Store(u16),
    /// Pop and discard.
    Pop,
    /// Arithmetic/logic; each pops its operands and pushes the result.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (errors on zero divisor).
    Div,
    /// Modulo (errors on zero divisor).
    Mod,
    /// Arithmetic negation.
    Neg,
    /// Logical not (truthiness-based).
    Not,
    /// Equality (`==`): structural, `false` across types.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than (ints and strings).
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Unconditional jump to instruction `target`.
    Jump(u32),
    /// Pop; jump to `target` if the popped value is falsy.
    JumpIfFalse(u32),
    /// Pop; jump if truthy (used by `||` short-circuit).
    JumpIfTrue(u32),
    /// Duplicate the top of stack.
    Dup,
    /// Pop `argc` arguments, call function `fn_idx`, push its return.
    Call {
        /// Index into the program's function table.
        fn_idx: u16,
        /// Argument count (must equal the callee's arity; checked at
        /// compile time, revalidated at run time for corrupt programs).
        argc: u8,
    },
    /// Pop `argc` arguments, invoke the builtin, push its result.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Argument count.
        argc: u8,
    },
    /// Pop `n` values, push a list of them (in evaluation order).
    MakeList(u16),
    /// Pop index and target, push `target[index]` (nil when out of range).
    Index,
    /// Return the top of stack from the current function.
    Return,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_small() {
        // The wire `Op` is the interchange format: it is copied into
        // encode buffers, analysis tables, and golden fixtures, so it
        // must stay register-sized (≤ 8 bytes). The execution-tier
        // `ExecOp` is a different type with different constraints —
        // u32 constant indices and multi-operand fused forms — and is
        // allowed up to 16 bytes; its bound is asserted separately by
        // `opt::tests::exec_ops_are_small`.
        assert!(
            std::mem::size_of::<Op>() <= 8,
            "{}",
            std::mem::size_of::<Op>()
        );
    }

    #[test]
    fn ops_compare() {
        assert_eq!(Op::Const(3), Op::Const(3));
        assert_ne!(Op::Const(3), Op::Const(4));
        assert_ne!(Op::Jump(0), Op::JumpIfFalse(0));
    }
}
