//! The builtin function table.
//!
//! Builtins fall into three groups, mirroring the TAX library (§3.1):
//!
//! * **briefcase** — `bc_get`, `bc_remove`, `bc_append`, `bc_set`,
//!   `bc_len`, `bc_clear`, `bc_has`: operate on the agent's own briefcase.
//! * **mobility & communication** — `go`, `spawn`, `activate`, `meet`,
//!   `await_bc`: dispatched to the host through
//!   [`HostHooks`](crate::HostHooks).
//! * **pure** — strings, lists, conversions, `display`, `exit`.

use serde::{Deserialize, Serialize};

/// Identifies a builtin in bytecode. The numeric discriminants are part of
/// the program wire format, so they are explicit and append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Builtin {
    Display = 0,
    Exit = 1,
    BcGet = 2,
    BcRemove = 3,
    BcAppend = 4,
    BcSet = 5,
    BcLen = 6,
    BcClear = 7,
    BcHas = 8,
    Go = 9,
    Spawn = 10,
    Activate = 11,
    Meet = 12,
    AwaitBc = 13,
    Str = 14,
    Int = 15,
    Len = 16,
    Substr = 17,
    Find = 18,
    Split = 19,
    Join = 20,
    StartsWith = 21,
    Contains = 22,
    Push = 23,
    Get = 24,
    NowMs = 25,
    HostName = 26,
}

impl Builtin {
    /// All builtins, for table-driven tests.
    pub const ALL: [Builtin; 27] = [
        Builtin::Display,
        Builtin::Exit,
        Builtin::BcGet,
        Builtin::BcRemove,
        Builtin::BcAppend,
        Builtin::BcSet,
        Builtin::BcLen,
        Builtin::BcClear,
        Builtin::BcHas,
        Builtin::Go,
        Builtin::Spawn,
        Builtin::Activate,
        Builtin::Meet,
        Builtin::AwaitBc,
        Builtin::Str,
        Builtin::Int,
        Builtin::Len,
        Builtin::Substr,
        Builtin::Find,
        Builtin::Split,
        Builtin::Join,
        Builtin::StartsWith,
        Builtin::Contains,
        Builtin::Push,
        Builtin::Get,
        Builtin::NowMs,
        Builtin::HostName,
    ];

    /// Looks a builtin up by its source-level name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "display" => Builtin::Display,
            "exit" => Builtin::Exit,
            "bc_get" => Builtin::BcGet,
            "bc_remove" => Builtin::BcRemove,
            "bc_append" => Builtin::BcAppend,
            "bc_set" => Builtin::BcSet,
            "bc_len" => Builtin::BcLen,
            "bc_clear" => Builtin::BcClear,
            "bc_has" => Builtin::BcHas,
            "go" => Builtin::Go,
            "spawn" => Builtin::Spawn,
            "activate" => Builtin::Activate,
            // The paper's low-level primitive names (§3.1) are aliases for
            // the communication builtins.
            "bc_send" => Builtin::Activate,
            "meet" => Builtin::Meet,
            "await_bc" => Builtin::AwaitBc,
            "bc_recv" => Builtin::AwaitBc,
            "str" => Builtin::Str,
            "int" => Builtin::Int,
            "len" => Builtin::Len,
            "substr" => Builtin::Substr,
            "find" => Builtin::Find,
            "split" => Builtin::Split,
            "join" => Builtin::Join,
            "starts_with" => Builtin::StartsWith,
            "contains" => Builtin::Contains,
            "push" => Builtin::Push,
            "get" => Builtin::Get,
            "now_ms" => Builtin::NowMs,
            "host_name" => Builtin::HostName,
            _ => return None,
        })
    }

    /// The source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Display => "display",
            Builtin::Exit => "exit",
            Builtin::BcGet => "bc_get",
            Builtin::BcRemove => "bc_remove",
            Builtin::BcAppend => "bc_append",
            Builtin::BcSet => "bc_set",
            Builtin::BcLen => "bc_len",
            Builtin::BcClear => "bc_clear",
            Builtin::BcHas => "bc_has",
            Builtin::Go => "go",
            Builtin::Spawn => "spawn",
            Builtin::Activate => "activate",
            Builtin::Meet => "meet",
            Builtin::AwaitBc => "await_bc",
            Builtin::Str => "str",
            Builtin::Int => "int",
            Builtin::Len => "len",
            Builtin::Substr => "substr",
            Builtin::Find => "find",
            Builtin::Split => "split",
            Builtin::Join => "join",
            Builtin::StartsWith => "starts_with",
            Builtin::Contains => "contains",
            Builtin::Push => "push",
            Builtin::Get => "get",
            Builtin::NowMs => "now_ms",
            Builtin::HostName => "host_name",
        }
    }

    /// The exact arity, or `None` for variadic (`display`).
    pub fn arity(self) -> Option<usize> {
        Some(match self {
            Builtin::Display => return None,
            Builtin::Exit => 1,
            Builtin::BcGet | Builtin::BcRemove | Builtin::BcAppend | Builtin::BcSet => 2,
            Builtin::BcLen | Builtin::BcClear | Builtin::BcHas => 1,
            Builtin::Go | Builtin::Spawn | Builtin::Activate | Builtin::Meet => 1,
            Builtin::AwaitBc => 1,
            Builtin::Str | Builtin::Int | Builtin::Len => 1,
            Builtin::Substr => 3,
            Builtin::Find | Builtin::Split | Builtin::Join => 2,
            Builtin::StartsWith | Builtin::Contains => 2,
            Builtin::Push | Builtin::Get => 2,
            Builtin::NowMs | Builtin::HostName => 0,
        })
    }

    /// Decodes a builtin from its wire discriminant.
    pub fn from_code(code: u8) -> Option<Builtin> {
        Builtin::ALL.get(code as usize).copied()
    }

    /// The wire discriminant.
    pub fn code(self) -> u8 {
        self as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for b in Builtin::ALL {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
    }

    #[test]
    fn codes_roundtrip_and_are_dense() {
        for (i, b) in Builtin::ALL.iter().enumerate() {
            assert_eq!(b.code() as usize, i, "ALL must be ordered by discriminant");
            assert_eq!(Builtin::from_code(b.code()), Some(*b));
        }
        assert_eq!(Builtin::from_code(Builtin::ALL.len() as u8), None);
    }

    #[test]
    fn unknown_names_are_none() {
        assert_eq!(Builtin::from_name("not_a_builtin"), None);
        assert_eq!(Builtin::from_name(""), None);
    }

    #[test]
    fn only_display_is_variadic() {
        for b in Builtin::ALL {
            assert_eq!(b.arity().is_none(), b == Builtin::Display, "{b:?}");
        }
    }
}
