//! The fused dispatcher — the execution half of the compile tier.
//!
//! Runs the lowered [`ExecOp`] form produced by [`crate::opt`] with the
//! interpreter state the legacy loop kept re-deriving held in locals:
//! `pc` is a plain integer, the current function's code slice is
//! re-borrowed only at calls and returns (not per instruction), locals
//! live in one contiguous arena indexed by per-frame bases (no per-call
//! `Vec` allocation), and fuel is charged per basic block at each
//! [`ExecOp::Fence`] instead of per instruction.
//!
//! Observable behavior is identical to [`Vm::run_legacy`]
//! (`crate::Vm::run_legacy`) — same outcomes, same `display` output,
//! same briefcase mutations, same error classes — proven by the
//! `prop_differential` suite. The one documented divergence is fuel
//! *granularity*: out-of-fuel (and the value-stack bound) is detected
//! at block entry, so under a budget too small to finish, the fused
//! tier reports [`RuntimeError::OutOfFuel`] at the start of the block
//! in which the legacy interpreter would have died — never more than
//! [`Program::max_block_cost`](crate::Program::max_block_cost) fuel
//! units early, and with identical totals at every block boundary and
//! every termination point.

use tacoma_briefcase::Briefcase;

use crate::opt::{ExecOp, ExecProgram};
use crate::vm::{
    add_values, call_builtin, compare_values, index_value, int_binop, pop, pop2, BuiltinResult,
    MAX_CALL_DEPTH, MAX_VALUE_STACK,
};
use crate::{HostHooks, Outcome, RuntimeError, Value};

/// One call-stack entry. Unlike the legacy `Frame`, locals are slices
/// of the shared arena, not an owned `Vec`.
#[derive(Debug, Clone, Copy)]
struct ExecFrame {
    fn_idx: u32,
    /// Where to resume in the *caller* once this frame returns.
    ret_pc: u32,
    stack_base: u32,
    locals_base: u32,
}

/// Reusable interpreter state: the value stack, the locals arena, the
/// frame stack, and a builtin-argument buffer.
///
/// A fresh launch's dominant allocations are exactly these vectors;
/// checking a warm `ExecScratch` out of a pool (see `tacoma-vm`'s
/// `VmPool`) lets an agent hop reuse the previous launch's capacity.
/// The scratch is cleared on every run, so reuse never leaks values
/// between agents.
#[derive(Debug, Default)]
pub struct ExecScratch {
    stack: Vec<Value>,
    locals: Vec<Value>,
    frames: Vec<ExecFrame>,
    args: Vec<Value>,
}

impl ExecScratch {
    /// An empty scratch; capacity grows with use.
    pub fn new() -> Self {
        ExecScratch::default()
    }

    /// Combined capacity of the buffers, in values — a rough measure of
    /// how "warm" this scratch is (used by pool stats and tests).
    pub fn capacity(&self) -> usize {
        self.stack.capacity() + self.locals.capacity() + self.args.capacity()
    }

    fn reset(&mut self) {
        self.stack.clear();
        self.locals.clear();
        self.frames.clear();
        self.args.clear();
    }
}

fn corrupt(detail: &'static str) -> RuntimeError {
    RuntimeError::CorruptProgram { detail }
}

/// Loads local `slot` of the current frame, with the legacy
/// interpreter's "bad local slot" fault for out-of-range slots.
#[inline]
fn slot_ref(
    locals: &[Value],
    base: usize,
    n_locals: u16,
    slot: u16,
) -> Result<&Value, RuntimeError> {
    if slot >= n_locals {
        return Err(corrupt("bad local slot"));
    }
    Ok(&locals[base + slot as usize])
}

/// Runs a lowered program to completion. `fuel` is decremented in
/// place so callers can observe consumption afterwards.
pub(crate) fn run_fused<H: HostHooks>(
    exec: &ExecProgram,
    hooks: &mut H,
    fuel: &mut u64,
    scratch: &mut ExecScratch,
    briefcase: &mut Briefcase,
) -> Result<Outcome, RuntimeError> {
    scratch.reset();
    let ExecScratch {
        stack,
        locals,
        frames,
        args,
    } = scratch;

    let main_idx = exec.main_idx as usize;
    let Some(mut cur) = exec.fns.get(main_idx) else {
        return Err(corrupt("bad call target"));
    };
    locals.resize(cur.n_locals as usize, Value::Nil);
    frames.push(ExecFrame {
        fn_idx: main_idx as u32,
        ret_pc: 0,
        stack_base: 0,
        locals_base: 0,
    });
    let mut pc = 0usize;
    let mut locals_base = 0usize;

    loop {
        let Some(&op) = cur.code.get(pc) else {
            return Err(corrupt("pc ran off the end"));
        };
        pc += 1;

        match op {
            ExecOp::Fence(cost) => {
                let cost = u64::from(cost);
                if *fuel < cost {
                    return Err(RuntimeError::OutOfFuel);
                }
                *fuel -= cost;
                if stack.len() > MAX_VALUE_STACK {
                    return Err(RuntimeError::StackOverflow);
                }
            }
            ExecOp::Const(i) => {
                let v = exec
                    .consts
                    .get(i as usize)
                    .ok_or(corrupt("bad constant index"))?;
                stack.push(v.clone());
            }
            ExecOp::BadConst => return Err(corrupt("bad constant index")),
            ExecOp::Nil => stack.push(Value::Nil),
            ExecOp::True => stack.push(Value::Bool(true)),
            ExecOp::False => stack.push(Value::Bool(false)),
            ExecOp::Load(slot) => {
                let v = slot_ref(locals, locals_base, cur.n_locals, slot)?.clone();
                stack.push(v);
            }
            ExecOp::Store(slot) => {
                let v = pop(stack)?;
                if slot >= cur.n_locals {
                    return Err(corrupt("bad local slot"));
                }
                locals[locals_base + slot as usize] = v;
            }
            ExecOp::Pop => {
                pop(stack)?;
            }
            ExecOp::Dup => {
                let v = stack.last().cloned().ok_or(corrupt("dup on empty stack"))?;
                stack.push(v);
            }
            ExecOp::Add => {
                let (a, b) = pop2(stack)?;
                stack.push(add_values(&a, &b)?);
            }
            ExecOp::Sub => int_binop(stack, "subtract", |a, b| Ok(a.wrapping_sub(b)))?,
            ExecOp::Mul => int_binop(stack, "multiply", |a, b| Ok(a.wrapping_mul(b)))?,
            ExecOp::Div => int_binop(stack, "divide", |a, b| {
                if b == 0 {
                    Err(RuntimeError::DivisionByZero)
                } else {
                    Ok(a.wrapping_div(b))
                }
            })?,
            ExecOp::Mod => int_binop(stack, "modulo", |a, b| {
                if b == 0 {
                    Err(RuntimeError::DivisionByZero)
                } else {
                    Ok(a.wrapping_rem(b))
                }
            })?,
            ExecOp::Neg => {
                let v = pop(stack)?;
                match v {
                    Value::Int(i) => stack.push(Value::Int(i.wrapping_neg())),
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "negate",
                            got: other.type_name().to_owned(),
                        })
                    }
                }
            }
            ExecOp::Not => {
                let v = pop(stack)?;
                stack.push(Value::Bool(!v.truthy()));
            }
            ExecOp::Eq => {
                let (a, b) = pop2(stack)?;
                stack.push(Value::Bool(a == b));
            }
            ExecOp::Ne => {
                let (a, b) = pop2(stack)?;
                stack.push(Value::Bool(a != b));
            }
            ExecOp::Lt => {
                let (a, b) = pop2(stack)?;
                stack.push(Value::Bool(compare_values(&a, &b, "<")?.is_lt()));
            }
            ExecOp::Le => {
                let (a, b) = pop2(stack)?;
                stack.push(Value::Bool(compare_values(&a, &b, "<=")?.is_le()));
            }
            ExecOp::Gt => {
                let (a, b) = pop2(stack)?;
                stack.push(Value::Bool(compare_values(&a, &b, ">")?.is_gt()));
            }
            ExecOp::Ge => {
                let (a, b) = pop2(stack)?;
                stack.push(Value::Bool(compare_values(&a, &b, ">=")?.is_ge()));
            }
            ExecOp::Jump(t) => pc = t as usize,
            ExecOp::JumpIfFalse(t) => {
                if !pop(stack)?.truthy() {
                    pc = t as usize;
                }
            }
            ExecOp::JumpIfTrue(t) => {
                if pop(stack)?.truthy() {
                    pc = t as usize;
                }
            }
            ExecOp::MakeList(n) => {
                let n = n as usize;
                if stack.len() < n {
                    return Err(corrupt("list underflow"));
                }
                let items = stack.split_off(stack.len() - n);
                stack.push(Value::List(items));
            }
            ExecOp::Index => {
                let (target, index) = pop2(stack)?;
                stack.push(index_value(&target, &index));
            }
            ExecOp::Call {
                fn_idx: callee,
                argc,
            } => {
                if frames.len() >= MAX_CALL_DEPTH {
                    return Err(RuntimeError::StackOverflow);
                }
                let Some(callee_fn) = exec.fns.get(callee as usize) else {
                    return Err(corrupt("bad call target"));
                };
                let argc = argc as usize;
                if stack.len() < argc {
                    return Err(corrupt("call underflow"));
                }
                let new_base = locals.len();
                locals.resize(new_base + callee_fn.n_locals as usize, Value::Nil);
                let split = stack.len() - argc;
                for (slot, arg) in stack.drain(split..).enumerate() {
                    if slot < callee_fn.n_locals as usize {
                        locals[new_base + slot] = arg;
                    }
                }
                frames.push(ExecFrame {
                    fn_idx: u32::from(callee),
                    ret_pc: pc as u32,
                    stack_base: split as u32,
                    locals_base: new_base as u32,
                });
                cur = callee_fn;
                pc = 0;
                locals_base = new_base;
            }
            ExecOp::Return => {
                let ret = pop(stack)?;
                let done = frames.pop().expect("frame stack nonempty");
                stack.truncate(done.stack_base as usize);
                locals.truncate(done.locals_base as usize);
                let Some(top) = frames.last() else {
                    return Ok(Outcome::Finished);
                };
                stack.push(ret);
                cur = &exec.fns[top.fn_idx as usize];
                pc = done.ret_pc as usize;
                locals_base = top.locals_base as usize;
            }
            ExecOp::CallBuiltin { builtin, argc } => {
                if let Some(outcome) = run_builtin(builtin, argc, stack, args, hooks, briefcase)? {
                    return Ok(outcome);
                }
            }
            ExecOp::ConstCallBuiltin {
                cidx,
                builtin,
                argc,
            } => {
                let v = exec
                    .consts
                    .get(cidx as usize)
                    .ok_or(corrupt("bad constant index"))?;
                stack.push(v.clone());
                if let Some(outcome) = run_builtin(builtin, argc, stack, args, hooks, briefcase)? {
                    return Ok(outcome);
                }
            }
            ExecOp::LoadLoadAddStore { a, b, dst } => {
                let n = cur.n_locals;
                let va = slot_ref(locals, locals_base, n, a)?;
                let vb = slot_ref(locals, locals_base, n, b)?;
                let v = add_values(va, vb)?;
                if dst >= n {
                    return Err(corrupt("bad local slot"));
                }
                locals[locals_base + dst as usize] = v;
            }
            ExecOp::LoadConstAddStore { slot, cidx, dst } => {
                let n = cur.n_locals;
                let va = slot_ref(locals, locals_base, n, slot)?;
                let vb = exec
                    .consts
                    .get(cidx as usize)
                    .ok_or(corrupt("bad constant index"))?;
                let v = match (va, vb) {
                    // The hot counter-bump shape, no clones.
                    (Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(*y)),
                    _ => add_values(va, vb)?,
                };
                if dst >= n {
                    return Err(corrupt("bad local slot"));
                }
                locals[locals_base + dst as usize] = v;
            }
            ExecOp::LoadConstLtJf { slot, cidx, target } => {
                let va = slot_ref(locals, locals_base, cur.n_locals, slot)?;
                let vb = exec
                    .consts
                    .get(cidx as usize)
                    .ok_or(corrupt("bad constant index"))?;
                if !compare_values(va, vb, "<")?.is_lt() {
                    pc = target as usize;
                }
            }
        }
    }
}

/// Shared builtin tail for `CallBuiltin` and `ConstCallBuiltin`:
/// pops arguments into the reusable buffer and dispatches. Returns
/// `Some(outcome)` for terminal builtins (`exit`, accepted `go`).
fn run_builtin<H: HostHooks>(
    builtin: crate::Builtin,
    argc: u8,
    stack: &mut Vec<Value>,
    args: &mut Vec<Value>,
    hooks: &mut H,
    briefcase: &mut Briefcase,
) -> Result<Option<Outcome>, RuntimeError> {
    let argc = argc as usize;
    if stack.len() < argc {
        return Err(corrupt("builtin underflow"));
    }
    args.clear();
    args.extend(stack.drain(stack.len() - argc..));
    match call_builtin(hooks, builtin, args, briefcase)? {
        BuiltinResult::Value(v) => {
            stack.push(v);
            Ok(None)
        }
        BuiltinResult::Terminal(outcome) => Ok(Some(outcome)),
    }
}
