//! Compiled programs and their wire format — the "binary" a mobile agent
//! carries in its briefcase `CODE` folder.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::opt::ExecProgram;
use crate::{Builtin, Op, RuntimeError};

/// Magic bytes opening an encoded program.
pub const PROGRAM_MAGIC: [u8; 4] = *b"TAXP";

const FORMAT_VERSION: u8 = 1;

/// A constant-pool entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(String),
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct FnProto {
    /// Source-level name.
    pub name: String,
    /// Number of parameters.
    pub arity: u8,
    /// Total local slots (parameters first).
    pub n_locals: u16,
    /// The function body.
    pub code: Vec<Op>,
}

/// A compiled TaxScript program: constant pool, function table, and the
/// index of `main`.
///
/// Also carries the lazily-lowered compile-tier form ([`crate::opt`])
/// behind a `OnceLock`: lowering is deterministic and happens at most
/// once per program, and clones share the already-lowered `Arc` — so a
/// cached `Program` (e.g. in the verified-script cache) pays for
/// lowering on its first launch only. The cache is invisible to
/// equality, ordering, and the wire format.
#[derive(Debug)]
pub struct Program {
    pub(crate) constants: Vec<Const>,
    pub(crate) functions: Vec<FnProto>,
    pub(crate) main_idx: u16,
    pub(crate) exec: OnceLock<Arc<ExecProgram>>,
}

impl Clone for Program {
    fn clone(&self) -> Self {
        let exec = OnceLock::new();
        if let Some(lowered) = self.exec.get() {
            let _ = exec.set(Arc::clone(lowered));
        }
        Program {
            constants: self.constants.clone(),
            functions: self.functions.clone(),
            main_idx: self.main_idx,
            exec,
        }
    }
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.constants == other.constants
            && self.functions == other.functions
            && self.main_idx == other.main_idx
    }
}

impl Program {
    /// Assembles a program; the compile-tier cache starts cold.
    pub(crate) fn from_parts(
        constants: Vec<Const>,
        functions: Vec<FnProto>,
        main_idx: u16,
    ) -> Program {
        Program {
            constants,
            functions,
            main_idx,
            exec: OnceLock::new(),
        }
    }

    /// The lowered compile-tier form, lowering on first use.
    pub(crate) fn exec(&self) -> &Arc<ExecProgram> {
        self.exec.get_or_init(|| Arc::new(ExecProgram::lower(self)))
    }

    /// Forces the compile-tier lowering now (e.g. to warm a cache entry
    /// off the hot path). Idempotent.
    pub fn prepare(&self) {
        let _ = self.exec();
    }

    /// The largest basic-block fuel charge in the lowered program — the
    /// documented bound on how much earlier than the legacy
    /// per-instruction interpreter the fused tier can report
    /// [`RuntimeError::OutOfFuel`]. Lowers the program if needed.
    pub fn max_block_cost(&self) -> u64 {
        u64::from(self.exec().max_block_cost)
    }

    /// The function table.
    pub fn functions(&self) -> &[FnProto] {
        &self.functions
    }

    /// Mutable access to the function table — used by tooling and tests
    /// that construct adversarial programs for the verifier. The VM
    /// revalidates what it runs, so this cannot break safety. Drops any
    /// cached lowering, since the caller may rewrite code.
    pub fn functions_mut(&mut self) -> &mut [FnProto] {
        self.exec = OnceLock::new();
        &mut self.functions
    }

    /// The constant pool.
    pub fn constants(&self) -> &[Const] {
        &self.constants
    }

    /// Index of `main` in the function table.
    pub fn main_index(&self) -> usize {
        self.main_idx as usize
    }

    /// Total instruction count across all functions (a size metric used by
    /// benchmarks).
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// The byte offset of instruction `pc` of function `fn_idx` within
    /// [`Program::encode`]'s output, so diagnostics can point into the
    /// wire artifact (`file:+byte` style). `None` if either index is out
    /// of range.
    pub fn byte_offset_of(&self, fn_idx: usize, pc: usize) -> Option<usize> {
        let proto = self.functions.get(fn_idx)?;
        if pc >= proto.code.len() {
            return None;
        }
        // Header: magic + version + constant pool.
        let mut at = PROGRAM_MAGIC.len() + 1 + 4;
        for c in &self.constants {
            at += match c {
                Const::Int(_) => 1 + 8,
                Const::Str(s) => 1 + 4 + s.len(),
            };
        }
        // Function table prefix + whole functions before `fn_idx`.
        at += 2 + 2;
        for f in &self.functions[..fn_idx] {
            at += fn_header_len(f) + f.code.iter().map(|&op| encoded_op_len(op)).sum::<usize>();
        }
        at += fn_header_len(proto);
        at += proto.code[..pc]
            .iter()
            .map(|&op| encoded_op_len(op))
            .sum::<usize>();
        Some(at)
    }

    /// Encodes the program to its briefcase wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&PROGRAM_MAGIC);
        out.push(FORMAT_VERSION);
        out.extend_from_slice(&(self.constants.len() as u32).to_le_bytes());
        for c in &self.constants {
            match c {
                Const::Int(v) => {
                    out.push(0);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Const::Str(s) => {
                    out.push(1);
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
        out.extend_from_slice(&(self.functions.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.main_idx.to_le_bytes());
        for f in &self.functions {
            out.extend_from_slice(&(f.name.len() as u16).to_le_bytes());
            out.extend_from_slice(f.name.as_bytes());
            out.push(f.arity);
            out.extend_from_slice(&f.n_locals.to_le_bytes());
            out.extend_from_slice(&(f.code.len() as u32).to_le_bytes());
            for op in &f.code {
                encode_op(*op, &mut out);
            }
        }
        out
    }

    /// Decodes and validates a program from wire bytes.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::CorruptProgram`] on any malformation: bad magic,
    /// truncation, out-of-range constant/jump/function references. A
    /// decoded program is safe to run.
    pub fn decode(wire: &[u8]) -> Result<Program, RuntimeError> {
        let mut r = Reader { buf: wire, pos: 0 };
        if r.take(4)? != PROGRAM_MAGIC {
            return Err(corrupt("bad magic"));
        }
        if r.u8()? != FORMAT_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let n_consts = r.u32()? as usize;
        if n_consts > 1 << 20 {
            return Err(corrupt("constant pool too large"));
        }
        let mut constants = Vec::with_capacity(n_consts.min(1024));
        for _ in 0..n_consts {
            match r.u8()? {
                0 => constants.push(Const::Int(i64::from_le_bytes(
                    r.take(8)?.try_into().expect("len 8"),
                ))),
                1 => {
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| corrupt("non-utf8 string constant"))?;
                    constants.push(Const::Str(s.to_owned()));
                }
                _ => return Err(corrupt("unknown constant tag")),
            }
        }
        let n_fns = r.u16()? as usize;
        let main_idx = r.u16()?;
        if (main_idx as usize) >= n_fns {
            return Err(corrupt("main index out of range"));
        }
        let mut functions = Vec::with_capacity(n_fns.min(1024));
        for _ in 0..n_fns {
            let name_len = r.u16()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| corrupt("non-utf8 function name"))?
                .to_owned();
            let arity = r.u8()?;
            let n_locals = r.u16()?;
            if (arity as u16) > n_locals {
                return Err(corrupt("arity exceeds local slots"));
            }
            let code_len = r.u32()? as usize;
            if code_len > 1 << 22 {
                return Err(corrupt("function body too large"));
            }
            let mut code = Vec::with_capacity(code_len.min(4096));
            for _ in 0..code_len {
                code.push(decode_op(&mut r)?);
            }
            functions.push(FnProto {
                name,
                arity,
                n_locals,
                code,
            });
        }
        if r.pos != wire.len() {
            return Err(corrupt("trailing bytes"));
        }
        let program = Program::from_parts(constants, functions, main_idx);
        program.validate()?;
        Ok(program)
    }

    /// Checks every instruction's static references; called by
    /// [`Program::decode`] and by the compiler's tests.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::CorruptProgram`] describing the first bad reference.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        for f in &self.functions {
            let code_len = f.code.len() as u32;
            for op in &f.code {
                match *op {
                    Op::Const(idx) if idx as usize >= self.constants.len() => {
                        return Err(corrupt("constant index out of range"));
                    }
                    Op::Load(slot) | Op::Store(slot) if slot >= f.n_locals => {
                        return Err(corrupt("local slot out of range"));
                    }
                    Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) if t > code_len => {
                        return Err(corrupt("jump target out of range"));
                    }
                    Op::Call { fn_idx, argc } => {
                        let Some(callee) = self.functions.get(fn_idx as usize) else {
                            return Err(corrupt("call target out of range"));
                        };
                        if callee.arity != argc {
                            return Err(corrupt("call arity mismatch"));
                        }
                    }
                    Op::CallBuiltin { builtin, argc } => {
                        if let Some(expected) = builtin.arity() {
                            if expected != argc as usize {
                                return Err(corrupt("builtin arity mismatch"));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} functions, {} constants, {} instructions",
            self.functions.len(),
            self.constants.len(),
            self.instruction_count()
        )?;
        for func in &self.functions {
            writeln!(
                f,
                "  fn {}({} args, {} locals): {} ops",
                func.name,
                func.arity,
                func.n_locals,
                func.code.len()
            )?;
        }
        Ok(())
    }
}

fn corrupt(detail: &'static str) -> RuntimeError {
    RuntimeError::CorruptProgram { detail }
}

/// Encoded size of a function header (name, arity, locals, code length).
fn fn_header_len(f: &FnProto) -> usize {
    2 + f.name.len() + 1 + 2 + 4
}

/// Encoded size of one instruction; must mirror [`encode_op`] exactly
/// (asserted by the `byte_offsets_match_encoding` test).
fn encoded_op_len(op: Op) -> usize {
    match op {
        Op::Const(_) | Op::Load(_) | Op::Store(_) | Op::MakeList(_) => 1 + 2,
        Op::Jump(_) | Op::JumpIfFalse(_) | Op::JumpIfTrue(_) => 1 + 4,
        Op::Call { .. } => 1 + 2 + 1,
        Op::CallBuiltin { .. } => 1 + 1 + 1,
        _ => 1,
    }
}

fn encode_op(op: Op, out: &mut Vec<u8>) {
    match op {
        Op::Const(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Op::Nil => out.push(1),
        Op::True => out.push(2),
        Op::False => out.push(3),
        Op::Load(i) => {
            out.push(4);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Op::Store(i) => {
            out.push(5);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Op::Pop => out.push(6),
        Op::Add => out.push(7),
        Op::Sub => out.push(8),
        Op::Mul => out.push(9),
        Op::Div => out.push(10),
        Op::Mod => out.push(11),
        Op::Neg => out.push(12),
        Op::Not => out.push(13),
        Op::Eq => out.push(14),
        Op::Ne => out.push(15),
        Op::Lt => out.push(16),
        Op::Le => out.push(17),
        Op::Gt => out.push(18),
        Op::Ge => out.push(19),
        Op::Jump(t) => {
            out.push(20);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Op::JumpIfFalse(t) => {
            out.push(21);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Op::JumpIfTrue(t) => {
            out.push(22);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Op::Dup => out.push(23),
        Op::Call { fn_idx, argc } => {
            out.push(24);
            out.extend_from_slice(&fn_idx.to_le_bytes());
            out.push(argc);
        }
        Op::CallBuiltin { builtin, argc } => {
            out.push(25);
            out.push(builtin.code());
            out.push(argc);
        }
        Op::MakeList(n) => {
            out.push(26);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Op::Index => out.push(27),
        Op::Return => out.push(28),
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<Op, RuntimeError> {
    Ok(match r.u8()? {
        0 => Op::Const(r.u16()?),
        1 => Op::Nil,
        2 => Op::True,
        3 => Op::False,
        4 => Op::Load(r.u16()?),
        5 => Op::Store(r.u16()?),
        6 => Op::Pop,
        7 => Op::Add,
        8 => Op::Sub,
        9 => Op::Mul,
        10 => Op::Div,
        11 => Op::Mod,
        12 => Op::Neg,
        13 => Op::Not,
        14 => Op::Eq,
        15 => Op::Ne,
        16 => Op::Lt,
        17 => Op::Le,
        18 => Op::Gt,
        19 => Op::Ge,
        20 => Op::Jump(r.u32()?),
        21 => Op::JumpIfFalse(r.u32()?),
        22 => Op::JumpIfTrue(r.u32()?),
        23 => Op::Dup,
        24 => Op::Call {
            fn_idx: r.u16()?,
            argc: r.u8()?,
        },
        25 => {
            let code = r.u8()?;
            let builtin = Builtin::from_code(code).ok_or_else(|| corrupt("unknown builtin"))?;
            Op::CallBuiltin {
                builtin,
                argc: r.u8()?,
            }
        }
        26 => Op::MakeList(r.u16()?),
        27 => Op::Index,
        28 => Op::Return,
        _ => return Err(corrupt("unknown opcode")),
    })
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RuntimeError> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt("truncated program"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RuntimeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RuntimeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, RuntimeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    fn sample() -> Program {
        compile_source(
            r#"
            fn helper(x) { return x * 2; }
            fn main() {
                let total = 0;
                let i = 0;
                while (i < 10) { total = total + helper(i); i = i + 1; }
                display("total " + str(total));
                exit(0);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let wire = p.encode();
        let back = Program::decode(&wire).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let wire = sample().encode();
        for cut in 0..wire.len() {
            assert!(
                Program::decode(&wire[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = sample().encode();
        wire.push(0);
        assert!(Program::decode(&wire).is_err());
    }

    #[test]
    fn corrupt_jump_target_rejected_at_decode() {
        let mut p = sample();
        let main = p.main_idx as usize;
        p.functions[main].code[0] = Op::Jump(1_000_000);
        assert!(Program::decode(&p.encode()).is_err());
    }

    #[test]
    fn corrupt_constant_index_rejected() {
        let mut p = sample();
        let main = p.main_idx as usize;
        p.functions[main].code[0] = Op::Const(u16::MAX);
        assert!(p.validate().is_err());
    }

    #[test]
    fn corrupt_call_arity_rejected() {
        let mut p = sample();
        let main = p.main_idx as usize;
        // helper has arity 1; force a 2-arg call.
        p.functions[main].code[0] = Op::Call { fn_idx: 0, argc: 2 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_summarizes() {
        let shown = sample().to_string();
        assert!(shown.contains("fn main"));
        assert!(shown.contains("fn helper"));
    }

    #[test]
    fn byte_offsets_match_encoding() {
        // Every (fn, pc) offset must land exactly where encode_op wrote
        // that instruction: re-encoding the suffix from the reported
        // offset reproduces the wire tail.
        let p = sample();
        let wire = p.encode();
        for (fn_idx, proto) in p.functions().iter().enumerate() {
            for pc in 0..proto.code.len() {
                let at = p.byte_offset_of(fn_idx, pc).expect("in range");
                let mut expected = Vec::new();
                encode_op(proto.code[pc], &mut expected);
                assert_eq!(
                    &wire[at..at + expected.len()],
                    &expected[..],
                    "fn {fn_idx} pc {pc} offset {at}"
                );
            }
        }
        assert_eq!(p.byte_offset_of(0, usize::MAX), None);
        assert_eq!(p.byte_offset_of(usize::MAX, 0), None);
    }
}
