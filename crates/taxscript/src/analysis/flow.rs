//! Whole-itinerary folder-flow analysis.
//!
//! The passes in [`super::lint`] reason about one script in isolation.
//! A mobile agent, though, is rarely one script: it is a **wrapper
//! chain** (the paper's §4 — `rwWebbot(mwWebbot(Webbot))`) travelling a
//! declared **itinerary** of hosts, and the security questions worth
//! asking span the whole journey: which folders of collected data are
//! aboard when the agent ships itself somewhere, does any hop lie outside
//! the grant the itinerary declares, does a wrapper quietly reach further
//! than the agent it wraps, and does the briefcase ever stop growing?
//!
//! This module answers those questions at the folder level:
//!
//! * [`flow`] condenses one verified program into a [`FlowSummary`] —
//!   every folder read/write/append/drain site, every ship site
//!   (`go`/`spawn`/`meet`/`activate`), and every travel loop that
//!   accumulates state. Summaries are cheap to join and are carried
//!   inside [`super::AnalysisReport`], so the per-briefcase itinerary
//!   check never rescans bytecode (the verified-script cache memoizes
//!   the expensive part).
//! * [`ItineraryGraph`] is the hop graph: declared hops in order, plus
//!   an edge for every constant travel target each program can reach.
//! * [`flow_lints`] joins a wrapper chain's summaries over a declared
//!   itinerary and emits TAX005–TAX008 (see [`super::lint::LintCode`]).
//!
//! The analysis is folder-granular and conservative: any written folder
//! counts as tainted (it may hold data collected en route), and a
//! constant travel target is attributed to every hop (TACOMA re-enters
//! `main` at each hop, so any hop may take any branch).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use tacoma_briefcase::folders;
use tacoma_uri::AgentUri;

use crate::program::Program;
use crate::{Builtin, Op};

use super::capabilities::{capabilities, constant_str_arg0};
use super::lint::{folded_reachability, is_input_folder, Diagnostic, LintCode};

/// Where a flow fact was observed: function name, instruction offset,
/// and the instruction's byte offset in the encoded program.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowSite {
    /// Source-level function name.
    pub function: String,
    /// Instruction offset within the function body.
    pub offset: usize,
    /// Byte offset within [`Program::encode`]'s output.
    pub byte_offset: Option<usize>,
}

impl fmt::Display for FlowSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {} @{}", self.function, self.offset)
    }
}

/// One site where the agent ships its briefcase somewhere: travel
/// (`go`/`spawn`) moves the whole briefcase to another host; local
/// communication (`meet`/`activate`) hands a copy to another agent.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShipSite {
    /// The shipping builtin.
    pub builtin: Builtin,
    /// The constant target URI, or `None` when computed at run time.
    pub target: Option<String>,
    /// Where the call appears.
    pub site: FlowSite,
}

impl ShipSite {
    /// Whether this site moves the briefcase across hosts.
    pub fn is_travel(&self) -> bool {
        matches!(self.builtin, Builtin::Go | Builtin::Spawn)
    }

    /// The host named by a constant target, if both are known. Local
    /// targets (`meet("ag_exec")`) have no host and cannot escape.
    pub fn target_host(&self) -> Option<String> {
        let target = self.target.as_deref()?;
        match target.parse::<AgentUri>() {
            Ok(uri) => uri.host().map(str::to_owned),
            Err(_) => None,
        }
    }
}

/// Evidence for TAX007: a reachable loop containing travel and an append
/// to `folder` that the loop never drains.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GrowthLoop {
    /// The folder accumulating an element per trip around the loop.
    pub folder: String,
    /// The append site inside the loop.
    pub site: FlowSite,
}

/// The folder-level flow summary of one verified program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowSummary {
    /// Folders read (`bc_get`/`bc_len`/`bc_has`), first site each.
    pub reads: BTreeMap<String, FlowSite>,
    /// Folders written (`bc_set`/`bc_append`), first site each.
    pub writes: BTreeMap<String, FlowSite>,
    /// Folders drained (`bc_remove`/`bc_clear`), first site each.
    pub drains: BTreeMap<String, FlowSite>,
    /// Every reachable ship site, in program order.
    pub ships: Vec<ShipSite>,
    /// A reachable folder op whose name is not a constant.
    pub dynamic_folders: bool,
    /// Travel loops that accumulate briefcase state (TAX007 evidence).
    pub growth_loops: Vec<GrowthLoop>,
}

impl FlowSummary {
    /// Whether any ship site moves the briefcase at all.
    pub fn ships_anywhere(&self) -> bool {
        !self.ships.is_empty()
    }

    /// Whether some reachable travel target is computed at run time.
    pub fn dynamic_travel(&self) -> bool {
        self.ships
            .iter()
            .any(|s| s.is_travel() && s.target.is_none())
    }

    /// Hosts named by constant travel/communication targets.
    pub fn constant_ship_hosts(&self) -> BTreeSet<String> {
        self.ships
            .iter()
            .filter_map(ShipSite::target_host)
            .collect()
    }
}

/// Extracts the [`FlowSummary`] of `program`, which should already have
/// passed [`super::verify`]. Only functions reachable from `main`
/// contribute, under the same folded CFG the lint pass uses.
pub fn flow(program: &Program) -> FlowSummary {
    let caps = capabilities(program);
    let mut summary = FlowSummary::default();

    for &fn_idx in &caps.reachable_functions {
        let Some(proto) = program.functions().get(fn_idx) else {
            continue;
        };
        let reachable = folded_reachability(program, &proto.code);
        let site = |pc: usize| FlowSite {
            function: proto.name.clone(),
            offset: pc,
            byte_offset: program.byte_offset_of(fn_idx, pc),
        };

        for (pc, &op) in proto.code.iter().enumerate() {
            if !reachable[pc] {
                continue;
            }
            let Op::CallBuiltin { builtin, argc } = op else {
                continue;
            };
            let arg0 = constant_str_arg0(program, &proto.code, pc, argc as usize);
            match builtin {
                Builtin::Go | Builtin::Spawn | Builtin::Meet | Builtin::Activate => {
                    summary.ships.push(ShipSite {
                        builtin,
                        target: arg0,
                        site: site(pc),
                    });
                }
                Builtin::BcGet | Builtin::BcLen | Builtin::BcHas => match arg0 {
                    Some(f) => {
                        summary.reads.entry(f).or_insert_with(|| site(pc));
                    }
                    None => summary.dynamic_folders = true,
                },
                Builtin::BcSet | Builtin::BcAppend => match arg0 {
                    Some(f) => {
                        summary.writes.entry(f).or_insert_with(|| site(pc));
                    }
                    None => summary.dynamic_folders = true,
                },
                Builtin::BcRemove | Builtin::BcClear => match arg0 {
                    Some(f) => {
                        // A remove also observes the folder's contents.
                        summary.reads.entry(f.clone()).or_insert_with(|| site(pc));
                        summary.drains.entry(f).or_insert_with(|| site(pc));
                    }
                    None => summary.dynamic_folders = true,
                },
                _ => {}
            }
        }

        growth_loops(program, fn_idx, &reachable, &mut summary.growth_loops);
    }
    summary.growth_loops.sort();
    summary.growth_loops.dedup();
    summary
}

/// Finds travel loops that accumulate state: for each reachable back edge
/// `pc → t`, the loop body `[t, pc]` fires once per appended folder when
/// it contains a reachable `go`/`spawn` **and** a constant `bc_append`
/// **and** no drain at all (`bc_remove`/`bc_clear`, constant or dynamic).
/// A loop that drains *some* folder is consuming its itinerary — the
/// Figure-4 pattern `bc_remove("HOSTS", 0)` — so the tour is bounded by
/// briefcase contents and the growth is, too.
fn growth_loops(program: &Program, fn_idx: usize, reachable: &[bool], out: &mut Vec<GrowthLoop>) {
    let proto = &program.functions()[fn_idx];
    let code = &proto.code;
    for (pc, &op) in code.iter().enumerate() {
        if !reachable[pc] {
            continue;
        }
        let (Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t)) = op else {
            continue;
        };
        let t = t as usize;
        if t > pc {
            continue;
        }
        let mut travels = false;
        let mut drains = false;
        let mut appended: BTreeMap<String, usize> = BTreeMap::new();
        for q in t..=pc {
            if !reachable[q] {
                continue;
            }
            let Op::CallBuiltin { builtin, argc } = code[q] else {
                continue;
            };
            match builtin {
                Builtin::Go | Builtin::Spawn => travels = true,
                Builtin::BcRemove | Builtin::BcClear => drains = true,
                Builtin::BcAppend => {
                    if let Some(f) = constant_str_arg0(program, code, q, argc as usize) {
                        appended.entry(f).or_insert(q);
                    }
                }
                _ => {}
            }
        }
        if travels && !drains {
            for (folder, q) in appended {
                out.push(GrowthLoop {
                    folder,
                    site: FlowSite {
                        function: proto.name.clone(),
                        offset: q,
                        byte_offset: program.byte_offset_of(fn_idx, q),
                    },
                });
            }
        }
    }
}

/// The hop graph of a journey: declared hops in itinerary order plus an
/// edge from every hop to every constant travel target (the agent
/// re-enters `main` at each hop, so any hop may take any travel branch).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ItineraryGraph {
    /// Hosts in declared visit order (duplicates preserved).
    pub declared: Vec<String>,
    /// Hosts named by constant travel targets across the chain.
    pub targets: BTreeSet<String>,
}

impl ItineraryGraph {
    /// Builds the graph from a declared itinerary (host names or agent
    /// URIs — `tacoma://h2/vm_script` contributes `h2`) and the chain's
    /// flow summaries.
    pub fn new(itinerary: &[String], chain: &[&FlowSummary]) -> Self {
        let declared = itinerary.iter().map(|e| host_of(e)).collect();
        let targets = chain.iter().flat_map(|s| s.constant_ship_hosts()).collect();
        ItineraryGraph { declared, targets }
    }

    /// Every host the journey may touch: declared hops plus constant
    /// targets.
    pub fn hosts(&self) -> BTreeSet<String> {
        let mut all: BTreeSet<String> = self.declared.iter().cloned().collect();
        all.extend(self.targets.iter().cloned());
        all
    }

    /// The set of hosts the declared itinerary covers (the grant TAX005
    /// checks ship targets against). Empty when nothing was declared.
    pub fn covered(&self) -> BTreeSet<String> {
        self.declared.iter().cloned().collect()
    }

    /// Whether the journey revisits a host: a declared hop repeats, or a
    /// constant target points back at a declared hop.
    pub fn has_cycle(&self) -> bool {
        let declared: BTreeSet<&String> = self.declared.iter().collect();
        declared.len() < self.declared.len() || self.targets.iter().any(|t| declared.contains(t))
    }
}

impl fmt::Display for ItineraryGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.declared.is_empty() {
            write!(f, "(no declared itinerary)")?;
        } else {
            write!(f, "{}", self.declared.join(" -> "))?;
        }
        if !self.targets.is_empty() {
            let t: Vec<&str> = self.targets.iter().map(String::as_str).collect();
            write!(f, " | constant targets: {}", t.join(" "))?;
        }
        if self.has_cycle() {
            write!(f, " | cyclic")?;
        }
        Ok(())
    }
}

/// The host named by an itinerary entry: a full agent URI contributes its
/// host part, anything else is taken as a bare host name.
fn host_of(entry: &str) -> String {
    match entry.parse::<AgentUri>() {
        Ok(uri) => uri.host().unwrap_or(entry).to_owned(),
        Err(_) => entry.to_owned(),
    }
}

fn diag(code: LintCode, site: &FlowSite, message: String) -> Diagnostic {
    Diagnostic {
        code,
        severity: code.severity(),
        function: site.function.clone(),
        offset: site.offset,
        byte_offset: site.byte_offset,
        message,
    }
}

/// Joins a wrapper chain's flow summaries over a declared itinerary and
/// emits the whole-journey lints TAX005–TAX008.
///
/// `chain` is outermost wrapper first; a single-element chain is a plain
/// unwrapped agent. `itinerary` entries are host names or agent URIs;
/// an empty itinerary means "nothing declared", which disables TAX005
/// (there is no grant to check against) but not the others. Findings are
/// sorted by function, offset, then code, like [`super::lint::lint`].
pub fn flow_lints(chain: &[&FlowSummary], itinerary: &[String]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let graph = ItineraryGraph::new(itinerary, chain);
    let covered = graph.covered();

    // Tainted data aboard: any folder some layer writes.
    let tainted: BTreeSet<&String> = chain.iter().flat_map(|s| s.writes.keys()).collect();

    // TAX005 — a constant ship target outside the declared itinerary
    // while written folders are aboard. Only meaningful when an
    // itinerary was declared and there is something to leak.
    if !covered.is_empty() && !tainted.is_empty() {
        let example = tainted.iter().next().expect("non-empty");
        for summary in chain {
            for ship in &summary.ships {
                let Some(host) = ship.target_host() else {
                    continue;
                };
                if !covered.contains(&host) {
                    out.push(diag(
                        LintCode::TaintedEscape,
                        &ship.site,
                        format!(
                            "{}(\"{}\") ships written folder \"{example}\" (and {} more) to host \"{host}\" outside the declared itinerary",
                            ship.builtin.name(),
                            ship.target.as_deref().unwrap_or("?"),
                            tainted.len().saturating_sub(1),
                        ),
                    ));
                }
            }
        }
    }

    // TAX006 — a wrapper reaching further than what it wraps: for each
    // adjacent (outer, inner) pair, every outer constant travel host must
    // be one the inner agent declares or the itinerary covers, and a
    // wrapper must not introduce dynamic travel over a static agent.
    for pair in chain.windows(2) {
        let (outer, inner) = (pair[0], pair[1]);
        let inner_hosts = inner.constant_ship_hosts();
        for ship in &outer.ships {
            if !ship.is_travel() {
                continue;
            }
            match ship.target_host() {
                Some(host) if !inner_hosts.contains(&host) && !covered.contains(&host) => {
                    out.push(diag(
                        LintCode::CapabilityWidening,
                        &ship.site,
                        format!(
                            "wrapper widens the wrapped agent's manifest: {}(\"{}\") reaches host \"{host}\" the inner agent never declares",
                            ship.builtin.name(),
                            ship.target.as_deref().unwrap_or("?"),
                        ),
                    ));
                }
                None if ship.target.is_none() && !inner.dynamic_travel() => {
                    out.push(diag(
                        LintCode::CapabilityWidening,
                        &ship.site,
                        format!(
                            "wrapper widens the wrapped agent's manifest: dynamic {}() over an agent with only static targets",
                            ship.builtin.name(),
                        ),
                    ));
                }
                _ => {}
            }
        }
    }

    // TAX007 — growth loops found per program: the hop graph has a cycle
    // (the travel loop itself) and the briefcase grows on every trip.
    for summary in chain {
        for g in &summary.growth_loops {
            out.push(diag(
                LintCode::UnboundedGrowth,
                &g.site,
                format!(
                    "folder \"{}\" grows on every trip around a travel loop that never drains the briefcase — unbounded along the hop cycle",
                    g.folder,
                ),
            ));
        }
    }

    // TAX008 — dead folders: written somewhere in the chain but read by
    // no layer, and the chain never ships the briefcase at all (a mobile
    // or communicating agent ships everything aboard). Dynamic folder
    // names make any read possible, so they suppress the lint.
    let ships_anywhere = chain.iter().any(|s| s.ships_anywhere());
    let dynamic = chain.iter().any(|s| s.dynamic_folders);
    if !ships_anywhere && !dynamic {
        let read: BTreeSet<&String> = chain.iter().flat_map(|s| s.reads.keys()).collect();
        for summary in chain {
            for (folder, site) in &summary.writes {
                if read.contains(folder) || is_input_folder(folder) || folder == folders::STATUS {
                    continue;
                }
                out.push(diag(
                    LintCode::DeadFolder,
                    site,
                    format!(
                        "folder \"{folder}\" is written but never read nor shipped on any path"
                    ),
                ));
            }
        }
    }

    out.sort_by(|a, b| (&a.function, a.offset, a.code).cmp(&(&b.function, b.offset, b.code)));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    fn flow_of(src: &str) -> FlowSummary {
        let p = compile_source(src).unwrap();
        super::super::verify(&p).expect("test programs must verify");
        flow(&p)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    fn hosts(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn summary_collects_sites() {
        let s = flow_of(
            r#"
            fn main() {
                bc_append("RESULTS", host_name());
                let n = bc_len("RESULTS");
                bc_remove("HOSTS", 0);
                if (go("tacoma://h2/vm_script")) { display("fail"); }
                exit(0);
            }
            "#,
        );
        assert!(s.writes.contains_key("RESULTS"));
        assert!(s.reads.contains_key("RESULTS"));
        assert!(s.drains.contains_key("HOSTS"));
        assert_eq!(s.ships.len(), 1);
        assert_eq!(s.constant_ship_hosts(), BTreeSet::from(["h2".to_owned()]));
        assert!(!s.dynamic_travel());
        let site = &s.writes["RESULTS"];
        assert_eq!(site.function, "main");
        assert!(site.byte_offset.is_some());
    }

    #[test]
    fn tax005_tainted_escape() {
        let s = flow_of(
            r#"
            fn main() {
                bc_append("SECRETS", host_name());
                if (go("tacoma://exfil/vm_script")) { exit(1); }
                exit(0);
            }
            "#,
        );
        let diags = flow_lints(&[&s], &hosts(&["home", "server"]));
        assert_eq!(codes(&diags), ["TAX005"], "{diags:?}");
        assert!(diags[0].message.contains("exfil"));
        assert!(diags[0].message.contains("SECRETS"));
    }

    #[test]
    fn tax005_quiet_when_itinerary_covers_target() {
        let s = flow_of(
            r#"
            fn main() {
                bc_append("RESULTS", host_name());
                if (go("tacoma://server/vm_script")) { exit(1); }
                exit(0);
            }
            "#,
        );
        assert!(flow_lints(&[&s], &hosts(&["home", "server"])).is_empty());
        // No declared itinerary: nothing to check against.
        assert!(flow_lints(&[&s], &[]).is_empty());
    }

    #[test]
    fn tax005_quiet_without_tainted_data() {
        let s = flow_of(r#"fn main() { go("tacoma://elsewhere/vm_script"); exit(0); }"#);
        assert!(flow_lints(&[&s], &hosts(&["home"])).is_empty());
    }

    #[test]
    fn tax006_wrapper_widens() {
        let inner =
            flow_of(r#"fn main() { if (go("tacoma://server/vm_script")) { exit(1); } exit(0); }"#);
        let outer = flow_of(r#"fn main() { spawn("tacoma://mirror/vm_script"); exit(0); }"#);
        let diags = flow_lints(&[&outer, &inner], &hosts(&["home", "server"]));
        assert_eq!(codes(&diags), ["TAX006"], "{diags:?}");
        assert!(diags[0].message.contains("mirror"));
    }

    #[test]
    fn tax006_quiet_when_wrapper_stays_within_manifest() {
        let inner =
            flow_of(r#"fn main() { if (go("tacoma://server/vm_script")) { exit(1); } exit(0); }"#);
        let outer =
            flow_of(r#"fn main() { if (go("tacoma://server/vm_script")) { exit(1); } exit(0); }"#);
        assert!(flow_lints(&[&outer, &inner], &hosts(&["home", "server"])).is_empty());
    }

    #[test]
    fn tax006_dynamic_over_static_widens() {
        let inner =
            flow_of(r#"fn main() { if (go("tacoma://server/vm_script")) { exit(1); } exit(0); }"#);
        let outer = flow_of(
            r#"
            fn main() {
                let e = bc_remove("HOSTS", 0);
                if (e == nil) { exit(0); }
                if (go(e)) { exit(1); }
                exit(0);
            }
            "#,
        );
        let diags = flow_lints(&[&outer, &inner], &hosts(&["home", "server"]));
        assert_eq!(codes(&diags), ["TAX006"], "{diags:?}");
    }

    #[test]
    fn tax007_travel_loop_that_never_drains() {
        let s = flow_of(
            r#"
            fn main() {
                while (1) {
                    bc_append("TRACE", host_name());
                    if (go("tacoma://hub/vm_script")) { exit(1); }
                }
            }
            "#,
        );
        let diags = flow_lints(&[&s], &[]);
        assert_eq!(codes(&diags), ["TAX007"], "{diags:?}");
        assert!(diags[0].message.contains("TRACE"));
    }

    #[test]
    fn tax007_quiet_for_figure4_draining_loop() {
        // The canonical agent drains HOSTS while it travels: bounded.
        let s = flow_of(
            r#"
            fn main() {
                while (1) {
                    bc_append("TRACE", host_name());
                    let e = bc_remove("HOSTS", 0);
                    if (e == nil) { exit(0); }
                    if (go(e)) { display("Unable to reach " + e); }
                }
            }
            "#,
        );
        assert!(flow_lints(&[&s], &[]).is_empty());
    }

    #[test]
    fn tax008_dead_folder() {
        let s = flow_of(
            r#"
            fn main() {
                bc_set("SCRATCH", 1);
                display("done");
                exit(0);
            }
            "#,
        );
        let diags = flow_lints(&[&s], &[]);
        assert_eq!(codes(&diags), ["TAX008"], "{diags:?}");
        assert!(diags[0].message.contains("SCRATCH"));
    }

    #[test]
    fn tax008_quiet_when_shipped_or_read() {
        // Mobile: the final go ships every folder aboard.
        let mobile = flow_of(
            r#"
            fn main() {
                bc_set("SCRATCH", 1);
                if (go("tacoma://home/vm_script")) { exit(1); }
                exit(0);
            }
            "#,
        );
        assert!(flow_lints(&[&mobile, &mobile], &[]).is_empty());
        // Read by another layer of the chain.
        let writer = flow_of(r#"fn main() { bc_set("SCRATCH", 1); exit(0); }"#);
        let reader = flow_of(r#"fn main() { display(bc_get("SCRATCH", 0)); exit(0); }"#);
        assert!(flow_lints(&[&reader, &writer], &[]).is_empty());
        // STATUS is a conventional output folder.
        let status = flow_of(r#"fn main() { bc_set("STATUS", "ok"); exit(0); }"#);
        assert!(flow_lints(&[&status], &[]).is_empty());
    }

    #[test]
    fn itinerary_graph_hosts_and_cycles() {
        let s = flow_of(r#"fn main() { go("tacoma://h1/vm_script"); exit(0); }"#);
        let linear = ItineraryGraph::new(&hosts(&["h1", "tacoma://h2/vm_script"]), &[]);
        assert_eq!(linear.declared, ["h1", "h2"]);
        assert!(!linear.has_cycle());

        let looped = ItineraryGraph::new(&hosts(&["h1", "h2", "h1"]), &[]);
        assert!(looped.has_cycle());

        // A constant target pointing back at a declared hop is a cycle.
        let back = ItineraryGraph::new(&hosts(&["h1", "h2"]), &[&s]);
        assert!(back.has_cycle());
        assert!(back.hosts().contains("h2"));
        assert!(back.to_string().contains("cyclic"), "{back}");
    }
}
