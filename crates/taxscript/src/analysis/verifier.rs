//! Abstract-interpretation bytecode verifier.
//!
//! Symbolically executes every function over the abstract domain of stack
//! depths: each reachable offset is assigned the interval of operand-stack
//! depths possible on entry. Because TaxScript's compiler emits
//! structured, reducible code, the interval at every offset must collapse
//! to a single point — a join whose incoming depths disagree is reported
//! as [`VerifyError::InconsistentJoinDepth`] rather than widened, which
//! keeps the domain exact and the analysis linear.
//!
//! The verifier is strictly stronger than [`Program::validate`]:
//!
//! * every static reference check validate performs is repeated here (on
//!   *all* instructions, reachable or not), so anything validate rejects
//!   the verifier also rejects;
//! * jump targets must land on a real instruction (`target < code_len`,
//!   where validate tolerates `target == code_len`);
//! * stack effects are proven: no instruction can underflow the operand
//!   stack, the static high-water mark stays below the VM's hard
//!   [`MAX_VALUE_STACK`] limit, and control flow cannot run off the end
//!   of a function body.
//!
//! A program accepted by [`verify`] cannot raise the stack-fault class of
//! [`RuntimeError::CorruptProgram`] errors at run time (see the property
//! test in `tests/analysis_corpus.rs`).

use std::fmt;

use crate::program::{FnProto, Program};
use crate::vm::MAX_VALUE_STACK;
use crate::{Builtin, Op};

/// Where a verification error was found: function table index plus the
/// instruction offset inside that function's code vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Index into the program's function table.
    pub function: usize,
    /// Instruction offset within the function body.
    pub offset: usize,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{} @{}", self.function, self.offset)
    }
}

/// Why a program failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// An instruction would pop more values than the abstract stack holds.
    StackUnderflow {
        /// Offending instruction.
        site: Site,
        /// Values the instruction pops.
        needed: usize,
        /// Abstract stack depth on entry.
        depth: usize,
    },
    /// A jump targets an offset at or past the end of the function body.
    BadJumpTarget {
        /// Offending instruction.
        site: Site,
        /// The out-of-range target.
        target: usize,
        /// The function's instruction count.
        code_len: usize,
    },
    /// `Const` references a slot past the end of the constant pool.
    ConstOutOfRange {
        /// Offending instruction.
        site: Site,
        /// The referenced pool index.
        index: usize,
        /// Constant-pool size.
        pool_len: usize,
    },
    /// `Call` references a function index past the function table.
    FnOutOfRange {
        /// Offending instruction.
        site: Site,
        /// The referenced function index.
        index: usize,
        /// Function-table size.
        table_len: usize,
    },
    /// Two control-flow paths reach the same offset with different stack
    /// depths — the compiler never emits this, so it marks hand-tampered
    /// or corrupt bytecode.
    InconsistentJoinDepth {
        /// The join point.
        site: Site,
        /// Depth recorded by the first path to reach the offset.
        first: usize,
        /// Conflicting depth from a later path.
        second: usize,
    },
    /// `Load`/`Store` references a slot past the function's local frame.
    LocalOutOfRange {
        /// Offending instruction.
        site: Site,
        /// The referenced slot.
        slot: usize,
        /// Declared local-slot count.
        n_locals: usize,
    },
    /// `Call` argc does not match the callee's declared arity.
    CallArityMismatch {
        /// Offending instruction.
        site: Site,
        /// The callee's declared arity.
        expected: u8,
        /// The argc encoded at the call site.
        got: u8,
    },
    /// A fixed-arity builtin is invoked with the wrong argc.
    BuiltinArityMismatch {
        /// Offending instruction.
        site: Site,
        /// The builtin being invoked.
        builtin: Builtin,
        /// Its declared arity.
        expected: usize,
        /// The argc encoded at the call site.
        got: usize,
    },
    /// The static stack high-water mark reaches the VM's hard limit.
    StackLimitExceeded {
        /// Instruction whose effect crosses the limit.
        site: Site,
        /// The depth that would be reached.
        depth: usize,
    },
    /// Control flow can reach the end of the body without `Return` (or
    /// another terminal instruction) — the VM would fault with
    /// "pc ran off the end".
    FallsOffEnd {
        /// The function in question.
        function: usize,
    },
    /// The recorded `main` index is outside the function table.
    BadMainIndex {
        /// The recorded index.
        index: usize,
        /// Function-table size.
        table_len: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::StackUnderflow {
                site,
                needed,
                depth,
            } => {
                write!(f, "{site}: stack underflow (pops {needed}, depth {depth})")
            }
            VerifyError::BadJumpTarget {
                site,
                target,
                code_len,
            } => {
                write!(
                    f,
                    "{site}: jump target {target} out of range (code length {code_len})"
                )
            }
            VerifyError::ConstOutOfRange {
                site,
                index,
                pool_len,
            } => {
                write!(
                    f,
                    "{site}: constant index {index} out of range (pool size {pool_len})"
                )
            }
            VerifyError::FnOutOfRange {
                site,
                index,
                table_len,
            } => {
                write!(
                    f,
                    "{site}: call target {index} out of range (function table size {table_len})"
                )
            }
            VerifyError::InconsistentJoinDepth {
                site,
                first,
                second,
            } => {
                write!(
                    f,
                    "{site}: inconsistent stack depth at join ({first} vs {second})"
                )
            }
            VerifyError::LocalOutOfRange {
                site,
                slot,
                n_locals,
            } => {
                write!(
                    f,
                    "{site}: local slot {slot} out of range ({n_locals} slots)"
                )
            }
            VerifyError::CallArityMismatch {
                site,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{site}: call arity mismatch (expected {expected}, got {got})"
                )
            }
            VerifyError::BuiltinArityMismatch {
                site,
                builtin,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{site}: {} takes {expected} args, called with {got}",
                    builtin.name()
                )
            }
            VerifyError::StackLimitExceeded { site, depth } => {
                write!(
                    f,
                    "{site}: static stack depth {depth} exceeds VM limit {MAX_VALUE_STACK}"
                )
            }
            VerifyError::FallsOffEnd { function } => {
                write!(
                    f,
                    "fn#{function}: control flow can run off the end of the body"
                )
            }
            VerifyError::BadMainIndex { index, table_len } => {
                write!(
                    f,
                    "main index {index} out of range (function table size {table_len})"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Per-function facts proven by the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFacts {
    /// Static operand-stack high-water mark.
    pub max_stack: usize,
    /// Which offsets are reachable from entry (`reachable[pc]`).
    pub reachable: Vec<bool>,
}

/// The proof object returned by a successful [`verify`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifySummary {
    /// One entry per function, in function-table order.
    pub functions: Vec<FnFacts>,
}

impl VerifySummary {
    /// The largest static stack depth across all functions.
    pub fn max_stack(&self) -> usize {
        self.functions
            .iter()
            .map(|f| f.max_stack)
            .max()
            .unwrap_or(0)
    }
}

/// How many values `op` pops and pushes, given the abstract model used by
/// the verifier. `None` marks terminal instructions with no fallthrough.
/// `exit()` is terminal: the VM maps it straight to [`crate::Outcome::Exit`]
/// and never resumes the bytecode after it.
fn stack_effect(op: Op) -> (usize, usize) {
    match op {
        Op::Const(_) | Op::Nil | Op::True | Op::False | Op::Load(_) => (0, 1),
        Op::Dup => (1, 2),
        Op::Store(_) | Op::Pop | Op::JumpIfFalse(_) | Op::JumpIfTrue(_) => (1, 0),
        Op::Neg | Op::Not => (1, 1),
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Mod
        | Op::Eq
        | Op::Ne
        | Op::Lt
        | Op::Le
        | Op::Gt
        | Op::Ge
        | Op::Index => (2, 1),
        Op::MakeList(n) => (n as usize, 1),
        Op::Call { argc, .. } | Op::CallBuiltin { argc, .. } => (argc as usize, 1),
        Op::Jump(_) => (0, 0),
        Op::Return => (1, 0),
    }
}

/// Whether control can fall through to the next instruction after `op`.
fn falls_through(op: Op) -> bool {
    !matches!(
        op,
        Op::Jump(_)
            | Op::Return
            | Op::CallBuiltin {
                builtin: Builtin::Exit,
                ..
            }
    )
}

/// Verifies every function in `program`. On success the returned
/// [`VerifySummary`] certifies the absence of stack faults; on failure the
/// first error found (scanning functions in table order, instructions by a
/// depth-first worklist from entry) is returned.
///
/// # Errors
///
/// The first [`VerifyError`] encountered.
pub fn verify(program: &Program) -> Result<VerifySummary, VerifyError> {
    let table_len = program.functions().len();
    if program.main_index() >= table_len {
        return Err(VerifyError::BadMainIndex {
            index: program.main_index(),
            table_len,
        });
    }
    let mut functions = Vec::with_capacity(table_len);
    for (fn_idx, proto) in program.functions().iter().enumerate() {
        functions.push(verify_fn(program, fn_idx, proto)?);
    }
    Ok(VerifySummary { functions })
}

fn verify_fn(program: &Program, fn_idx: usize, proto: &FnProto) -> Result<FnFacts, VerifyError> {
    let code = &proto.code;
    let code_len = code.len();

    // Static reference pass over *every* instruction, reachable or not,
    // so the verifier subsumes Program::validate even for dead code.
    for (offset, &op) in code.iter().enumerate() {
        check_static(
            program,
            proto,
            Site {
                function: fn_idx,
                offset,
            },
            op,
            code_len,
        )?;
    }

    if code_len == 0 {
        return Err(VerifyError::FallsOffEnd { function: fn_idx });
    }

    // Worklist abstract interpretation from (entry, depth 0). The domain
    // is exact: depth_at[pc] is the single depth every path must agree on.
    let mut depth_at: Vec<Option<usize>> = vec![None; code_len];
    let mut worklist = vec![(0usize, 0usize)];
    let mut max_stack = 0usize;

    while let Some((pc, depth)) = worklist.pop() {
        match depth_at[pc] {
            Some(seen) if seen == depth => continue,
            Some(seen) => {
                return Err(VerifyError::InconsistentJoinDepth {
                    site: Site {
                        function: fn_idx,
                        offset: pc,
                    },
                    first: seen,
                    second: depth,
                });
            }
            None => depth_at[pc] = Some(depth),
        }

        let op = code[pc];
        let site = Site {
            function: fn_idx,
            offset: pc,
        };
        let (pops, pushes) = stack_effect(op);
        if depth < pops {
            return Err(VerifyError::StackUnderflow {
                site,
                needed: pops,
                depth,
            });
        }
        let after = depth - pops + pushes;
        if after > MAX_VALUE_STACK {
            return Err(VerifyError::StackLimitExceeded { site, depth: after });
        }
        max_stack = max_stack.max(after);

        if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) = op {
            worklist.push((t as usize, after));
        }
        if falls_through(op) {
            if pc + 1 >= code_len {
                return Err(VerifyError::FallsOffEnd { function: fn_idx });
            }
            worklist.push((pc + 1, after));
        }
    }

    Ok(FnFacts {
        max_stack,
        reachable: depth_at.iter().map(Option::is_some).collect(),
    })
}

/// The validate-equivalent (but stricter) per-instruction reference checks.
fn check_static(
    program: &Program,
    proto: &FnProto,
    site: Site,
    op: Op,
    code_len: usize,
) -> Result<(), VerifyError> {
    match op {
        Op::Const(idx) => {
            let pool_len = program.constants().len();
            if idx as usize >= pool_len {
                return Err(VerifyError::ConstOutOfRange {
                    site,
                    index: idx as usize,
                    pool_len,
                });
            }
        }
        Op::Load(slot) | Op::Store(slot) if slot >= proto.n_locals => {
            return Err(VerifyError::LocalOutOfRange {
                site,
                slot: slot as usize,
                n_locals: proto.n_locals as usize,
            });
        }
        // Stricter than validate: a target equal to code_len decodes but
        // would fault at run time, so reject it here.
        Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) if t as usize >= code_len => {
            return Err(VerifyError::BadJumpTarget {
                site,
                target: t as usize,
                code_len,
            });
        }
        Op::Call { fn_idx, argc } => {
            let table_len = program.functions().len();
            let Some(callee) = program.functions().get(fn_idx as usize) else {
                return Err(VerifyError::FnOutOfRange {
                    site,
                    index: fn_idx as usize,
                    table_len,
                });
            };
            if callee.arity != argc {
                return Err(VerifyError::CallArityMismatch {
                    site,
                    expected: callee.arity,
                    got: argc,
                });
            }
        }
        Op::CallBuiltin { builtin, argc } => {
            if let Some(expected) = builtin.arity() {
                if expected != argc as usize {
                    return Err(VerifyError::BuiltinArityMismatch {
                        site,
                        builtin,
                        expected,
                        got: argc as usize,
                    });
                }
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;
    use crate::program::Const;

    /// A minimal hand-built program whose single `main` runs `code`.
    fn program_with(code: Vec<Op>) -> Program {
        Program::from_parts(
            vec![Const::Int(7), Const::Str("x".into())],
            vec![FnProto {
                name: "main".into(),
                arity: 0,
                n_locals: 2,
                code,
            }],
            0,
        )
    }

    #[test]
    fn accepts_all_compiled_shapes() {
        let p = compile_source(
            r#"
            fn helper(x) { return x * 2; }
            fn main() {
                let total = 0;
                let i = 0;
                while (i < 10) {
                    if (i % 2 == 0 && i != 4) { total = total + helper(i); }
                    i = i + 1;
                }
                let words = split("a b c", " ");
                display("total " + str(total), len(words));
                exit(0);
            }
            "#,
        )
        .unwrap();
        let summary = verify(&p).unwrap();
        assert_eq!(summary.functions.len(), p.functions().len());
        assert!(summary.max_stack() >= 2);
    }

    #[test]
    fn rejects_stack_underflow() {
        // Add with only one value on the stack.
        let p = program_with(vec![Op::Nil, Op::Add, Op::Return]);
        match verify(&p) {
            Err(VerifyError::StackUnderflow {
                site,
                needed: 2,
                depth: 1,
            }) => {
                assert_eq!(site.offset, 1);
            }
            other => panic!("expected StackUnderflow, got {other:?}"),
        }
    }

    #[test]
    fn rejects_pop_on_empty_stack() {
        let p = program_with(vec![Op::Pop, Op::Nil, Op::Return]);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn rejects_jump_target_past_end() {
        let p = program_with(vec![Op::Jump(9), Op::Nil, Op::Return]);
        match verify(&p) {
            Err(VerifyError::BadJumpTarget {
                target: 9,
                code_len: 3,
                ..
            }) => {}
            other => panic!("expected BadJumpTarget, got {other:?}"),
        }
    }

    #[test]
    fn rejects_jump_to_code_len_that_validate_accepts() {
        // target == code_len slips through Program::validate but would
        // fault at run time; the verifier is strictly stronger.
        let p = program_with(vec![Op::True, Op::JumpIfFalse(3), Op::Jump(0)]);
        assert!(
            p.validate().is_ok(),
            "validate tolerates target == code_len"
        );
        match verify(&p) {
            Err(VerifyError::BadJumpTarget {
                target: 3,
                code_len: 3,
                ..
            }) => {}
            other => panic!("expected BadJumpTarget, got {other:?}"),
        }
    }

    #[test]
    fn rejects_constant_index_out_of_range() {
        let p = program_with(vec![Op::Const(99), Op::Return]);
        match verify(&p) {
            Err(VerifyError::ConstOutOfRange {
                index: 99,
                pool_len: 2,
                ..
            }) => {}
            other => panic!("expected ConstOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn rejects_function_index_out_of_range() {
        let p = program_with(vec![Op::Call { fn_idx: 5, argc: 0 }, Op::Return]);
        match verify(&p) {
            Err(VerifyError::FnOutOfRange {
                index: 5,
                table_len: 1,
                ..
            }) => {}
            other => panic!("expected FnOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn rejects_inconsistent_join_depth() {
        // Offset 4 is reached with depth 2 via fallthrough but depth 0
        // via the jump — the paths disagree.
        let p = program_with(vec![
            Op::True,          // d=1
            Op::JumpIfTrue(4), // pops → d=0; target 4 at d=0
            Op::Nil,           // d=1
            Op::Nil,           // d=2
            Op::Return,        // join at 4: d=2 vs d=0 → mismatch
        ]);
        match verify(&p) {
            Err(VerifyError::InconsistentJoinDepth {
                site,
                first,
                second,
            }) => {
                assert_eq!(site.offset, 4);
                assert_ne!(first, second);
            }
            other => panic!("expected InconsistentJoinDepth, got {other:?}"),
        }
    }

    #[test]
    fn rejects_local_slot_out_of_range() {
        let p = program_with(vec![Op::Load(7), Op::Return]);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::LocalOutOfRange { slot: 7, .. })
        ));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut p = program_with(vec![Op::Nil, Op::Call { fn_idx: 0, argc: 1 }, Op::Return]);
        p.functions[0].arity = 0; // declared 0, called with 1
        assert!(matches!(
            verify(&p),
            Err(VerifyError::CallArityMismatch {
                expected: 0,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn rejects_builtin_arity_mismatch() {
        let p = program_with(vec![
            Op::Nil,
            Op::CallBuiltin {
                builtin: Builtin::Exit,
                argc: 2,
            },
        ]);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::BuiltinArityMismatch {
                builtin: Builtin::Exit,
                expected: 1,
                got: 2,
                ..
            })
        ));
    }

    #[test]
    fn rejects_falling_off_the_end() {
        let p = program_with(vec![Op::Nil, Op::Pop]);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::FallsOffEnd { function: 0 })
        ));
    }

    #[test]
    fn rejects_empty_body() {
        let p = program_with(vec![]);
        assert!(matches!(verify(&p), Err(VerifyError::FallsOffEnd { .. })));
    }

    #[test]
    fn rejects_bad_main_index() {
        let mut p = program_with(vec![Op::Nil, Op::Return]);
        p.main_idx = 3;
        assert!(matches!(
            verify(&p),
            Err(VerifyError::BadMainIndex {
                index: 3,
                table_len: 1
            })
        ));
    }

    #[test]
    fn dead_code_still_gets_static_checks() {
        // The bad Const sits after Return (unreachable) — validate would
        // catch it, so the verifier must too.
        let p = program_with(vec![Op::Nil, Op::Return, Op::Const(99)]);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::ConstOutOfRange { .. })
        ));
    }

    #[test]
    fn exit_is_terminal_for_fallthrough() {
        // `exit(0)` as the last instruction: no fallthrough, so the body
        // need not end in Return.
        let p = program_with(vec![
            Op::Const(0),
            Op::CallBuiltin {
                builtin: Builtin::Exit,
                argc: 1,
            },
        ]);
        verify(&p).unwrap();
    }

    #[test]
    fn reachability_marks_dead_tail() {
        let p = program_with(vec![Op::Nil, Op::Return, Op::Nil, Op::Return]);
        let summary = verify(&p).unwrap();
        assert_eq!(
            summary.functions[0].reachable,
            vec![true, true, false, false]
        );
    }

    #[test]
    fn loop_join_converges() {
        // while-loop shape: the back edge re-enters the header at the
        // same depth, so the worklist terminates without error.
        let p = program_with(vec![
            Op::True,           // 0: cond         d0→1
            Op::JumpIfFalse(5), // 1: exit loop    d1→0
            Op::Nil,            // 2: body         d0→1
            Op::Pop,            // 3:              d1→0
            Op::Jump(0),        // 4: back edge at depth 0
            Op::Nil,            // 5: epilogue
            Op::Return,         // 6
        ]);
        verify(&p).unwrap();
    }
}
