//! Static analysis over compiled TaxScript programs.
//!
//! Four passes, run in order by [`analyze`]:
//!
//! 1. **Verification** ([`verify`]) — abstract interpretation proving the
//!    bytecode cannot fault the VM: stack depths are consistent at every
//!    join, no instruction underflows or overflows the operand stack,
//!    every jump lands on a real instruction, and every constant,
//!    function, and builtin reference is in bounds. Strictly stronger
//!    than [`Program::validate`]. Unverifiable code is unrunnable code.
//! 2. **Capability extraction** ([`capabilities`]) — what the agent *can*
//!    do: the builtins reachable from `main`, constant travel targets,
//!    and the briefcase folders it reads and writes. This manifest is
//!    what a firewall compares against the sender's ACL grant before
//!    admitting an arriving agent (the paper's §3.2 reference monitor).
//! 3. **Flow analysis** ([`flow`]) — the folder-level taint/flow summary:
//!    which briefcase folders the agent reads, writes, drains, and ships,
//!    joinable across wrapper chains and declared itineraries by
//!    [`flow_lints`] (TAX005–TAX008).
//! 4. **Linting** ([`lint`]) — structured [`Diagnostic`]s for suspicious
//!    but runnable patterns: unreachable code, folders read but never
//!    written, travel targets that can never parse, and loops that make
//!    no progress toward `go`/`exit`.
//!
//! The whole pipeline is deterministic in the program bytes, so
//! [`AnalysisCache`] memoizes it by content hash — the firewall and the
//! VM share one cache and an agent is analyzed once per process, not
//! once per hop.
//!
//! See `docs/analysis.md` for the full catalogue and the admission flow.

mod cache;
mod capabilities;
mod flow;
mod lint;
mod verifier;

pub use cache::{
    AnalysisCache, AnalysisFailure, CacheResult, CacheStats, VerifiedScript, DEFAULT_CAPACITY,
};
pub use capabilities::{capabilities, Capabilities};
pub use flow::{flow, flow_lints, FlowSite, FlowSummary, GrowthLoop, ItineraryGraph, ShipSite};
pub use lint::{lint, Diagnostic, LintCode, Severity};
pub use verifier::{verify, FnFacts, Site, VerifyError, VerifySummary};

use crate::Program;

/// The combined result of all analysis passes.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// The verifier's proof object.
    pub verified: VerifySummary,
    /// The capability manifest.
    pub capabilities: Capabilities,
    /// The folder-level flow summary, joinable across wrapper chains
    /// and itineraries (see [`flow_lints`]).
    pub flow: FlowSummary,
    /// Lint findings, sorted by function, offset, then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Whether any diagnostic is at [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Runs verification, capability extraction, and lints over `program`.
///
/// # Errors
///
/// [`VerifyError`] if the program fails verification; capabilities and
/// lints are only computed for verified programs (their analyses assume
/// in-bounds references).
pub fn analyze(program: &Program) -> Result<AnalysisReport, VerifyError> {
    let verified = verify(program)?;
    let capabilities = capabilities(program);
    let flow = flow::flow(program);
    let mut diagnostics = lint(program);
    // Single-program flow lints: no chain, no declared itinerary.
    // TAX005/TAX006 need that journey context and stay quiet here;
    // TAX007/TAX008 fire standalone.
    diagnostics.extend(flow_lints(&[&flow], &[]));
    diagnostics
        .sort_by(|a, b| (&a.function, a.offset, a.code).cmp(&(&b.function, b.offset, b.code)));
    diagnostics.dedup();
    Ok(AnalysisReport {
        verified,
        capabilities,
        flow,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    #[test]
    fn analyze_combines_all_passes() {
        let p = compile_source(
            r#"
            fn main() {
                bc_append("RESULTS", host_name());
                if (go("tacoma://h2/vm_script")) { display("unreachable"); }
                exit(0);
            }
            "#,
        )
        .unwrap();
        let report = analyze(&p).unwrap();
        assert!(report.capabilities.is_mobile());
        assert!(report
            .capabilities
            .go_targets
            .contains("tacoma://h2/vm_script"));
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert!(!report.has_errors());
        assert!(report.verified.max_stack() >= 1);
    }

    #[test]
    fn analyze_rejects_unverifiable() {
        let mut p = compile_source("fn main() { exit(0); }").unwrap();
        let main = p.main_index();
        p.functions[main].code[0] = crate::Op::Const(u16::MAX);
        assert!(analyze(&p).is_err());
    }
}
