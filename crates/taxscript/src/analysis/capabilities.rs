//! Capability-manifest extraction.
//!
//! Walks the call graph from `main` and summarises what the agent *can*
//! do: which builtins it may invoke, which hosts it names in constant
//! `go()`/`spawn()` targets, and which briefcase folders it touches. The
//! summary is the input to the firewall's admission policy (TACOMA §3.2:
//! the firewall is the reference monitor deciding what an arriving agent
//! may be granted), and to the `taxsh check` lint pass.
//!
//! Argument constants are recovered by a peephole: for a call taking
//! `argc` arguments, if the `argc` instructions immediately preceding the
//! call site are all single-push instructions (`Const`, `Load`, `Nil`,
//! `True`, `False`), the k-th of them produced the k-th argument. A
//! `Const` referencing a string constant is a statically-known argument;
//! anything else marks the call dynamic, which the manifest records
//! separately so a policy can refuse agents whose targets cannot be
//! determined ahead of execution.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::program::{Const, Program};
use crate::{Builtin, Op};

/// Builtins that read a briefcase folder named by their first argument.
const FOLDER_READERS: [Builtin; 4] = [
    Builtin::BcGet,
    Builtin::BcLen,
    Builtin::BcHas,
    Builtin::BcRemove,
];

/// Builtins that write (or destroy) a folder named by their first argument.
const FOLDER_WRITERS: [Builtin; 3] = [Builtin::BcAppend, Builtin::BcSet, Builtin::BcClear];

/// What a program is statically capable of doing.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Every builtin reachable from `main` via the call graph.
    pub builtins: BTreeSet<Builtin>,
    /// Constant `go()` destinations.
    pub go_targets: BTreeSet<String>,
    /// Constant `spawn()` destinations.
    pub spawn_targets: BTreeSet<String>,
    /// A reachable `go()`/`spawn()` whose target is not a constant.
    pub dynamic_travel: bool,
    /// Folders read via `bc_get`/`bc_len`/`bc_has`/`bc_remove` with a
    /// constant name.
    pub folders_read: BTreeSet<String>,
    /// Folders written via `bc_append`/`bc_set`/`bc_clear` with a
    /// constant name.
    pub folders_written: BTreeSet<String>,
    /// A reachable folder operation whose name is not a constant.
    pub dynamic_folders: bool,
    /// Function-table indices reachable from `main` (always contains
    /// `main` itself).
    pub reachable_functions: BTreeSet<usize>,
}

impl Capabilities {
    /// Whether the given builtin is reachable.
    pub fn uses(&self, builtin: Builtin) -> bool {
        self.builtins.contains(&builtin)
    }

    /// Whether the agent can move or clone itself to another host.
    pub fn is_mobile(&self) -> bool {
        self.uses(Builtin::Go) || self.uses(Builtin::Spawn)
    }

    /// Whether the agent can exchange briefcases with local agents
    /// (`meet` / `bc_send` / `bc_recv`).
    pub fn communicates(&self) -> bool {
        self.uses(Builtin::Meet) || self.uses(Builtin::Activate) || self.uses(Builtin::AwaitBc)
    }
}

impl fmt::Display for Capabilities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.builtins.iter().map(|b| b.name()).collect();
        writeln!(f, "builtins: {}", names.join(" "))?;
        if !self.go_targets.is_empty() {
            let t: Vec<&str> = self.go_targets.iter().map(String::as_str).collect();
            writeln!(f, "go targets: {}", t.join(" "))?;
        }
        if !self.spawn_targets.is_empty() {
            let t: Vec<&str> = self.spawn_targets.iter().map(String::as_str).collect();
            writeln!(f, "spawn targets: {}", t.join(" "))?;
        }
        if self.dynamic_travel {
            writeln!(f, "dynamic travel: yes")?;
        }
        if !self.folders_read.is_empty() {
            let t: Vec<&str> = self.folders_read.iter().map(String::as_str).collect();
            writeln!(f, "folders read: {}", t.join(" "))?;
        }
        if !self.folders_written.is_empty() {
            let t: Vec<&str> = self.folders_written.iter().map(String::as_str).collect();
            writeln!(f, "folders written: {}", t.join(" "))?;
        }
        if self.dynamic_folders {
            writeln!(f, "dynamic folders: yes")?;
        }
        Ok(())
    }
}

/// The first argument of the call at `code[call_pc]`, if it was pushed by
/// a `Const` holding a string and the whole argument window is made of
/// single-push instructions (so positions line up).
pub(crate) fn constant_str_arg0(
    program: &Program,
    code: &[Op],
    call_pc: usize,
    argc: usize,
) -> Option<String> {
    if argc == 0 || call_pc < argc {
        return None;
    }
    let window = &code[call_pc - argc..call_pc];
    let simple = window.iter().all(|op| {
        matches!(
            op,
            Op::Const(_)
                | Op::Load(_)
                | Op::Nil
                | Op::True
                | Op::False
                // A zero-arg builtin (host_name(), bc_folders(), ...)
                // pops nothing and pushes one value, so positions in
                // the window still line up.
                | Op::CallBuiltin { argc: 0, .. }
        )
    });
    if !simple {
        return None;
    }
    match window[0] {
        Op::Const(idx) => match program.constants().get(idx as usize) {
            Some(Const::Str(s)) => Some(s.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// Extracts the capability manifest of `program`.
///
/// Only functions reachable from `main` through `Call` instructions
/// contribute; dead functions grant nothing. The program should already
/// have passed [`super::verify`] — out-of-range references are simply
/// skipped here rather than reported.
pub fn capabilities(program: &Program) -> Capabilities {
    let mut caps = Capabilities::default();

    // Call-graph reachability from main.
    let mut stack = vec![program.main_index()];
    while let Some(fn_idx) = stack.pop() {
        if !caps.reachable_functions.insert(fn_idx) {
            continue;
        }
        let Some(proto) = program.functions().get(fn_idx) else {
            continue;
        };
        for op in &proto.code {
            if let Op::Call { fn_idx: callee, .. } = op {
                stack.push(*callee as usize);
            }
        }
    }

    for &fn_idx in &caps.reachable_functions.clone() {
        let Some(proto) = program.functions().get(fn_idx) else {
            continue;
        };
        for (pc, &op) in proto.code.iter().enumerate() {
            let Op::CallBuiltin { builtin, argc } = op else {
                continue;
            };
            caps.builtins.insert(builtin);
            let argc = argc as usize;
            let arg0 = constant_str_arg0(program, &proto.code, pc, argc);
            match builtin {
                Builtin::Go => match arg0 {
                    Some(target) => {
                        caps.go_targets.insert(target);
                    }
                    None => caps.dynamic_travel = true,
                },
                Builtin::Spawn => match arg0 {
                    Some(target) => {
                        caps.spawn_targets.insert(target);
                    }
                    None => caps.dynamic_travel = true,
                },
                b if FOLDER_READERS.contains(&b) => match arg0 {
                    Some(folder) => {
                        caps.folders_read.insert(folder);
                    }
                    None => caps.dynamic_folders = true,
                },
                b if FOLDER_WRITERS.contains(&b) => match arg0 {
                    Some(folder) => {
                        caps.folders_written.insert(folder);
                    }
                    None => caps.dynamic_folders = true,
                },
                _ => {}
            }
        }
    }
    caps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    fn caps_of(src: &str) -> Capabilities {
        capabilities(&compile_source(src).unwrap())
    }

    #[test]
    fn figure4_hello_manifest() {
        let caps = caps_of(
            r#"
            fn main() {
                while (1) {
                    display("Hello world");
                    let e = bc_remove("HOSTS", 0);
                    if (e == nil) { exit(0); }
                    if (go(e)) { display("Unable to reach " + e); }
                }
            }
            "#,
        );
        assert!(caps.is_mobile());
        assert!(caps.dynamic_travel, "go target is a variable");
        assert!(caps.go_targets.is_empty());
        assert!(caps.folders_read.contains("HOSTS"));
        assert!(!caps.dynamic_folders, "folder names are constant");
        assert!(caps.uses(Builtin::Exit));
        assert!(!caps.communicates());
    }

    #[test]
    fn constant_go_target_is_recorded() {
        let caps = caps_of(r#"fn main() { go("tacoma://h2/vm_script"); exit(0); }"#);
        assert!(caps.go_targets.contains("tacoma://h2/vm_script"));
        assert!(!caps.dynamic_travel);
    }

    #[test]
    fn dead_functions_grant_nothing() {
        let caps = caps_of(
            r#"
            fn never_called() { go("tacoma://evil/vm_script"); return 0; }
            fn main() { display("hi"); exit(0); }
            "#,
        );
        assert!(!caps.is_mobile());
        assert!(caps.go_targets.is_empty());
        assert_eq!(caps.reachable_functions.len(), 1);
    }

    #[test]
    fn transitive_calls_contribute() {
        let caps = caps_of(
            r#"
            fn hop(where) { if (go(where)) { return 1; } return 0; }
            fn work() { bc_append("RESULTS", "x"); return hop("unused-dynamic"); }
            fn main() { work(); exit(0); }
            "#,
        );
        assert!(caps.is_mobile());
        assert!(caps.folders_written.contains("RESULTS"));
        assert_eq!(caps.reachable_functions.len(), 3);
    }

    #[test]
    fn writes_and_reads_are_separated() {
        let caps = caps_of(
            r#"
            fn main() {
                bc_set("STATUS", "running");
                let n = bc_len("ARGS");
                display(n);
                exit(0);
            }
            "#,
        );
        assert!(caps.folders_written.contains("STATUS"));
        assert!(caps.folders_read.contains("ARGS"));
        assert!(!caps.folders_read.contains("STATUS"));
    }

    #[test]
    fn non_constant_folder_sets_dynamic_flag() {
        let caps = caps_of(
            r#"
            fn main() {
                let f = "RESU" + "LTS";
                bc_append(f, 1);
                exit(0);
            }
            "#,
        );
        assert!(caps.dynamic_folders);
        assert!(caps.folders_written.is_empty());
    }

    #[test]
    fn display_renders_manifest() {
        let caps = caps_of(r#"fn main() { go("tacoma://h2/vm_script"); exit(0); }"#);
        let shown = caps.to_string();
        assert!(
            shown.contains("go targets: tacoma://h2/vm_script"),
            "{shown}"
        );
        assert!(shown.contains("go"), "{shown}");
    }
}
