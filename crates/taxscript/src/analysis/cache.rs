//! Content-hash verified-script cache.
//!
//! The analysis pipeline is deterministic: the same program bytes always
//! decode, verify, and lint to the same [`AnalysisReport`]. A mobile
//! agent, though, presents those same bytes at *every* hop — the firewall
//! re-admits it on arrival and the VM re-verifies before running — so an
//! N-host tour pays for N identical analyses. This module memoizes the
//! whole pipeline behind a content hash of the program bytes
//! ([`tacoma_security::hash_bytes`], the repo's Merkle–Damgård digest):
//! a briefcase carrying a known hash skips decode *and* analysis on every
//! hop after the first.
//!
//! Keys are domain-separated — bytecode and source text hash under
//! different tags, so an agent cannot alias a source-path entry with
//! crafted bytecode (or vice versa). Entries are `Arc`-shared and the
//! cache is a bounded LRU: a long-running firewall admitting many
//! distinct agents evicts the least recently used entry rather than
//! growing without bound. Failures are cached too (negative caching) —
//! a malformed agent retried at every hop stays cheap to reject.
//!
//! One [`shared`](AnalysisCache::shared) instance serves both the
//! firewall admission path and the VM decode path in-process, so an
//! agent admitted by the firewall is a warm hit when the VM loads it.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use tacoma_security::{hash_bytes, Digest};

use crate::compile_source;
use crate::program::Program;

use super::{analyze, AnalysisReport, VerifyError};

/// Domain-separation tag for bytecode keys.
const TAG_BYTECODE: &[u8] = b"taxscript:cache:bytecode\0";
/// Domain-separation tag for source-text keys.
const TAG_SOURCE: &[u8] = b"taxscript:cache:source\0";

/// Default number of entries a cache retains.
pub const DEFAULT_CAPACITY: usize = 256;

/// A program that passed the full analysis pipeline, with its report.
///
/// Shared via `Arc` so cache hits cost a pointer clone, not a deep copy
/// of the decoded program.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedScript {
    /// The decoded (or compiled) program.
    pub program: Program,
    /// The full analysis report, flow summary included.
    pub report: AnalysisReport,
}

/// Why a program failed the pipeline — cached so repeated rejection of
/// the same bytes is O(hash).
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisFailure {
    /// The wire bytes did not decode as a program.
    Decode(String),
    /// The source text did not compile.
    Compile(String),
    /// The program decoded but failed verification.
    Verify(VerifyError),
}

impl fmt::Display for AnalysisFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisFailure::Decode(e) => write!(f, "decode failed: {e}"),
            AnalysisFailure::Compile(e) => write!(f, "compile failed: {e}"),
            AnalysisFailure::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

/// The outcome stored per key: a verified script or the reason it failed.
pub type CacheResult = Result<Arc<VerifiedScript>, AnalysisFailure>;

/// Cumulative cache counters, exported into `FirewallStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the cold pipeline.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Inner {
    map: HashMap<Digest, CacheResult>,
    /// Recency order, least recent first. Touch is O(n); capacities are
    /// small (hundreds) and entries are 32-byte keys, so a scan beats
    /// the bookkeeping of an intrusive list.
    order: VecDeque<Digest>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded LRU of analysis results keyed by content hash.
pub struct AnalysisCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("AnalysisCache")
            .field("capacity", &self.capacity)
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl AnalysisCache {
    /// Creates a cache retaining at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        AnalysisCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The process-wide cache shared by firewall admission and VM decode.
    pub fn shared() -> &'static AnalysisCache {
        static SHARED: OnceLock<AnalysisCache> = OnceLock::new();
        SHARED.get_or_init(|| AnalysisCache::new(DEFAULT_CAPACITY))
    }

    /// The content-hash key for program wire bytes.
    pub fn key_for_bytes(wire: &[u8]) -> Digest {
        tagged_hash(TAG_BYTECODE, wire)
    }

    /// The content-hash key for source text.
    pub fn key_for_source(source: &str) -> Digest {
        tagged_hash(TAG_SOURCE, source.as_bytes())
    }

    /// Decode + analyze `wire`, memoized. Returns the result and whether
    /// it was served from the cache.
    pub fn analyze_bytes(&self, wire: &[u8]) -> (CacheResult, bool) {
        self.memoize(Self::key_for_bytes(wire), || {
            let program =
                Program::decode(wire).map_err(|e| AnalysisFailure::Decode(e.to_string()))?;
            pipeline(program)
        })
    }

    /// Compile + analyze `source`, memoized. Returns the result and
    /// whether it was served from the cache.
    pub fn analyze_source(&self, source: &str) -> (CacheResult, bool) {
        self.memoize(Self::key_for_source(source), || {
            let program =
                compile_source(source).map_err(|e| AnalysisFailure::Compile(e.to_string()))?;
            pipeline(program)
        })
    }

    /// Looks up `key`, running `cold` and inserting on a miss.
    fn memoize(&self, key: Digest, cold: impl FnOnce() -> CacheResult) -> (CacheResult, bool) {
        {
            let mut inner = self.inner.lock().expect("analysis cache poisoned");
            if let Some(found) = inner.map.get(&key).cloned() {
                inner.hits += 1;
                touch(&mut inner.order, &key);
                return (found, true);
            }
            inner.misses += 1;
        }
        // Analyze outside the lock: a slow cold path must not serialize
        // unrelated lookups. Two racing threads may both analyze the same
        // bytes; determinism makes either result correct.
        let result = cold();
        let mut inner = self.inner.lock().expect("analysis cache poisoned");
        if !inner.map.contains_key(&key) {
            while inner.map.len() >= self.capacity {
                let Some(old) = inner.order.pop_front() else {
                    break;
                };
                inner.map.remove(&old);
                inner.evictions += 1;
            }
            inner.map.insert(key, result.clone());
            inner.order.push_back(key);
        }
        (result, false)
    }

    /// Cumulative counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("analysis cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("analysis cache poisoned")
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("analysis cache poisoned");
        inner.map.clear();
        inner.order.clear();
    }
}

/// The cold pipeline a miss pays for: full [`analyze`], wrapped for the
/// cache's result shape.
fn pipeline(program: Program) -> CacheResult {
    match analyze(&program) {
        Ok(report) => Ok(Arc::new(VerifiedScript { program, report })),
        Err(e) => Err(AnalysisFailure::Verify(e)),
    }
}

fn tagged_hash(tag: &[u8], data: &[u8]) -> Digest {
    let mut buf = Vec::with_capacity(tag.len() + data.len());
    buf.extend_from_slice(tag);
    buf.extend_from_slice(data);
    hash_bytes(&buf)
}

/// Moves `key` to the most-recent end of `order`.
fn touch(order: &mut VecDeque<Digest>, key: &Digest) {
    if let Some(pos) = order.iter().position(|k| k == key) {
        order.remove(pos);
        order.push_back(*key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AGENT: &str = r#"
        fn main() {
            bc_append("RESULTS", host_name());
            if (go("tacoma://h2/vm_script")) { display("fail"); }
            exit(0);
        }
    "#;

    #[test]
    fn bytes_hit_after_miss() {
        let cache = AnalysisCache::new(8);
        let wire = compile_source(AGENT).unwrap().encode();
        let (first, hit1) = cache.analyze_bytes(&wire);
        let (second, hit2) = cache.analyze_bytes(&wire);
        assert!(!hit1 && hit2);
        let (a, b) = (first.unwrap(), second.unwrap());
        assert!(Arc::ptr_eq(&a, &b), "hit must share the entry");
        assert_eq!(a.report, b.report);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn cache_matches_cold_path() {
        let cache = AnalysisCache::new(8);
        let program = compile_source(AGENT).unwrap();
        let wire = program.encode();
        cache.analyze_bytes(&wire);
        let (warm, hit) = cache.analyze_bytes(&wire);
        assert!(hit);
        let cold = analyze(&program).unwrap();
        assert_eq!(warm.unwrap().report, cold);
    }

    #[test]
    fn failures_are_cached() {
        let cache = AnalysisCache::new(8);
        let garbage = b"not a program";
        let (first, hit1) = cache.analyze_bytes(garbage);
        let (second, hit2) = cache.analyze_bytes(garbage);
        assert!(first.is_err() && second.is_err());
        assert!(!hit1 && hit2, "failures are memoized too");
        let (bad_src, src_hit) = cache.analyze_source("fn main( {");
        assert!(matches!(bad_src, Err(AnalysisFailure::Compile(_))));
        assert!(!src_hit);
    }

    #[test]
    fn source_and_bytes_keys_do_not_alias() {
        // Same byte string under the two domains must key differently.
        let text = "fn main() { exit(0); }";
        assert_ne!(
            AnalysisCache::key_for_bytes(text.as_bytes()),
            AnalysisCache::key_for_source(text)
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cache = AnalysisCache::new(2);
        let wires: Vec<Vec<u8>> = (0..3)
            .map(|i| {
                compile_source(&format!("fn main() {{ display({i}); exit(0); }}"))
                    .unwrap()
                    .encode()
            })
            .collect();
        cache.analyze_bytes(&wires[0]);
        cache.analyze_bytes(&wires[1]);
        // Touch 0 so 1 becomes the eviction victim.
        assert!(cache.analyze_bytes(&wires[0]).1);
        cache.analyze_bytes(&wires[2]);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.analyze_bytes(&wires[0]).1, "0 survived");
        assert!(!cache.analyze_bytes(&wires[1]).1, "1 was evicted");
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = AnalysisCache::new(4);
        let wire = compile_source(AGENT).unwrap().encode();
        cache.analyze_bytes(&wire);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
        assert!(!cache.analyze_bytes(&wire).1, "cleared entry re-misses");
    }
}
