//! Lint pass: structured diagnostics over verified bytecode.
//!
//! Lints never reject a program by themselves — that is the verifier's
//! job. They flag patterns that are *suspicious* for a mobile agent:
//! code that can never run, briefcase folders consumed but never
//! produced, travel destinations that will always fail to parse, and
//! loops that burn fuel without making progress toward `go`/`exit`.
//!
//! The control-flow analysis here is deliberately sharper than the
//! verifier's: conditional jumps whose condition was pushed by a literal
//! (`Const`/`True`/`False`/`Nil`) are folded to their taken edge, so
//! `while (1) { ... }` is understood as an unconditional loop. That keeps
//! the canonical Figure-4 agent clean — its `while (1)` epilogue is
//! genuinely unreachable, which is the compiler's doing, not the
//! programmer's.

use std::collections::BTreeSet;
use std::fmt;

use tacoma_uri::AgentUri;

use crate::program::{Const, Program};
use crate::{Builtin, Op};

use super::capabilities::{capabilities, Capabilities};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable.
    Warning,
    /// Will fail at run time on every execution that reaches it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable lint identifiers (the `TAXnnn` codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum LintCode {
    /// TAX001: code that no execution can reach.
    UnreachableCode,
    /// TAX002: a folder is read but never written (and cannot arrive via
    /// meet/await or be named dynamically).
    UnwrittenFolder,
    /// TAX003: a constant `go()`/`spawn()` target that fails to parse as
    /// an agent URI, so the travel fails on every execution.
    BadTravelTarget,
    /// TAX004: a loop with no escape edge and no fuel-consuming progress
    /// toward `go`/`exit` — it can only end by exhausting fuel.
    DivergentLoop,
    /// TAX005: a written (tainted) folder is aboard when the agent ships
    /// itself to a host outside the declared itinerary — collected data
    /// escapes to a host the capability grant does not cover.
    TaintedEscape,
    /// TAX006: a wrapper's effective manifest exceeds the wrapped agent's
    /// — the outer layer can reach hosts the inner agent never declared.
    CapabilityWidening,
    /// TAX007: a travel loop appends to a folder it never drains, so the
    /// briefcase grows without bound along a cycle in the hop graph.
    UnboundedGrowth,
    /// TAX008: a folder is written but never read nor shipped on any
    /// path — dead weight in the briefcase.
    DeadFolder,
}

impl LintCode {
    /// The stable `TAXnnn` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::UnreachableCode => "TAX001",
            LintCode::UnwrittenFolder => "TAX002",
            LintCode::BadTravelTarget => "TAX003",
            LintCode::DivergentLoop => "TAX004",
            LintCode::TaintedEscape => "TAX005",
            LintCode::CapabilityWidening => "TAX006",
            LintCode::UnboundedGrowth => "TAX007",
            LintCode::DeadFolder => "TAX008",
        }
    }

    /// Default severity for this lint.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::BadTravelTarget | LintCode::TaintedEscape => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding, anchored to a bytecode offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// How serious it is.
    pub severity: Severity,
    /// Name of the function the finding is in.
    pub function: String,
    /// Instruction offset within that function.
    pub offset: usize,
    /// Byte offset of the instruction within the encoded program, when
    /// the finding anchors to a concrete site — lets tools render
    /// `file:+byte` locations pointing into the wire artifact.
    pub byte_offset: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the finding's location `file:fn:offset` style (with the
    /// wire byte offset appended as `+byte` when known), for CLI output.
    pub fn location(&self, file: &str) -> String {
        match self.byte_offset {
            Some(b) => format!("{file}:{}:{}:+{b}", self.function, self.offset),
            None => format!("{file}:{}:{}", self.function, self.offset),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] fn {} @{}: {}",
            self.severity, self.code, self.function, self.offset, self.message
        )
    }
}

/// Briefcase folders that conventionally arrive *with* the agent, so
/// reading them without a prior write is normal (the Figure-4 agent reads
/// `HOSTS` it was launched with).
pub(super) fn is_input_folder(name: &str) -> bool {
    use tacoma_briefcase::folders;
    matches!(
        name,
        folders::CODE
            | folders::CODE_TYPE
            | folders::HOSTS
            | folders::SIGNATURE
            | folders::PRINCIPAL
            | folders::AGENT_NAME
            | folders::COMMAND
            | folders::ARGS
            | folders::REPLY_TO
            | folders::ARCH
    )
}

/// Truthiness of a literal-push instruction, if it is one.
fn literal_truthiness(program: &Program, op: Op) -> Option<bool> {
    match op {
        Op::True => Some(true),
        Op::False | Op::Nil => Some(false),
        Op::Const(idx) => match program.constants().get(idx as usize)? {
            Const::Int(v) => Some(*v != 0),
            Const::Str(s) => Some(!s.is_empty()),
        },
        _ => None,
    }
}

/// The folded control-flow successors of `code[pc]`.
///
/// Terminal instructions (`Return`, `exit(...)`) have none. Conditional
/// jumps whose condition is a literal keep only the edge that literal
/// selects.
pub(super) fn successors(program: &Program, code: &[Op], pc: usize) -> Vec<usize> {
    match code[pc] {
        Op::Return
        | Op::CallBuiltin {
            builtin: Builtin::Exit,
            ..
        } => vec![],
        Op::Jump(t) => vec![t as usize],
        Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => {
            let jump_if = matches!(code[pc], Op::JumpIfTrue(_));
            let folded = pc
                .checked_sub(1)
                .and_then(|prev| literal_truthiness(program, code[prev]));
            match folded {
                Some(truth) if truth == jump_if => vec![t as usize],
                Some(_) => vec![pc + 1],
                None => vec![t as usize, pc + 1],
            }
        }
        _ => vec![pc + 1],
    }
}

/// Reachable-offset bitmap under the folded CFG.
pub(super) fn folded_reachability(program: &Program, code: &[Op]) -> Vec<bool> {
    let mut reachable = vec![false; code.len()];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if pc >= code.len() || reachable[pc] {
            continue;
        }
        reachable[pc] = true;
        stack.extend(successors(program, code, pc));
    }
    reachable
}

/// Runs every lint over `program`, which must already have passed
/// [`super::verify`] (jump targets in bounds, etc.). Findings are sorted
/// by function, then offset, then code.
pub fn lint(program: &Program) -> Vec<Diagnostic> {
    let caps = capabilities(program);
    let mut out = Vec::new();

    for (fn_idx, proto) in program.functions().iter().enumerate() {
        let reachable_fn = caps.reachable_functions.contains(&fn_idx);
        let reachable = folded_reachability(program, &proto.code);
        lint_unreachable(program, fn_idx, &reachable, &mut out);
        if reachable_fn {
            lint_travel_targets(program, fn_idx, &reachable, &mut out);
            lint_divergent_loops(program, fn_idx, &reachable, &mut out);
        }
    }
    lint_unwritten_folders(program, &caps, &mut out);

    out.sort_by(|a, b| (&a.function, a.offset, a.code).cmp(&(&b.function, b.offset, b.code)));
    out
}

/// TAX001 — report each maximal unreachable run, after discarding
/// compiler scaffolding: a run's leading `Pop` (the discard belonging to
/// a terminal expression statement such as `exit(0);`) and a trailing
/// `Nil`/`Return` implicit-epilogue suffix are not programmer code.
fn lint_unreachable(
    program: &Program,
    fn_idx: usize,
    reachable: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    let proto = &program.functions()[fn_idx];
    let code = &proto.code;
    let mut pc = 0;
    while pc < code.len() {
        if reachable[pc] {
            pc += 1;
            continue;
        }
        let mut end = pc;
        while end < code.len() && !reachable[end] {
            end += 1;
        }
        // Trim compiler scaffolding from the run [pc, end).
        let mut lo = pc;
        while lo < end && code[lo] == Op::Pop {
            lo += 1;
        }
        let mut hi = end;
        if hi == code.len() {
            if hi > lo && code[hi - 1] == Op::Return {
                hi -= 1;
            }
            if hi > lo && code[hi - 1] == Op::Nil {
                hi -= 1;
            }
        }
        if lo < hi {
            out.push(Diagnostic {
                code: LintCode::UnreachableCode,
                severity: LintCode::UnreachableCode.severity(),
                function: proto.name.clone(),
                offset: lo,
                byte_offset: program.byte_offset_of(fn_idx, lo),
                message: format!(
                    "unreachable code ({} instruction{})",
                    hi - lo,
                    if hi - lo == 1 { "" } else { "s" }
                ),
            });
        }
        pc = end;
    }
}

/// TAX002 — folders read but never written. Suppressed entirely when the
/// agent can receive folders some other way: dynamic folder names, or
/// briefcase-merging communication (`meet`/`bc_recv`).
fn lint_unwritten_folders(program: &Program, caps: &Capabilities, out: &mut Vec<Diagnostic>) {
    if caps.dynamic_folders || caps.communicates() {
        return;
    }
    let orphaned: BTreeSet<&String> = caps
        .folders_read
        .iter()
        .filter(|f| !caps.folders_written.contains(*f) && !is_input_folder(f))
        .collect();
    if orphaned.is_empty() {
        return;
    }
    // Anchor each finding at the first read site of that folder.
    for &fn_idx in &caps.reachable_functions {
        let Some(proto) = program.functions().get(fn_idx) else {
            continue;
        };
        for (pc, &op) in proto.code.iter().enumerate() {
            let Op::CallBuiltin { builtin, argc } = op else {
                continue;
            };
            if !matches!(
                builtin,
                Builtin::BcGet | Builtin::BcLen | Builtin::BcHas | Builtin::BcRemove
            ) {
                continue;
            }
            let Some(folder) =
                super::capabilities::constant_str_arg0(program, &proto.code, pc, argc as usize)
            else {
                continue;
            };
            if orphaned.contains(&folder)
                && !out.iter().any(|d| {
                    d.code == LintCode::UnwrittenFolder
                        && d.message.contains(&format!("\"{folder}\""))
                })
            {
                out.push(Diagnostic {
                    code: LintCode::UnwrittenFolder,
                    severity: LintCode::UnwrittenFolder.severity(),
                    function: proto.name.clone(),
                    offset: pc,
                    byte_offset: program.byte_offset_of(fn_idx, pc),
                    message: format!(
                        "folder \"{folder}\" is read but never written and does not arrive with the briefcase"
                    ),
                });
            }
        }
    }
}

/// TAX003 — constant travel targets that can never parse as agent URIs.
fn lint_travel_targets(
    program: &Program,
    fn_idx: usize,
    reachable: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    let proto = &program.functions()[fn_idx];
    for (pc, &op) in proto.code.iter().enumerate() {
        if !reachable[pc] {
            continue;
        }
        let Op::CallBuiltin {
            builtin: builtin @ (Builtin::Go | Builtin::Spawn),
            argc,
        } = op
        else {
            continue;
        };
        let Some(target) =
            super::capabilities::constant_str_arg0(program, &proto.code, pc, argc as usize)
        else {
            continue;
        };
        if let Err(e) = target.parse::<AgentUri>() {
            out.push(Diagnostic {
                code: LintCode::BadTravelTarget,
                severity: LintCode::BadTravelTarget.severity(),
                function: proto.name.clone(),
                offset: pc,
                byte_offset: program.byte_offset_of(fn_idx, pc),
                message: format!("{}(\"{target}\") can never succeed: {e}", builtin.name()),
            });
        }
    }
}

/// TAX004 — loops that can only end by running out of fuel.
///
/// For each back edge `pc → t` (with `t <= pc`) in reachable code, the
/// loop body is the contiguous range `[t, pc]` (the compiler emits
/// structured loops). The loop is divergent when no reachable
/// instruction in the body has a folded successor outside the range
/// (no escape) and the body contains no `go`/`exit`/`bc_recv` and no
/// function call (a callee could exit).
fn lint_divergent_loops(
    program: &Program,
    fn_idx: usize,
    reachable: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    let proto = &program.functions()[fn_idx];
    let code = &proto.code;
    let mut reported = BTreeSet::new();
    for (pc, &op) in code.iter().enumerate() {
        if !reachable[pc] {
            continue;
        }
        let (Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t)) = op else {
            continue;
        };
        let t = t as usize;
        if t > pc || !reported.insert(t) {
            continue;
        }
        let body = t..=pc;
        let mut escapes = false;
        let mut progresses = false;
        for q in body.clone() {
            if !reachable[q] {
                continue;
            }
            match code[q] {
                Op::Call { .. }
                | Op::CallBuiltin {
                    builtin: Builtin::Go | Builtin::Exit | Builtin::AwaitBc,
                    ..
                } => progresses = true,
                _ => {}
            }
            if successors(program, code, q)
                .iter()
                .any(|s| !body.contains(s))
            {
                escapes = true;
            }
        }
        if !escapes && !progresses {
            out.push(Diagnostic {
                code: LintCode::DivergentLoop,
                severity: LintCode::DivergentLoop.severity(),
                function: proto.name.clone(),
                offset: t,
                byte_offset: program.byte_offset_of(fn_idx, t),
                message: "loop can only end by exhausting fuel: no exit path and no progress toward go/exit".into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        let p = compile_source(src).unwrap();
        super::super::verify(&p).expect("test programs must verify");
        lint(&p)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn figure4_hello_is_clean() {
        let diags = lint_src(
            r#"
            fn main() {
                while (1) {
                    display("Hello world");
                    let e = bc_remove("HOSTS", 0);
                    if (e == nil) { exit(0); }
                    if (go(e)) { display("Unable to reach " + e); }
                }
            }
            "#,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn tax001_code_after_exit() {
        let diags = lint_src(
            r#"
            fn main() {
                exit(0);
                display("never shown");
            }
            "#,
        );
        assert_eq!(codes(&diags), ["TAX001"], "{diags:?}");
        assert!(diags[0].message.contains("unreachable"));
    }

    #[test]
    fn tax001_not_fired_for_bare_exit_epilogue() {
        // Only the compiler's implicit `Nil; Return` (plus the statement
        // Pop) follows exit — no programmer code is dead.
        assert!(lint_src("fn main() { exit(0); }").is_empty());
    }

    #[test]
    fn tax002_folder_read_never_written() {
        let diags = lint_src(
            r#"
            fn main() {
                let v = bc_get("SCRATCH", 0);
                display(v);
                exit(0);
            }
            "#,
        );
        assert_eq!(codes(&diags), ["TAX002"], "{diags:?}");
        assert!(diags[0].message.contains("SCRATCH"));
    }

    #[test]
    fn tax002_quiet_when_written_or_conventional() {
        assert!(lint_src(
            r#"
            fn main() {
                bc_append("SCRATCH", 1);
                let v = bc_get("SCRATCH", 0);
                let h = bc_get("HOSTS", 0);
                display(v, h);
                exit(0);
            }
            "#,
        )
        .is_empty());
    }

    #[test]
    fn tax002_quiet_when_agent_receives_briefcases() {
        // A meet() reply can merge folders in, so reads are plausible.
        assert!(lint_src(
            r#"
            fn main() {
                meet("tacoma://h1/responder");
                let v = bc_get("ANSWER", 0);
                display(v);
                exit(0);
            }
            "#,
        )
        .is_empty());
    }

    #[test]
    fn tax003_unparseable_go_target() {
        let diags = lint_src(
            r#"
            fn main() {
                if (go("not a uri!!")) { display("failed"); }
                exit(0);
            }
            "#,
        );
        assert_eq!(codes(&diags), ["TAX003"], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn tax003_quiet_for_valid_target() {
        assert!(lint_src(
            r#"
            fn main() {
                if (go("tacoma://h2/vm_script")) { display("failed"); }
                exit(0);
            }
            "#,
        )
        .is_empty());
    }

    #[test]
    fn tax004_busy_loop() {
        let diags = lint_src(
            r#"
            fn main() {
                let i = 0;
                while (1) { i = i + 1; }
            }
            "#,
        );
        assert_eq!(codes(&diags), ["TAX004"], "{diags:?}");
    }

    #[test]
    fn tax004_quiet_for_terminating_loop() {
        assert!(lint_src(
            r#"
            fn main() {
                let i = 0;
                while (i < 10) { i = i + 1; }
                exit(i);
            }
            "#,
        )
        .is_empty());
    }

    #[test]
    fn tax004_quiet_for_loop_with_break() {
        assert!(lint_src(
            r#"
            fn main() {
                let i = 0;
                while (1) {
                    i = i + 1;
                    if (i > 3) { break; }
                }
                exit(i);
            }
            "#,
        )
        .is_empty());
    }

    #[test]
    fn tax004_quiet_for_server_loop() {
        // Blocking on bc_recv is progress: the agent is waiting, not
        // burning fuel.
        assert!(lint_src(
            r#"
            fn main() {
                while (1) {
                    let bc = bc_recv(1000);
                    if (bc == nil) { exit(0); }
                }
            }
            "#,
        )
        .is_empty());
    }

    #[test]
    fn diagnostics_render_with_code_and_site() {
        let diags = lint_src("fn main() { exit(0); display(1); }");
        let shown = diags[0].to_string();
        assert!(shown.contains("warning[TAX001]"), "{shown}");
        assert!(shown.contains("fn main"), "{shown}");
    }
}
