//! The TaxScript stack VM — the execution engine behind `vm_script` and
//! `vm_bin`.
//!
//! The VM is the **safety mechanism** of its virtual machine in the TAX
//! sense (§3.3): agent code cannot panic the host, cannot touch anything
//! but its own briefcase and the [`HostHooks`], and runs under an
//! instruction budget (fuel) and bounded stacks.

use tacoma_briefcase::Briefcase;

use crate::dispatch::{run_fused, ExecScratch};
use crate::program::Const;
use crate::{Builtin, GoDecision, HostHooks, Op, Program, RuntimeError, Value};

/// Default instruction budget: generous for real agents, finite for
/// runaway ones.
pub const DEFAULT_FUEL: u64 = 50_000_000;

pub(crate) const MAX_CALL_DEPTH: usize = 200;
pub(crate) const MAX_VALUE_STACK: usize = 1 << 16;

/// How an agent run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// `main` returned normally.
    Finished,
    /// The agent called `exit(code)`.
    Exit(i64),
    /// The agent called `go(uri)` and the host accepted the move: this
    /// instance is terminated; the briefcase (as mutated so far) should be
    /// shipped to `to` and `main` re-entered there.
    Moved {
        /// Destination agent URI.
        to: String,
    },
}

struct Frame {
    fn_idx: usize,
    pc: usize,
    locals: Vec<Value>,
    stack_base: usize,
}

/// A virtual machine executing one agent program.
#[derive(Debug)]
pub struct Vm<'p, H> {
    program: &'p Program,
    hooks: H,
    fuel: u64,
}

impl<'p, H: HostHooks> Vm<'p, H> {
    /// A VM over `program` with the [`DEFAULT_FUEL`] budget.
    pub fn new(program: &'p Program, hooks: H) -> Self {
        Vm {
            program,
            hooks,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The host hooks (e.g. to read collected `display` output).
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Mutable access to the host hooks.
    pub fn hooks_mut(&mut self) -> &mut H {
        &mut self.hooks
    }

    /// Consumes the VM, returning the hooks.
    pub fn into_hooks(self) -> H {
        self.hooks
    }

    /// Runs `main` against the agent's briefcase on the fused compile
    /// tier (the program is lowered on first use and the lowering is
    /// cached on the [`Program`], so repeat launches skip it).
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; the briefcase retains all mutations made up
    /// to the fault (consistent with an agent crashing mid-computation).
    pub fn run(&mut self, briefcase: &mut Briefcase) -> Result<Outcome, RuntimeError> {
        let mut scratch = ExecScratch::new();
        self.run_with_scratch(briefcase, &mut scratch)
    }

    /// Like [`Vm::run`], but reusing a caller-provided [`ExecScratch`]
    /// so warm launches skip the stack/locals/frame allocations.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`], as for [`Vm::run`].
    pub fn run_with_scratch(
        &mut self,
        briefcase: &mut Briefcase,
        scratch: &mut ExecScratch,
    ) -> Result<Outcome, RuntimeError> {
        let program = self.program;
        run_fused(
            program.exec(),
            &mut self.hooks,
            &mut self.fuel,
            scratch,
            briefcase,
        )
    }

    /// Fuel remaining after a run (both tiers decrement the budget in
    /// place); benchmarks use it to count executed wire instructions.
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel
    }

    /// The legacy per-instruction interpreter, kept as the reference
    /// tier: the `prop_differential` suite proves the fused dispatcher
    /// matches it and `exp_e13` measures the speedup against it.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`], as for [`Vm::run`].
    pub fn run_legacy(&mut self, briefcase: &mut Briefcase) -> Result<Outcome, RuntimeError> {
        let main_idx = self.program.main_index();
        let main = &self.program.functions[main_idx];
        let mut stack: Vec<Value> = Vec::with_capacity(64);
        let mut frames = vec![Frame {
            fn_idx: main_idx,
            pc: 0,
            locals: vec![Value::Nil; main.n_locals as usize],
            stack_base: 0,
        }];

        loop {
            // Charge one unit per instruction: a budget of N executes
            // exactly N instructions before running dry.
            if self.fuel == 0 {
                return Err(RuntimeError::OutOfFuel);
            }
            self.fuel -= 1;
            if stack.len() > MAX_VALUE_STACK {
                return Err(RuntimeError::StackOverflow);
            }

            let frame = frames.last_mut().expect("frame stack nonempty");
            let code = &self.program.functions[frame.fn_idx].code;
            let Some(&op) = code.get(frame.pc) else {
                return Err(RuntimeError::CorruptProgram {
                    detail: "pc ran off the end",
                });
            };
            frame.pc += 1;

            match op {
                Op::Const(idx) => {
                    let v = match self.program.constants.get(idx as usize) {
                        Some(Const::Int(v)) => Value::Int(*v),
                        Some(Const::Str(s)) => Value::Str(s.clone()),
                        None => {
                            return Err(RuntimeError::CorruptProgram {
                                detail: "bad constant index",
                            })
                        }
                    };
                    stack.push(v);
                }
                Op::Nil => stack.push(Value::Nil),
                Op::True => stack.push(Value::Bool(true)),
                Op::False => stack.push(Value::Bool(false)),
                Op::Load(slot) => {
                    let v = frame.locals.get(slot as usize).cloned().ok_or(
                        RuntimeError::CorruptProgram {
                            detail: "bad local slot",
                        },
                    )?;
                    stack.push(v);
                }
                Op::Store(slot) => {
                    let v = pop(&mut stack)?;
                    let dest = frame.locals.get_mut(slot as usize).ok_or(
                        RuntimeError::CorruptProgram {
                            detail: "bad local slot",
                        },
                    )?;
                    *dest = v;
                }
                Op::Pop => {
                    pop(&mut stack)?;
                }
                Op::Dup => {
                    let v = stack.last().cloned().ok_or(RuntimeError::CorruptProgram {
                        detail: "dup on empty stack",
                    })?;
                    stack.push(v);
                }
                Op::Add => binary_add(&mut stack)?,
                Op::Sub => int_binop(&mut stack, "subtract", |a, b| Ok(a.wrapping_sub(b)))?,
                Op::Mul => int_binop(&mut stack, "multiply", |a, b| Ok(a.wrapping_mul(b)))?,
                Op::Div => int_binop(&mut stack, "divide", |a, b| {
                    if b == 0 {
                        Err(RuntimeError::DivisionByZero)
                    } else {
                        Ok(a.wrapping_div(b))
                    }
                })?,
                Op::Mod => int_binop(&mut stack, "modulo", |a, b| {
                    if b == 0 {
                        Err(RuntimeError::DivisionByZero)
                    } else {
                        Ok(a.wrapping_rem(b))
                    }
                })?,
                Op::Neg => {
                    let v = pop(&mut stack)?;
                    match v {
                        Value::Int(i) => stack.push(Value::Int(i.wrapping_neg())),
                        other => {
                            return Err(RuntimeError::TypeError {
                                op: "negate",
                                got: other.type_name().to_owned(),
                            })
                        }
                    }
                }
                Op::Not => {
                    let v = pop(&mut stack)?;
                    stack.push(Value::Bool(!v.truthy()));
                }
                Op::Eq => {
                    let (a, b) = pop2(&mut stack)?;
                    stack.push(Value::Bool(a == b));
                }
                Op::Ne => {
                    let (a, b) = pop2(&mut stack)?;
                    stack.push(Value::Bool(a != b));
                }
                Op::Lt => compare(&mut stack, "<", std::cmp::Ordering::is_lt)?,
                Op::Le => compare(&mut stack, "<=", std::cmp::Ordering::is_le)?,
                Op::Gt => compare(&mut stack, ">", std::cmp::Ordering::is_gt)?,
                Op::Ge => compare(&mut stack, ">=", std::cmp::Ordering::is_ge)?,
                Op::Jump(target) => frame.pc = target as usize,
                Op::JumpIfFalse(target) => {
                    if !pop(&mut stack)?.truthy() {
                        let frame = frames.last_mut().expect("frame stack nonempty");
                        frame.pc = target as usize;
                    }
                }
                Op::JumpIfTrue(target) => {
                    if pop(&mut stack)?.truthy() {
                        let frame = frames.last_mut().expect("frame stack nonempty");
                        frame.pc = target as usize;
                    }
                }
                Op::MakeList(n) => {
                    let n = n as usize;
                    if stack.len() < n {
                        return Err(RuntimeError::CorruptProgram {
                            detail: "list underflow",
                        });
                    }
                    let items = stack.split_off(stack.len() - n);
                    stack.push(Value::List(items));
                }
                Op::Index => {
                    let (target, index) = pop2(&mut stack)?;
                    stack.push(index_value(&target, &index));
                }
                Op::Call { fn_idx, argc } => {
                    if frames.len() >= MAX_CALL_DEPTH {
                        return Err(RuntimeError::StackOverflow);
                    }
                    let callee = self.program.functions.get(fn_idx as usize).ok_or(
                        RuntimeError::CorruptProgram {
                            detail: "bad call target",
                        },
                    )?;
                    let argc = argc as usize;
                    if stack.len() < argc {
                        return Err(RuntimeError::CorruptProgram {
                            detail: "call underflow",
                        });
                    }
                    let mut locals = vec![Value::Nil; callee.n_locals as usize];
                    let args = stack.split_off(stack.len() - argc);
                    for (slot, arg) in args.into_iter().enumerate() {
                        if slot < locals.len() {
                            locals[slot] = arg;
                        }
                    }
                    frames.push(Frame {
                        fn_idx: fn_idx as usize,
                        pc: 0,
                        locals,
                        stack_base: stack.len(),
                    });
                }
                Op::Return => {
                    let ret = pop(&mut stack)?;
                    let done = frames.pop().expect("frame stack nonempty");
                    stack.truncate(done.stack_base);
                    if frames.is_empty() {
                        return Ok(Outcome::Finished);
                    }
                    stack.push(ret);
                }
                Op::CallBuiltin { builtin, argc } => {
                    let argc = argc as usize;
                    if stack.len() < argc {
                        return Err(RuntimeError::CorruptProgram {
                            detail: "builtin underflow",
                        });
                    }
                    let args = stack.split_off(stack.len() - argc);
                    match call_builtin(&mut self.hooks, builtin, &args, briefcase)? {
                        BuiltinResult::Value(v) => stack.push(v),
                        BuiltinResult::Terminal(outcome) => return Ok(outcome),
                    }
                }
            }
        }
    }
}

/// Executes one builtin against the hooks and briefcase. Shared by the
/// legacy interpreter and the fused dispatcher so host-visible behavior
/// cannot drift between tiers.
pub(crate) fn call_builtin<H: HostHooks>(
    hooks: &mut H,
    builtin: Builtin,
    args: &[Value],
    bc: &mut Briefcase,
) -> Result<BuiltinResult, RuntimeError> {
    use Builtin as B;
    let value = match builtin {
        B::Display => {
            let text: Vec<String> = args.iter().map(Value::render).collect();
            hooks.display(&text.join(" "));
            Value::Nil
        }
        B::Exit => {
            let code = args[0].expect_int("exit")?;
            return Ok(BuiltinResult::Terminal(Outcome::Exit(code)));
        }
        B::Go => {
            let uri = args[0].expect_str("go")?;
            match hooks.go(uri, bc) {
                GoDecision::Moved => {
                    return Ok(BuiltinResult::Terminal(Outcome::Moved {
                        to: uri.to_owned(),
                    }))
                }
                // Figure 4: `if (go(next, bc)) { display("Unable…") }`
                // — go returns truthy exactly on failure.
                GoDecision::Unreachable => Value::Int(1),
            }
        }
        B::Spawn => {
            let uri = args[0].expect_str("spawn")?;
            match hooks.spawn(uri, bc) {
                Some(instance) => Value::Str(instance),
                None => Value::Nil,
            }
        }
        B::Activate => {
            let uri = args[0].expect_str("activate")?;
            Value::Int(hooks.activate(uri, bc) as i64)
        }
        B::Meet => {
            let uri = args[0].expect_str("meet")?;
            match hooks.meet(uri, bc) {
                Some(reply) => {
                    bc.merge(reply);
                    Value::Int(1)
                }
                None => Value::Int(0),
            }
        }
        B::AwaitBc => {
            let timeout = args[0].expect_int("await_bc")?;
            match hooks.await_bc(timeout) {
                Some(incoming) => {
                    bc.merge(incoming);
                    Value::Int(1)
                }
                None => Value::Int(0),
            }
        }
        B::BcGet => {
            let folder = args[0].expect_str("bc_get")?;
            let idx = args[1].expect_int("bc_get")?;
            element_at(bc, folder, idx)
        }
        B::BcRemove => {
            let folder = args[0].expect_str("bc_remove")?;
            let idx = args[1].expect_int("bc_remove")?;
            if idx < 0 {
                Value::Nil
            } else {
                match bc.folder_mut(folder).and_then(|f| f.remove(idx as usize)) {
                    Some(e) => Value::from_element(&e),
                    None => Value::Nil,
                }
            }
        }
        B::BcAppend => {
            let folder = args[0].expect_str("bc_append")?;
            bc.append(folder, args[1].to_element());
            Value::Nil
        }
        B::BcSet => {
            let folder = args[0].expect_str("bc_set")?;
            bc.set_single(folder, args[1].to_element());
            Value::Nil
        }
        B::BcLen => {
            let folder = args[0].expect_str("bc_len")?;
            Value::Int(bc.folder(folder).map_or(0, |f| f.len() as i64))
        }
        B::BcClear => {
            let folder = args[0].expect_str("bc_clear")?;
            bc.remove_folder(folder);
            Value::Nil
        }
        B::BcHas => {
            let folder = args[0].expect_str("bc_has")?;
            Value::Bool(bc.contains_folder(folder))
        }
        B::Str => Value::Str(args[0].render()),
        B::Int => match &args[0] {
            Value::Int(v) => Value::Int(*v),
            Value::Bool(b) => Value::Int(*b as i64),
            Value::Str(s) => match s.trim().parse::<i64>() {
                Ok(v) => Value::Int(v),
                Err(_) => Value::Nil,
            },
            _ => Value::Nil,
        },
        B::Len => match &args[0] {
            Value::Str(s) => Value::Int(s.len() as i64),
            Value::List(l) => Value::Int(l.len() as i64),
            _ => {
                return Err(RuntimeError::BuiltinType {
                    name: "len",
                    expected: "a string or list",
                })
            }
        },
        B::Substr => {
            let s = args[0].expect_str("substr")?;
            let start = args[1].expect_int("substr")?.max(0) as usize;
            let count = args[2].expect_int("substr")?.max(0) as usize;
            let start = start.min(s.len());
            let end = start.saturating_add(count).min(s.len());
            // Clamp to char boundaries so slicing can't fault.
            let start = floor_char_boundary(s, start);
            let end = floor_char_boundary(s, end).max(start);
            Value::Str(s[start..end].to_owned())
        }
        B::Find => {
            let s = args[0].expect_str("find")?;
            let needle = args[1].expect_str("find")?;
            Value::Int(s.find(needle).map_or(-1, |i| i as i64))
        }
        B::Split => {
            let s = args[0].expect_str("split")?;
            let sep = args[1].expect_str("split")?;
            let parts: Vec<Value> = if sep.is_empty() {
                s.chars().map(|c| Value::Str(c.to_string())).collect()
            } else {
                s.split(sep).map(|p| Value::Str(p.to_owned())).collect()
            };
            Value::List(parts)
        }
        B::Join => {
            let list = args[0].expect_list("join")?;
            let sep = args[1].expect_str("join")?;
            let parts: Vec<String> = list.iter().map(Value::render).collect();
            Value::Str(parts.join(sep))
        }
        B::StartsWith => {
            let s = args[0].expect_str("starts_with")?;
            let prefix = args[1].expect_str("starts_with")?;
            Value::Bool(s.starts_with(prefix))
        }
        B::Contains => {
            let s = args[0].expect_str("contains")?;
            let needle = args[1].expect_str("contains")?;
            Value::Bool(s.contains(needle))
        }
        B::Push => {
            let mut list = args[0].expect_list("push")?.to_vec();
            list.push(args[1].clone());
            Value::List(list)
        }
        B::Get => {
            let index = args[1].clone();
            index_value(&args[0], &index)
        }
        B::NowMs => Value::Int(hooks.now_ms()),
        B::HostName => Value::Str(hooks.host_name()),
    };
    Ok(BuiltinResult::Value(value))
}

pub(crate) enum BuiltinResult {
    Value(Value),
    Terminal(Outcome),
}

pub(crate) fn pop(stack: &mut Vec<Value>) -> Result<Value, RuntimeError> {
    stack.pop().ok_or(RuntimeError::CorruptProgram {
        detail: "value stack underflow",
    })
}

pub(crate) fn pop2(stack: &mut Vec<Value>) -> Result<(Value, Value), RuntimeError> {
    let b = pop(stack)?;
    let a = pop(stack)?;
    Ok((a, b))
}

/// `Add` semantics on two values: wrapping integer addition, list
/// concatenation, string rendering when either side is a string.
/// Shared by both tiers and the lowering pass's constant folder.
pub(crate) fn add_values(a: &Value, b: &Value) -> Result<Value, RuntimeError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(*y))),
        (Value::List(x), Value::List(y)) => {
            let mut joined = x.clone();
            joined.extend(y.iter().cloned());
            Ok(Value::List(joined))
        }
        (Value::Str(_), _) | (_, Value::Str(_)) => {
            Ok(Value::Str(format!("{}{}", a.render(), b.render())))
        }
        _ => Err(RuntimeError::TypeError {
            op: "add",
            got: format!("{} and {}", a.type_name(), b.type_name()),
        }),
    }
}

fn binary_add(stack: &mut Vec<Value>) -> Result<(), RuntimeError> {
    let (a, b) = pop2(stack)?;
    let result = add_values(&a, &b)?;
    stack.push(result);
    Ok(())
}

pub(crate) fn int_binop(
    stack: &mut Vec<Value>,
    op: &'static str,
    f: impl Fn(i64, i64) -> Result<i64, RuntimeError>,
) -> Result<(), RuntimeError> {
    let (a, b) = pop2(stack)?;
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => {
            stack.push(Value::Int(f(*x, *y)?));
            Ok(())
        }
        _ => Err(RuntimeError::TypeError {
            op,
            got: format!("{} and {}", a.type_name(), b.type_name()),
        }),
    }
}

/// Comparison ordering for `<`/`<=`/`>`/`>=`: ints and strings only,
/// with the tier-shared type error for anything else.
pub(crate) fn compare_values(
    a: &Value,
    b: &Value,
    op: &'static str,
) -> Result<std::cmp::Ordering, RuntimeError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        _ => Err(RuntimeError::TypeError {
            op,
            got: format!("{} and {}", a.type_name(), b.type_name()),
        }),
    }
}

fn compare(
    stack: &mut Vec<Value>,
    op: &'static str,
    accept: impl Fn(std::cmp::Ordering) -> bool,
) -> Result<(), RuntimeError> {
    let (a, b) = pop2(stack)?;
    let ordering = compare_values(&a, &b, op)?;
    stack.push(Value::Bool(accept(ordering)));
    Ok(())
}

pub(crate) fn index_value(target: &Value, index: &Value) -> Value {
    let Value::Int(i) = index else {
        return Value::Nil;
    };
    if *i < 0 {
        return Value::Nil;
    }
    let i = *i as usize;
    match target {
        Value::List(items) => items.get(i).cloned().unwrap_or(Value::Nil),
        Value::Str(s) => s
            .chars()
            .nth(i)
            .map_or(Value::Nil, |c| Value::Str(c.to_string())),
        _ => Value::Nil,
    }
}

fn element_at(bc: &Briefcase, folder: &str, idx: i64) -> Value {
    if idx < 0 {
        return Value::Nil;
    }
    match bc.folder(folder).and_then(|f| f.get(idx as usize)) {
        Some(e) => Value::from_element(e),
        None => Value::Nil,
    }
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_source, NullHooks};

    fn run(src: &str) -> (Result<Outcome, RuntimeError>, Briefcase, Vec<String>) {
        let program = compile_source(src).unwrap();
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(&program, NullHooks::default());
        let outcome = vm.run(&mut bc);
        let displayed = vm.into_hooks().displayed;
        (outcome, bc, displayed)
    }

    #[test]
    fn arithmetic_and_locals() {
        let (out, _, shown) = run("fn main() { let x = 2 + 3 * 4; display(x, x % 5, -x); }");
        assert_eq!(out.unwrap(), Outcome::Finished);
        assert_eq!(shown, vec!["14 4 -14"]);
    }

    #[test]
    fn string_concat_and_comparison() {
        let (out, _, shown) = run(r#"fn main() {
                display("a" + "b" + str(3));
                if ("abc" < "abd") { display("lt"); }
            }"#);
        assert_eq!(out.unwrap(), Outcome::Finished);
        assert_eq!(shown, vec!["ab3", "lt"]);
    }

    #[test]
    fn while_loop_with_break_continue() {
        let (out, _, shown) = run(r#"fn main() {
                let i = 0;
                while (1) {
                    i = i + 1;
                    if (i == 3) { continue; }
                    if (i > 5) { break; }
                    display(i);
                }
                display("done " + str(i));
            }"#);
        assert_eq!(out.unwrap(), Outcome::Finished);
        assert_eq!(shown, vec!["1", "2", "4", "5", "done 6"]);
    }

    #[test]
    fn recursion_fib() {
        let (out, _, shown) = run(r#"
            fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
            fn main() { display(fib(15)); }
            "#);
        assert_eq!(out.unwrap(), Outcome::Finished);
        assert_eq!(shown, vec!["610"]);
    }

    #[test]
    fn briefcase_builtins_mutate_state() {
        let (out, bc, _) = run(r#"fn main() {
                bc_append("RESULTS", "r1");
                bc_append("RESULTS", "r2");
                bc_set("STATUS", "done");
                if (bc_len("RESULTS") != 2) { exit(1); }
                if (!bc_has("STATUS")) { exit(2); }
                let first = bc_remove("RESULTS", 0);
                if (first != "r1") { exit(3); }
                exit(0);
            }"#);
        assert_eq!(out.unwrap(), Outcome::Exit(0));
        assert_eq!(bc.folder("RESULTS").unwrap().len(), 1);
        assert_eq!(bc.single_str("STATUS").unwrap(), "done");
    }

    #[test]
    fn figure4_agent_drains_hosts_under_null_hooks() {
        let program = compile_source(
            r#"fn main() {
                while (1) {
                    display("Hello world");
                    let e = bc_remove("HOSTS", 0);
                    if (e == nil) { exit(0); }
                    if (go(e)) { display("Unable to reach " + e); }
                }
            }"#,
        )
        .unwrap();
        let mut bc = Briefcase::new();
        bc.append("HOSTS", "tacoma://h1/vm")
            .append("HOSTS", "tacoma://h2/vm");
        let mut vm = Vm::new(&program, NullHooks::default());
        assert_eq!(vm.run(&mut bc).unwrap(), Outcome::Exit(0));
        let shown = &vm.hooks().displayed;
        assert_eq!(
            shown.as_slice(),
            [
                "Hello world",
                "Unable to reach tacoma://h1/vm",
                "Hello world",
                "Unable to reach tacoma://h2/vm",
                "Hello world",
            ]
        );
        assert!(bc.folder("HOSTS").unwrap().is_empty());
    }

    #[test]
    fn go_success_yields_moved() {
        struct AlwaysMove;
        impl HostHooks for AlwaysMove {
            fn display(&mut self, _: &str) {}
            fn go(&mut self, _: &str, _: &Briefcase) -> GoDecision {
                GoDecision::Moved
            }
            fn spawn(&mut self, _: &str, _: &Briefcase) -> Option<String> {
                None
            }
            fn activate(&mut self, _: &str, _: &Briefcase) -> bool {
                false
            }
            fn meet(&mut self, _: &str, _: &Briefcase) -> Option<Briefcase> {
                None
            }
            fn await_bc(&mut self, _: i64) -> Option<Briefcase> {
                None
            }
            fn now_ms(&mut self) -> i64 {
                0
            }
            fn host_name(&mut self) -> String {
                "x".into()
            }
        }
        let program =
            compile_source(r#"fn main() { go("tacoma://h1/vm"); display("unreachable"); }"#)
                .unwrap();
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(&program, AlwaysMove);
        assert_eq!(
            vm.run(&mut bc).unwrap(),
            Outcome::Moved {
                to: "tacoma://h1/vm".into()
            }
        );
    }

    #[test]
    fn division_by_zero_is_an_error_not_a_panic() {
        let (out, _, _) = run("fn main() { let x = 1 / 0; }");
        assert_eq!(out.unwrap_err(), RuntimeError::DivisionByZero);
        let (out, _, _) = run("fn main() { let x = 1 % 0; }");
        assert_eq!(out.unwrap_err(), RuntimeError::DivisionByZero);
    }

    #[test]
    fn type_errors_are_contained() {
        let (out, _, _) = run(r#"fn main() { let x = 1 - "a"; }"#);
        assert!(matches!(
            out.unwrap_err(),
            RuntimeError::TypeError { op: "subtract", .. }
        ));
        let (out, _, _) = run(r#"fn main() { let x = nil < 1; }"#);
        assert!(matches!(out.unwrap_err(), RuntimeError::TypeError { .. }));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let program = compile_source("fn main() { while (1) { } }").unwrap();
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(&program, NullHooks::default()).with_fuel(10_000);
        assert_eq!(vm.run(&mut bc).unwrap_err(), RuntimeError::OutOfFuel);
    }

    #[test]
    fn fuel_budget_is_exact_at_the_boundary() {
        // `fn main() { exit(0); }` executes exactly two instructions:
        // Const(0) and the exit builtin. A budget of 2 must suffice; a
        // budget of 1 must run dry (regression: fuel was double-charged,
        // so budget N bought only N-1 instructions).
        let program = compile_source("fn main() { exit(0); }").unwrap();
        let mut bc = Briefcase::new();

        let mut vm = Vm::new(&program, NullHooks::default()).with_fuel(2);
        assert_eq!(vm.run(&mut bc).unwrap(), Outcome::Exit(0));

        let mut vm = Vm::new(&program, NullHooks::default()).with_fuel(1);
        assert_eq!(vm.run(&mut bc).unwrap_err(), RuntimeError::OutOfFuel);
    }

    #[test]
    fn zero_fuel_executes_nothing() {
        let program = compile_source("fn main() { exit(0); }").unwrap();
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(&program, NullHooks::default()).with_fuel(0);
        assert_eq!(vm.run(&mut bc).unwrap_err(), RuntimeError::OutOfFuel);
    }

    #[test]
    fn unbounded_recursion_overflows_cleanly() {
        let program = compile_source("fn f() { return f(); } fn main() { f(); }").unwrap();
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(&program, NullHooks::default());
        assert_eq!(vm.run(&mut bc).unwrap_err(), RuntimeError::StackOverflow);
    }

    #[test]
    fn lists_index_and_concat() {
        let (out, _, shown) = run(r#"fn main() {
                let l = [1, 2] + [3];
                display(len(l), l[0], l[2], l[9] == nil);
                let l2 = push(l, 4);
                display(len(l), len(l2), get(l2, 3));
            }"#);
        assert_eq!(out.unwrap(), Outcome::Finished);
        assert_eq!(shown, vec!["3 1 3 true", "3 4 4"]);
    }

    #[test]
    fn string_builtins() {
        let (out, _, shown) = run(r#"fn main() {
                let s = "tacoma://h1/vm_c:42";
                display(substr(s, 0, 6));
                display(find(s, "://"));
                display(starts_with(s, "tacoma"), contains(s, "vm_c"));
                display(join(split("a,b,c", ","), "-"));
                display(int("17") + 1, int("x") == nil);
            }"#);
        assert_eq!(out.unwrap(), Outcome::Finished);
        assert_eq!(shown, vec!["tacoma", "6", "true true", "a-b-c", "18 true"]);
    }

    #[test]
    fn substr_is_unicode_safe() {
        let (out, _, shown) = run(r#"fn main() { display(substr("æøå", 0, 1)); }"#);
        // 1 byte lands inside `æ`; clamped to the boundary → empty string.
        assert_eq!(out.unwrap(), Outcome::Finished);
        assert_eq!(shown, vec![""]);
    }

    #[test]
    fn meet_merges_reply_into_briefcase() {
        struct Replier;
        impl HostHooks for Replier {
            fn display(&mut self, _: &str) {}
            fn go(&mut self, _: &str, _: &Briefcase) -> GoDecision {
                GoDecision::Unreachable
            }
            fn spawn(&mut self, _: &str, _: &Briefcase) -> Option<String> {
                None
            }
            fn activate(&mut self, _: &str, _: &Briefcase) -> bool {
                true
            }
            fn meet(&mut self, _: &str, _: &Briefcase) -> Option<Briefcase> {
                let mut reply = Briefcase::new();
                reply.append("ANSWER", "42");
                Some(reply)
            }
            fn await_bc(&mut self, _: i64) -> Option<Briefcase> {
                None
            }
            fn now_ms(&mut self) -> i64 {
                7
            }
            fn host_name(&mut self) -> String {
                "srv".into()
            }
        }
        let program = compile_source(
            r#"fn main() {
                if (meet("ag_oracle")) { display(bc_get("ANSWER", 0)); }
                display(now_ms(), host_name());
            }"#,
        )
        .unwrap();
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(&program, Replier);
        vm.run(&mut bc).unwrap();
        // Hooks are consumed; inspect via displayed? Replier doesn't record.
        assert_eq!(bc.single_str("ANSWER").unwrap(), "42");
    }

    #[test]
    fn exit_code_is_propagated() {
        let (out, _, _) = run("fn main() { exit(42); display(1); }");
        assert_eq!(out.unwrap(), Outcome::Exit(42));
    }
}
