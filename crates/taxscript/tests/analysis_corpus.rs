//! Golden corpus for the static analyzer: one fixture per lint code,
//! pinned to the exact diagnostics (code, function, offset) it must
//! raise, plus a clean control fixture. Every fixture must pass the
//! bytecode verifier — lints fire on verified programs only.

use tacoma_taxscript::analysis::{analyze, LintCode, Severity};
use tacoma_taxscript::compile_source;

/// Compiles a fixture and returns `(code, function, offset)` triples for
/// every diagnostic the analyzer raises on it.
fn diagnostics_of(src: &str) -> Vec<(LintCode, String, usize)> {
    let program = compile_source(src).expect("fixture compiles");
    let report = analyze(&program).expect("fixture verifies");
    report
        .diagnostics
        .iter()
        .map(|d| (d.code, d.function.clone(), d.offset))
        .collect()
}

#[test]
fn clean_fixture_raises_nothing() {
    let src = include_str!("fixtures/lints/clean.tax");
    assert_eq!(diagnostics_of(src), []);
}

#[test]
fn tax001_unreachable_code() {
    let src = include_str!("fixtures/lints/tax001_unreachable.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::UnreachableCode, "main".to_owned(), 6)]
    );
}

#[test]
fn tax002_folder_read_never_written() {
    let src = include_str!("fixtures/lints/tax002_unwritten_folder.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::UnwrittenFolder, "main".to_owned(), 2)]
    );
}

#[test]
fn tax003_bad_constant_travel_target() {
    let src = include_str!("fixtures/lints/tax003_bad_travel_target.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::BadTravelTarget, "main".to_owned(), 1)]
    );
    // TAX003 is the one lint promoted to an error: the travel is
    // statically guaranteed to fail.
    let program = compile_source(src).unwrap();
    let report = analyze(&program).unwrap();
    assert_eq!(report.diagnostics[0].severity, Severity::Error);
    assert!(report.has_errors());
}

#[test]
fn tax004_divergent_loop() {
    let src = include_str!("fixtures/lints/tax004_divergent_loop.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::DivergentLoop, "main".to_owned(), 2)]
    );
}

#[test]
fn diagnostics_render_with_code_and_site() {
    let src = include_str!("fixtures/lints/tax001_unreachable.tax");
    let program = compile_source(src).unwrap();
    let report = analyze(&program).unwrap();
    let rendered = report.diagnostics[0].to_string();
    assert!(
        rendered.starts_with("warning[TAX001] fn main @6:"),
        "{rendered}"
    );
}

#[test]
fn every_fixture_passes_the_verifier() {
    for src in [
        include_str!("fixtures/lints/clean.tax"),
        include_str!("fixtures/lints/tax001_unreachable.tax"),
        include_str!("fixtures/lints/tax002_unwritten_folder.tax"),
        include_str!("fixtures/lints/tax003_bad_travel_target.tax"),
        include_str!("fixtures/lints/tax004_divergent_loop.tax"),
    ] {
        let program = compile_source(src).expect("fixture compiles");
        tacoma_taxscript::analysis::verify(&program).expect("fixture verifies");
    }
}
