//! Golden corpus for the static analyzer: one fixture per lint code,
//! pinned to the exact diagnostics (code, function, offset) it must
//! raise, plus a clean control fixture. Every fixture must pass the
//! bytecode verifier — lints fire on verified programs only.

use tacoma_taxscript::analysis::{analyze, flow_lints, FlowSummary, LintCode, Severity};
use tacoma_taxscript::compile_source;

/// Compiles a fixture and returns `(code, function, offset)` triples for
/// every diagnostic the analyzer raises on it.
fn diagnostics_of(src: &str) -> Vec<(LintCode, String, usize)> {
    let program = compile_source(src).expect("fixture compiles");
    let report = analyze(&program).expect("fixture verifies");
    report
        .diagnostics
        .iter()
        .map(|d| (d.code, d.function.clone(), d.offset))
        .collect()
}

/// Analyzes a wrapper chain (outermost first) and joins the flows over a
/// declared itinerary, as `taxsh audit` and firewall admission do.
fn audit_of(chain: &[&str], hosts: &[&str]) -> Vec<(LintCode, String, usize)> {
    let reports: Vec<_> = chain
        .iter()
        .map(|src| {
            let program = compile_source(src).expect("fixture compiles");
            analyze(&program).expect("fixture verifies")
        })
        .collect();
    let flows: Vec<&FlowSummary> = reports.iter().map(|r| &r.flow).collect();
    let itinerary: Vec<String> = hosts.iter().map(|s| (*s).to_owned()).collect();
    flow_lints(&flows, &itinerary)
        .iter()
        .map(|d| (d.code, d.function.clone(), d.offset))
        .collect()
}

#[test]
fn clean_fixture_raises_nothing() {
    let src = include_str!("fixtures/lints/clean.tax");
    assert_eq!(diagnostics_of(src), []);
}

#[test]
fn tax001_unreachable_code() {
    let src = include_str!("fixtures/lints/tax001_unreachable.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::UnreachableCode, "main".to_owned(), 6)]
    );
}

#[test]
fn tax002_folder_read_never_written() {
    let src = include_str!("fixtures/lints/tax002_unwritten_folder.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::UnwrittenFolder, "main".to_owned(), 2)]
    );
}

#[test]
fn tax003_bad_constant_travel_target() {
    let src = include_str!("fixtures/lints/tax003_bad_travel_target.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::BadTravelTarget, "main".to_owned(), 1)]
    );
    // TAX003 is the one lint promoted to an error: the travel is
    // statically guaranteed to fail.
    let program = compile_source(src).unwrap();
    let report = analyze(&program).unwrap();
    assert_eq!(report.diagnostics[0].severity, Severity::Error);
    assert!(report.has_errors());
}

#[test]
fn tax004_divergent_loop() {
    let src = include_str!("fixtures/lints/tax004_divergent_loop.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::DivergentLoop, "main".to_owned(), 2)]
    );
}

#[test]
fn tax005_tainted_escape() {
    // The flow lints need journey context: plain analyze() stays quiet,
    // the audited chain against a declared itinerary fires TAX005.
    let src = include_str!("fixtures/lints/tax005_escape.tax");
    assert_eq!(diagnostics_of(src), []);
    assert_eq!(
        audit_of(&[src], &["home", "server"]),
        [(LintCode::TaintedEscape, "main".to_owned(), 5)]
    );
    // TAX005 is error severity: it gates firewall admission.
    assert_eq!(LintCode::TaintedEscape.severity(), Severity::Error);
}

#[test]
fn tax006_capability_widening() {
    let outer = include_str!("fixtures/lints/tax006_widening_outer.tax");
    let inner = include_str!("fixtures/lints/tax006_widening_inner.tax");
    assert_eq!(
        audit_of(&[outer, inner], &["home", "server"]),
        [(LintCode::CapabilityWidening, "main".to_owned(), 1)]
    );
    // Swapped, the narrow layer wraps the wide one: no widening.
    assert_eq!(audit_of(&[inner, outer], &["home", "server", "mirror"]), []);
}

#[test]
fn tax007_unbounded_growth() {
    let src = include_str!("fixtures/lints/tax007_unbounded_growth.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::UnboundedGrowth, "main".to_owned(), 4)]
    );
}

#[test]
fn tax008_dead_folder() {
    let src = include_str!("fixtures/lints/tax008_dead_folder.tax");
    assert_eq!(
        diagnostics_of(src),
        [(LintCode::DeadFolder, "main".to_owned(), 2)]
    );
}

#[test]
fn webbot_wrapper_stack_audits_clean() {
    // The rwWebbot(mwWebbot) stack over its declared client/server
    // itinerary: the acceptance fixture — zero TAX005/TAX006 (and zero
    // anything else).
    let rw = include_str!("fixtures/audit/rw_webbot.tax");
    let mw = include_str!("fixtures/audit/mw_webbot.tax");
    assert_eq!(diagnostics_of(rw), []);
    assert_eq!(diagnostics_of(mw), []);
    assert_eq!(audit_of(&[rw, mw], &["client", "server"]), []);
}

#[test]
fn diagnostics_render_with_code_and_site() {
    let src = include_str!("fixtures/lints/tax001_unreachable.tax");
    let program = compile_source(src).unwrap();
    let report = analyze(&program).unwrap();
    let rendered = report.diagnostics[0].to_string();
    assert!(
        rendered.starts_with("warning[TAX001] fn main @6:"),
        "{rendered}"
    );
}

#[test]
fn every_fixture_passes_the_verifier() {
    for src in [
        include_str!("fixtures/lints/clean.tax"),
        include_str!("fixtures/lints/tax001_unreachable.tax"),
        include_str!("fixtures/lints/tax002_unwritten_folder.tax"),
        include_str!("fixtures/lints/tax003_bad_travel_target.tax"),
        include_str!("fixtures/lints/tax004_divergent_loop.tax"),
        include_str!("fixtures/lints/tax005_escape.tax"),
        include_str!("fixtures/lints/tax006_widening_inner.tax"),
        include_str!("fixtures/lints/tax006_widening_outer.tax"),
        include_str!("fixtures/lints/tax007_unbounded_growth.tax"),
        include_str!("fixtures/lints/tax008_dead_folder.tax"),
        include_str!("fixtures/audit/mw_webbot.tax"),
        include_str!("fixtures/audit/rw_webbot.tax"),
    ] {
        let program = compile_source(src).expect("fixture compiles");
        tacoma_taxscript::analysis::verify(&program).expect("fixture verifies");
    }
}
