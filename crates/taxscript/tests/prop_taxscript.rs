//! Property-based tests: the toolchain is total (never panics) and the VM
//! agrees with a reference evaluator on pure arithmetic.

use proptest::prelude::*;
use tacoma_briefcase::Briefcase;
use tacoma_taxscript::{compile_source, lex, parse, NullHooks, Outcome, Program, Vm};

/// A little arithmetic AST we can both render to TaxScript and evaluate in
/// Rust, for differential testing.
#[derive(Debug, Clone)]
enum Arith {
    Lit(i32),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn render(&self) -> String {
        match self {
            Arith::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            Arith::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            Arith::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            Arith::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            Arith::Lit(v) => *v as i64,
            Arith::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Arith::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Arith::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
        }
    }
}

fn arb_arith() -> impl Strategy<Value = Arith> {
    let leaf = any::<i32>().prop_map(Arith::Lit);
    leaf.prop_recursive(5, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(src in "\\PC{0,200}") {
        let _ = lex(&src);
    }

    /// Lex + parse never panics on arbitrary input.
    #[test]
    fn parser_total(src in "\\PC{0,200}") {
        if let Ok(tokens) = lex(&src) {
            let _ = parse(&tokens);
        }
    }

    /// The full compile pipeline never panics on syntactically plausible
    /// fragments embedded in a function body.
    #[test]
    fn compiler_total(body in "[a-z0-9 +*()<>=!;{}\"]{0,120}") {
        let src = format!("fn main() {{ {body} }}");
        let _ = compile_source(&src);
    }

    /// The VM agrees with a direct Rust evaluation of random arithmetic.
    #[test]
    fn vm_matches_reference_arithmetic(expr in arb_arith()) {
        let src = format!("fn main() {{ exit({}); }}", expr.render());
        let program = compile_source(&src).unwrap();
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(&program, NullHooks::default());
        let outcome = vm.run(&mut bc).unwrap();
        prop_assert_eq!(outcome, Outcome::Exit(expr.eval()));
    }

    /// Program decode never panics on arbitrary bytes.
    #[test]
    fn program_decode_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Program::decode(&bytes);
    }

    /// encode → decode is the identity for every compiled program.
    #[test]
    fn program_roundtrip(expr in arb_arith()) {
        let src = format!(
            "fn helper(a, b) {{ return a + b; }} fn main() {{ display(helper({}, 1)); }}",
            expr.render()
        );
        let program = compile_source(&src).unwrap();
        let back = Program::decode(&program.encode()).unwrap();
        prop_assert_eq!(program, back);
    }

    /// Corrupting one byte of an encoded program either fails to decode or
    /// decodes to something that still runs without panicking under a
    /// small fuel budget (sandbox holds under corruption).
    #[test]
    fn corrupted_programs_are_contained(
        expr in arb_arith(),
        idx in any::<prop::sample::Index>(),
        xor in 1u8..,
    ) {
        let src = format!("fn main() {{ display({}); }}", expr.render());
        let program = compile_source(&src).unwrap();
        let mut wire = program.encode();
        let i = idx.index(wire.len());
        wire[i] ^= xor;
        if let Ok(decoded) = Program::decode(&wire) {
            let mut bc = Briefcase::new();
            let mut vm = Vm::new(&decoded, NullHooks::default()).with_fuel(100_000);
            let _ = vm.run(&mut bc);
        }
    }

    /// The verifier's soundness contract: a program it accepts never
    /// faults on the value stack at run time. Corrupted wire images that
    /// still decode AND verify must run to completion (or a benign
    /// error like OutOfFuel) — never `CorruptProgram`.
    #[test]
    fn verified_programs_never_fault_on_the_stack(
        expr in arb_arith(),
        idx in any::<prop::sample::Index>(),
        xor in 1u8..,
    ) {
        let src = format!("fn main() {{ display({}); }}", expr.render());
        let program = compile_source(&src).unwrap();
        let mut wire = program.encode();
        let i = idx.index(wire.len());
        wire[i] ^= xor;
        let Ok(decoded) = Program::decode(&wire) else { return };
        if tacoma_taxscript::analysis::verify(&decoded).is_err() {
            return;
        }
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(&decoded, NullHooks::default()).with_fuel(100_000);
        if let Err(e) = vm.run(&mut bc) {
            prop_assert!(
                !matches!(e, tacoma_taxscript::RuntimeError::CorruptProgram { .. }),
                "verifier accepted a program that faulted: {e}"
            );
        }
    }

    /// Everything the compiler emits verifies — over random arithmetic,
    /// not just the hand-picked corpus.
    #[test]
    fn compiler_output_always_verifies(expr in arb_arith()) {
        let src = format!(
            "fn f(a) {{ return a * 2; }} fn main() {{ display(f({})); }}",
            expr.render()
        );
        let program = compile_source(&src).unwrap();
        prop_assert!(tacoma_taxscript::analysis::verify(&program).is_ok());
    }
}
