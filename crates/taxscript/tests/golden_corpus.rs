//! Golden corpus: small TaxScript programs with exact expected outputs —
//! broad behavioural coverage of the language in one table.

use tacoma_briefcase::Briefcase;
use tacoma_taxscript::{compile_source, NullHooks, Outcome, Vm};

fn run(src: &str) -> (Outcome, Vec<String>) {
    let program = compile_source(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    // Everything the compiler emits must pass the bytecode verifier — the
    // corpus doubles as the verifier's completeness suite.
    tacoma_taxscript::analysis::verify(&program)
        .unwrap_or_else(|e| panic!("verifier rejected compiler output: {e}\n{src}"));
    let mut bc = Briefcase::new();
    let mut vm = Vm::new(&program, NullHooks::default());
    let outcome = vm
        .run(&mut bc)
        .unwrap_or_else(|e| panic!("run failed: {e}\n{src}"));
    (outcome, vm.into_hooks().displayed)
}

#[track_caller]
fn expect(src: &str, expected: &[&str]) {
    let (_, displayed) = run(src);
    assert_eq!(displayed, expected, "program:\n{src}");
}

#[test]
fn arithmetic_table() {
    expect(
        "fn main() { display(7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3); }",
        &["10 4 21 2 1"],
    );
    expect("fn main() { display(-7 / 2, -7 % 2); }", &["-3 -1"]);
    expect("fn main() { display(2 + 3 * 4 - 10 / 2); }", &["9"]);
    expect("fn main() { display((2 + 3) * (4 - 1)); }", &["15"]);
    expect("fn main() { display(--5, -(-5)); }", &["5 5"]);
}

#[test]
fn comparison_and_logic_table() {
    expect(
        "fn main() { display(1 < 2, 2 <= 2, 3 > 4, 4 >= 4); }",
        &["true true false true"],
    );
    expect(
        r#"fn main() { display("a" < "b", "b" < "a", "x" == "x"); }"#,
        &["true false true"],
    );
    expect(
        "fn main() { display(1 == 1 && 2 == 2, 1 == 2 || 2 == 2); }",
        &["true true"],
    );
    expect(
        "fn main() { display(!true, !0, !nil, !1); }",
        &["false true true false"],
    );
    expect(
        "fn main() { display(nil == nil, nil == 0, 0 == false); }",
        &["true false false"],
    );
}

#[test]
fn short_circuit_side_effects() {
    // The right-hand side must not run when the left decides.
    expect(
        r#"
        fn noisy(v) { display("evaluated"); return v; }
        fn main() {
            let a = false && noisy(true);
            let b = true || noisy(false);
            display(a, b);
        }
        "#,
        &["false true"],
    );
}

#[test]
fn strings_table() {
    expect(
        r#"fn main() { display("a" + "b" + str(1 + 2)); }"#,
        &["ab3"],
    );
    expect(r#"fn main() { display(len("hello"), len("")); }"#, &["5 0"]);
    expect(
        r#"fn main() { display(substr("tacoma", 2, 3)); }"#,
        &["com"],
    );
    expect(
        r#"fn main() { display(substr("abc", 10, 5), substr("abc", 0, 99)); }"#,
        &[" abc"],
    );
    expect(
        r#"fn main() { display(find("hello", "ll"), find("hello", "z")); }"#,
        &["2 -1"],
    );
    expect(
        r#"fn main() { display(join(split("a:b:c", ":"), "-")); }"#,
        &["a-b-c"],
    );
    expect(
        r#"fn main() { display(starts_with("tacoma://x", "tacoma://")); }"#,
        &["true"],
    );
    expect(
        r#"fn main() { display(contains("briefcase", "ief")); }"#,
        &["true"],
    );
    expect(
        r#"fn main() { display("s"[0], "s"[9] == nil); }"#,
        &["s true"],
    );
}

#[test]
fn conversions_table() {
    expect(
        r#"fn main() { display(int("42") + 1, int(" 7 "), int("x") == nil); }"#,
        &["43 7 true"],
    );
    expect(
        r#"fn main() { display(int(true), int(false), int(9)); }"#,
        &["1 0 9"],
    );
    expect(
        r#"fn main() { display(str(42), str(true), str(nil)); }"#,
        &["42 true nil"],
    );
}

#[test]
fn lists_table() {
    expect(
        "fn main() { let l = [1, 2, 3]; display(len(l), l[1], l[5] == nil); }",
        &["3 2 true"],
    );
    expect("fn main() { display(len([] + [1] + [2, 3])); }", &["3"]);
    expect(
        "fn main() { let l = push([], 9); display(l[0], len(l)); }",
        &["9 1"],
    );
    expect("fn main() { display([1, [2, 3]][1][0]); }", &["2"]);
    expect(
        "fn main() { display(get([4, 5], 1), get([4, 5], 9) == nil); }",
        &["5 true"],
    );
}

#[test]
fn control_flow_table() {
    expect(
        "fn main() { let s = 0; let i = 0; while (i < 5) { i = i + 1; s = s + i; } display(s); }",
        &["15"],
    );
    expect(
        "fn main() { let i = 0; while (1) { i = i + 1; if (i == 3) { break; } } display(i); }",
        &["3"],
    );
    expect(
        r#"
        fn main() {
            let out = "";
            let i = 0;
            while (i < 6) {
                i = i + 1;
                if (i % 2 == 0) { continue; }
                out = out + str(i);
            }
            display(out);
        }
        "#,
        &["135"],
    );
    expect(
        "fn main() { if (0) { display(1); } else if (nil) { display(2); } else { display(3); } }",
        &["3"],
    );
}

#[test]
fn functions_table() {
    expect(
        r#"
        fn add(a, b) { return a + b; }
        fn twice(x) { return add(x, x); }
        fn main() { display(twice(add(2, 3))); }
        "#,
        &["10"],
    );
    expect(
        r#"
        fn ack(m, n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        fn main() { display(ack(2, 3)); }
        "#,
        &["9"],
    );
    // Implicit nil return.
    expect(
        "fn nothing() { } fn main() { display(nothing() == nil); }",
        &["true"],
    );
    // Shadowing in nested scopes.
    expect(
        "fn main() { let x = 1; if (1) { let x = 2; display(x); } display(x); }",
        &["2", "1"],
    );
}

#[test]
fn briefcase_interplay() {
    let src = r#"
        fn main() {
            bc_append("L", "a");
            bc_append("L", "b");
            bc_append("L", "c");
            let joined = "";
            while (bc_len("L") > 0) {
                joined = joined + bc_remove("L", 0);
            }
            display(joined, bc_has("L"), bc_len("MISSING"));
        }
    "#;
    // Folder exists (emptied) after removals; missing folder has length 0.
    expect(src, &["abc true 0"]);
}

#[test]
fn paper_primitive_aliases() {
    // bc_send/bc_recv are the §3.1 names for activate/await.
    expect(
        r#"fn main() { display(bc_send("nowhere"), bc_recv(0)); }"#,
        &["0 0"],
    );
}

#[test]
fn exit_codes() {
    let (outcome, displayed) = run("fn main() { display(1); exit(42); display(2); }");
    assert_eq!(outcome, Outcome::Exit(42));
    assert_eq!(displayed, ["1"]);
    let (outcome, _) = run("fn main() { display(1); }");
    assert_eq!(outcome, Outcome::Finished);
}
