//! Differential properties: the fused compile-tier dispatcher
//! ([`Vm::run`]) must be observationally identical to the legacy
//! per-instruction interpreter ([`Vm::run_legacy`]) — same outcomes,
//! same `display` trace, same briefcase mutations, same error classes —
//! on generated programs covering loops, conditionals, arithmetic
//! faults, string work, briefcase builtins, and calls.
//!
//! Fuel is the one documented divergence: the fused tier charges per
//! basic block, so under a too-small budget it may report out-of-fuel
//! up to [`Program::max_block_cost`] units before the legacy point —
//! never after, and with *equal* totals on every run that terminates
//! (normally or via `exit`/`go`). Those bounds are asserted here too.

use proptest::prelude::*;
use tacoma_briefcase::Briefcase;
use tacoma_taxscript::{
    compile_source, NullHooks, Outcome, Program, RuntimeError, Vm, DEFAULT_FUEL,
};

/// A small statement AST rendered to TaxScript source. Loops always
/// bump a dedicated counter the body never reassigns, so every
/// generated program terminates under generous fuel.
#[derive(Debug, Clone)]
enum Stmt {
    /// `vN = <int expr>;`
    Assign(usize, IntExpr),
    /// `sN = <str expr>;`
    AssignStr(usize, StrExpr),
    Display(IntExpr),
    DisplayStr(StrExpr),
    BcAppend(StrExpr),
    BcSetInt(IntExpr),
    If(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `while (wD < bound) { body; wD = wD + 1; }` where `wD` is the
    /// reserved counter for nesting depth D — no generated statement
    /// can assign a `w` variable, so every loop terminates.
    While(i64, Vec<Stmt>),
    /// `if (bc_len("LOG") > t) { exit(code); }` — exercises terminal
    /// builtins on data-dependent paths.
    MaybeExit(i64, i64),
    /// `go("…")` — NullHooks refuse the move, so this exercises the
    /// non-terminal branch of `go`.
    Go,
    /// `vN = helper(vM);` — exercises Call/Return frames.
    CallHelper(usize, usize),
}

#[derive(Debug, Clone)]
enum IntExpr {
    Lit(i64),
    Var(usize),
    Add(Box<IntExpr>, Box<IntExpr>),
    Sub(Box<IntExpr>, Box<IntExpr>),
    Mul(Box<IntExpr>, Box<IntExpr>),
    /// May fault with DivisionByZero — error parity is part of the
    /// property.
    Div(Box<IntExpr>, Box<IntExpr>),
    Mod(Box<IntExpr>, Box<IntExpr>),
    BcLen,
}

#[derive(Debug, Clone)]
enum StrExpr {
    Lit(String),
    Var(usize),
    /// String + int renders the int — the mixed-type `Add` path.
    ConcatInt(Box<StrExpr>, IntExpr),
    Concat(Box<StrExpr>, Box<StrExpr>),
}

#[derive(Debug, Clone)]
enum Cond {
    Lt(IntExpr, IntExpr),
    Eq(IntExpr, IntExpr),
    StrLt(StrExpr, StrExpr),
}

const N_INT_VARS: usize = 3;
const N_STR_VARS: usize = 2;

impl IntExpr {
    fn render(&self) -> String {
        match self {
            IntExpr::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", v.unsigned_abs())
                } else {
                    v.to_string()
                }
            }
            IntExpr::Var(i) => format!("v{i}"),
            IntExpr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            IntExpr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            IntExpr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            IntExpr::Div(a, b) => format!("({} / {})", a.render(), b.render()),
            IntExpr::Mod(a, b) => format!("({} % {})", a.render(), b.render()),
            IntExpr::BcLen => "bc_len(\"LOG\")".to_owned(),
        }
    }
}

impl StrExpr {
    fn render(&self) -> String {
        match self {
            StrExpr::Lit(s) => format!("{s:?}"),
            StrExpr::Var(i) => format!("s{i}"),
            StrExpr::ConcatInt(a, b) => format!("({} + {})", a.render(), b.render()),
            StrExpr::Concat(a, b) => format!("({} + {})", a.render(), b.render()),
        }
    }
}

impl Cond {
    fn render(&self) -> String {
        match self {
            Cond::Lt(a, b) => format!("({} < {})", a.render(), b.render()),
            Cond::Eq(a, b) => format!("({} == {})", a.render(), b.render()),
            Cond::StrLt(a, b) => format!("({} < {})", a.render(), b.render()),
        }
    }
}

/// Reserved `w` counters to declare — comfortably above the deepest
/// loop nesting the generator can produce (`prop_recursive` depth 3),
/// so distinct nesting levels never share a counter.
const MAX_LOOP_DEPTH: usize = 8;

fn render_block(stmts: &[Stmt], depth: usize, out: &mut String) {
    for s in stmts {
        match s {
            Stmt::Assign(i, e) => out.push_str(&format!("v{i} = {};\n", e.render())),
            Stmt::AssignStr(i, e) => out.push_str(&format!("s{i} = {};\n", e.render())),
            Stmt::Display(e) => out.push_str(&format!("display({});\n", e.render())),
            Stmt::DisplayStr(e) => out.push_str(&format!("display({});\n", e.render())),
            Stmt::BcAppend(e) => out.push_str(&format!("bc_append(\"LOG\", {});\n", e.render())),
            Stmt::BcSetInt(e) => out.push_str(&format!("bc_set(\"SUM\", {});\n", e.render())),
            Stmt::If(c, then, els) => {
                out.push_str(&format!("if {} {{\n", c.render()));
                render_block(then, depth, out);
                if els.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    render_block(els, depth, out);
                    out.push_str("}\n");
                }
            }
            Stmt::While(bound, body) => {
                assert!(
                    depth < MAX_LOOP_DEPTH,
                    "generator nested deeper than declared counters"
                );
                out.push_str(&format!("w{depth} = 0;\nwhile (w{depth} < {bound}) {{\n"));
                render_block(body, depth + 1, out);
                out.push_str(&format!("w{depth} = w{depth} + 1;\n}}\n"));
            }
            Stmt::MaybeExit(threshold, code) => out.push_str(&format!(
                "if (bc_len(\"LOG\") > {threshold}) {{ exit({code}); }}\n"
            )),
            Stmt::Go => out.push_str("if (go(\"tacoma://h1/vm_script\")) { display(\"miss\"); }\n"),
            Stmt::CallHelper(dst, src) => out.push_str(&format!("v{dst} = helper(v{src});\n")),
        }
    }
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut body = String::new();
    for i in 0..N_INT_VARS {
        body.push_str(&format!("let v{i} = {i};\n"));
    }
    for i in 0..N_STR_VARS {
        body.push_str(&format!("let s{i} = \"s{i}\";\n"));
    }
    for i in 0..MAX_LOOP_DEPTH {
        body.push_str(&format!("let w{i} = 0;\n"));
    }
    render_block(stmts, 0, &mut body);
    body.push_str("display(v0, v1, v2, s0, s1);\n");
    format!(
        "fn helper(x) {{ if (x < 0) {{ return 0 - x; }} return x * 2 + 1; }}\n\
         fn main() {{\n{body}}}\n"
    )
}

fn arb_int_expr() -> impl Strategy<Value = IntExpr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(IntExpr::Lit),
        (0..N_INT_VARS).prop_map(IntExpr::Var),
        Just(IntExpr::BcLen),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IntExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IntExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IntExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IntExpr::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| IntExpr::Mod(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_str_expr() -> impl Strategy<Value = StrExpr> {
    let leaf = prop_oneof![
        "[a-z]{0,6}".prop_map(StrExpr::Lit),
        (0..N_STR_VARS).prop_map(StrExpr::Var),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), arb_int_expr()).prop_map(|(a, b)| StrExpr::ConcatInt(Box::new(a), b)),
            (inner.clone(), inner).prop_map(|(a, b)| StrExpr::Concat(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| Cond::Lt(a, b)),
        (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| Cond::Eq(a, b)),
        (arb_str_expr(), arb_str_expr()).prop_map(|(a, b)| Cond::StrLt(a, b)),
    ]
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        ((0..N_INT_VARS), arb_int_expr()).prop_map(|(i, e)| Stmt::Assign(i, e)),
        ((0..N_STR_VARS), arb_str_expr()).prop_map(|(i, e)| Stmt::AssignStr(i, e)),
        arb_int_expr().prop_map(Stmt::Display),
        arb_str_expr().prop_map(Stmt::DisplayStr),
        arb_str_expr().prop_map(Stmt::BcAppend),
        arb_int_expr().prop_map(Stmt::BcSetInt),
        ((2i64..12), (0i64..50)).prop_map(|(t, c)| Stmt::MaybeExit(t, c)),
        Just(Stmt::Go),
        ((0..N_INT_VARS), (0..N_INT_VARS)).prop_map(|(d, s)| Stmt::CallHelper(d, s)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                arb_cond(),
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            ((1i64..6), prop::collection::vec(inner, 0..4))
                .prop_map(|(b, body)| Stmt::While(b, body)),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_stmt(), 1..8).prop_map(|stmts| render_program(&stmts))
}

/// Everything one run can observe from the outside.
#[derive(Debug, PartialEq)]
struct Observed {
    result: Result<Outcome, RuntimeError>,
    displayed: Vec<String>,
    briefcase: Briefcase,
}

fn seeded_briefcase() -> Briefcase {
    let mut bc = Briefcase::new();
    bc.append("LOG", "seed");
    bc
}

fn run_tier(program: &Program, fuel: u64, legacy: bool) -> (Observed, u64) {
    let mut bc = seeded_briefcase();
    let mut vm = Vm::new(program, NullHooks::default()).with_fuel(fuel);
    let result = if legacy {
        vm.run_legacy(&mut bc)
    } else {
        vm.run(&mut bc)
    };
    let used = fuel - vm.fuel_remaining();
    (
        Observed {
            result,
            displayed: vm.into_hooks().displayed,
            briefcase: bc,
        },
        used,
    )
}

fn assert_parity(program: &Program, src: &str) {
    let (legacy, used_legacy) = run_tier(program, DEFAULT_FUEL, true);
    let (fused, used_fused) = run_tier(program, DEFAULT_FUEL, false);

    assert_eq!(legacy, fused, "tiers diverged on:\n{src}");
    assert_eq!(
        legacy.briefcase.encode(),
        fused.briefcase.encode(),
        "briefcase wire images diverged on:\n{src}"
    );

    // Fuel: equal totals whenever the run terminated (normally, exit,
    // or go) — terminators end blocks, so fused charges catch up
    // exactly. Errors may leave the fused tier up to one block ahead.
    let max_block = program.max_block_cost();
    match &legacy.result {
        Ok(_) => assert_eq!(
            used_legacy, used_fused,
            "fuel totals diverged on a terminating run:\n{src}"
        ),
        Err(_) => {
            assert!(
                used_fused >= used_legacy && used_fused - used_legacy <= max_block,
                "fused used {used_fused}, legacy used {used_legacy}, \
                 max block {max_block}:\n{src}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// With generous fuel both tiers agree on outcome, display trace,
    /// briefcase mutations, error class, and (for terminating runs)
    /// exact fuel totals.
    #[test]
    fn fused_matches_legacy(src in arb_program()) {
        let program = compile_source(&src).expect("generated source compiles");
        assert_parity(&program, &src);
    }

    /// Out-of-fuel parity at every budget below the full cost of a
    /// cleanly terminating run: legacy out-of-fuel implies fused
    /// out-of-fuel at the same budget (fused never runs *longer*), and
    /// the fused tier never fires more than one basic block early.
    #[test]
    fn out_of_fuel_fires_within_one_block(src in arb_program(), frac_pct in 0u64..100) {
        let program = compile_source(&src).expect("generated source compiles");
        let (legacy_full, used_legacy) = run_tier(&program, DEFAULT_FUEL, true);
        // Only cleanly terminating programs have a well-defined "full
        // cost"; faulting samples are covered by `fused_matches_legacy`.
        if legacy_full.result.is_ok() && used_legacy > 0 {
            let (_, used_fused) = run_tier(&program, DEFAULT_FUEL, false);
            prop_assert_eq!(used_legacy, used_fused);

            // Sample a budget below the requirement: both tiers must
            // report OutOfFuel — the fused tier can fire early (at the
            // failing block's fence) but never late.
            let budget = (used_legacy * frac_pct / 100).min(used_legacy - 1);
            let (legacy_short, _) = run_tier(&program, budget, true);
            let (fused_short, _) = run_tier(&program, budget, false);
            prop_assert_eq!(legacy_short.result, Err(RuntimeError::OutOfFuel));
            prop_assert_eq!(fused_short.result, Err(RuntimeError::OutOfFuel));

            // And at exactly the required budget, both complete.
            let (legacy_exact, _) = run_tier(&program, used_legacy, true);
            let (fused_exact, _) = run_tier(&program, used_legacy, false);
            prop_assert!(legacy_exact.result.is_ok());
            prop_assert!(fused_exact.result.is_ok());
        }
    }
}

/// The golden Figure-4 itinerary agent behaves identically on both
/// tiers, including its display trace and drained HOSTS folder.
#[test]
fn figure4_agent_parity() {
    let src = r#"fn main() {
        while (1) {
            display("Hello world");
            let e = bc_remove("HOSTS", 0);
            if (e == nil) { exit(0); }
            if (go(e)) { display("Unable to reach " + e); }
        }
    }"#;
    let program = compile_source(src).unwrap();
    let run = |legacy: bool| {
        let mut bc = Briefcase::new();
        bc.append("HOSTS", "tacoma://h1/vm")
            .append("HOSTS", "tacoma://h2/vm");
        let mut vm = Vm::new(&program, NullHooks::default());
        let result = if legacy {
            vm.run_legacy(&mut bc)
        } else {
            vm.run(&mut bc)
        };
        (result, vm.into_hooks().displayed, bc)
    };
    assert_eq!(run(true), run(false));
}

/// Known error shapes survive lowering with identical classes.
#[test]
fn error_classes_match() {
    for src in [
        "fn main() { let x = 1 / 0; }",
        "fn main() { let x = 1 % 0; }",
        r#"fn main() { let x = 1 - "a"; }"#,
        r#"fn main() { let x = nil < 1; }"#,
        "fn f() { return f(); } fn main() { f(); }",
        "fn main() { let i = 0; while (i < 10) { i = i + nil; } }",
    ] {
        let program = compile_source(src).unwrap();
        let (legacy, _) = run_tier(&program, DEFAULT_FUEL, true);
        let (fused, _) = run_tier(&program, DEFAULT_FUEL, false);
        assert_eq!(legacy, fused, "on {src}");
        assert!(legacy.result.is_err(), "on {src}");
    }
}
