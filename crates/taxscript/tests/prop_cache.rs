//! Property-based determinism tests for the verified-script cache: for
//! arbitrary generated programs, a cache hit returns a result
//! byte-identical to the cold-path `analyze()` — cache == eager,
//! mirroring the briefcase CoW parity properties.

use proptest::prelude::*;
use tacoma_taxscript::analysis::{analyze, AnalysisCache, AnalysisFailure};
use tacoma_taxscript::{compile_source, Program};

/// A random-but-compiling agent: a handful of statements drawn from the
/// folder/travel/arith repertoire, so the generated corpus exercises
/// every analysis pass (verifier joins, capabilities, flow, lints).
fn arb_agent() -> impl Strategy<Value = String> {
    let folder = prop_oneof![
        Just("RESULTS".to_owned()),
        Just("TRACE".to_owned()),
        Just("SCRATCH".to_owned()),
        Just("HOSTS".to_owned()),
        "[A-Z]{2,8}",
    ];
    let host = prop_oneof![
        Just("h1".to_owned()),
        Just("h2".to_owned()),
        Just("hub".to_owned()),
        "[a-z]{2,8}",
    ];
    let stmt = prop_oneof![
        (folder.clone(), any::<i32>()).prop_map(|(f, v)| format!("bc_append(\"{f}\", {v});")),
        (folder.clone(), any::<i32>()).prop_map(|(f, v)| format!("bc_set(\"{f}\", {v});")),
        folder
            .clone()
            .prop_map(|f| format!("display(bc_len(\"{f}\"));")),
        folder
            .clone()
            .prop_map(|f| format!("bc_remove(\"{f}\", 0);")),
        folder.prop_map(|f| format!("bc_append(\"{f}\", host_name());")),
        host.clone()
            .prop_map(|h| format!("if (go(\"tacoma://{h}/vm_script\")) {{ display(\"x\"); }}")),
        host.prop_map(|h| format!("spawn(\"tacoma://{h}/vm_script\");")),
        (any::<i32>(), any::<i32>()).prop_map(|(a, b)| format!("let v = {a} + {b}; display(v);")),
        (1u8..4).prop_map(|n| {
            format!("let i = 0; while (i < {n}) {{ bc_append(\"LOOP\", i); i = i + 1; }}")
        }),
    ];
    proptest::collection::vec(stmt, 0..8)
        .prop_map(|stmts| format!("fn main() {{ {} exit(0); }}", stmts.join(" ")))
}

proptest! {
    /// Warm-cache results are byte-identical to the eager pipeline: same
    /// report (structural and rendered) for the same program bytes.
    #[test]
    fn cache_hit_equals_cold_analysis(src in arb_agent()) {
        let program = compile_source(&src).expect("generated agents compile");
        let wire = program.encode();
        let cache = AnalysisCache::new(4);

        // Prime, then hit.
        let (cold_cached, hit0) = cache.analyze_bytes(&wire);
        let (warm, hit1) = cache.analyze_bytes(&wire);
        prop_assert!(!hit0);
        prop_assert!(hit1);

        // Eager path: decode + analyze from scratch, no cache at all.
        let decoded = Program::decode(&wire).expect("own encoding decodes");
        match (warm, analyze(&decoded)) {
            (Ok(verified), Ok(eager)) => {
                prop_assert_eq!(&verified.report, &eager);
                // Byte-identical, not merely structurally equal.
                prop_assert_eq!(
                    format!("{:?}", verified.report),
                    format!("{eager:?}")
                );
                prop_assert_eq!(&verified.program, &decoded);
                let cold = cold_cached.expect("cold path agreed");
                prop_assert_eq!(&cold.report, &eager);
            }
            (Err(AnalysisFailure::Verify(warm_err)), Err(eager_err)) => {
                prop_assert_eq!(warm_err, eager_err);
            }
            (warm, eager) => {
                panic!("cache and eager disagree: {warm:?} vs {eager:?}");
            }
        }
    }

    /// The shared cache behaves identically to a fresh one (no state
    /// leakage between distinct programs: keying is by content hash).
    #[test]
    fn shared_cache_agrees_with_eager(src in arb_agent()) {
        let program = compile_source(&src).expect("generated agents compile");
        let wire = program.encode();
        let (result, _) = AnalysisCache::shared().analyze_bytes(&wire);
        let eager = analyze(&program);
        match (result, eager) {
            (Ok(verified), Ok(eager)) => prop_assert_eq!(&verified.report, &eager),
            (Err(AnalysisFailure::Verify(a)), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => {
                panic!("shared cache and eager disagree: {a:?} vs {b:?}");
            }
        }
    }
}
