//! TAX **virtual machines** (§3.3).
//!
//! > "In TAX it is the responsibility of the various virtual machines to
//! > execute code in a safe and secure manner. […] The method in which
//! > this is achieved is left to the virtual machine, the firewall simply
//! > trusts it to execute agent code safely and correctly."
//!
//! Three VMs are provided, mirroring the paper's:
//!
//! * [`VmBin`] — "executes binaries directly on top of the operating
//!   system, provided the binary is signed by a trusted principal." Here a
//!   *binary* is a signed [`ArtifactBundle`]: per-architecture payloads
//!   that are either compiled TaxScript bytecode (our machine code) or a
//!   reference into the host's [`NativeRegistry`] of Rust-implemented
//!   programs — the documented stand-in for loading machine code, which
//!   safe Rust cannot do.
//! * [`VmScript`] — interprets TaxScript source or bytecode directly; the
//!   stand-in for scripting-language VMs (`vm_perl`, `vm_tcl`).
//! * [`VmC`] — the Figure 3 pipeline: an agent arrives carrying *source*;
//!   `ag_cc` extracts it, `ag_exec` runs the compiler, the binary goes
//!   back into the briefcase, and `vm_bin` executes it. [`VmC`] records
//!   each numbered step in its execution trace so the pipeline experiment
//!   can print the figure.
//!
//! Every VM consumes and produces only briefcases and reaches the outside
//! world only through [`HostHooks`] — the minimal-interface property that
//! makes wrappers possible (§4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod error;
mod pool;
mod registry;
mod vm_bin;
mod vm_c;
mod vm_script;
mod vmtrait;

pub use artifact::{Architecture, ArtifactBundle, BinaryArtifact, ARTIFACT_MAGIC};
pub use error::VmError;
pub use pool::{PoolStats, ProgramCache, VmPool, PROGRAM_CACHE_CAPACITY, VM_POOL_CAPACITY};
pub use registry::{NativeProgram, NativeRegistry};
pub use vm_bin::VmBin;
pub use vm_c::VmC;
pub use vm_script::VmScript;
pub use vmtrait::{code_types, ExecContext, Execution, VirtualMachine};

// Re-exported so downstream crates need not depend on tacoma-taxscript for
// the common agent-outcome types.
pub use tacoma_taxscript::{GoDecision, HostHooks, Outcome};
