//! Binary artifacts: the signed, per-architecture "binaries" agents carry.
//!
//! §5: "Ag_exec extracts the binary matching the architecture of the local
//! machine (an agent may submit a list of binaries matching different
//! architectures to ag_exec), and executes it."

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::VmError;

/// Magic bytes opening an encoded artifact bundle.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"TAXA";

/// A target architecture tag, e.g. `i386-linux` or `sparc-solaris` (the
/// platforms of the paper's era).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Architecture(String);

impl Architecture {
    /// The x86 Linux boxes of the Tromsø department.
    pub fn i386_linux() -> Self {
        Architecture("i386-linux".to_owned())
    }

    /// The SPARC Solaris servers.
    pub fn sparc_solaris() -> Self {
        Architecture("sparc-solaris".to_owned())
    }

    /// The architecture tag of this simulation's hosts.
    pub fn simulated() -> Self {
        Architecture("taxvm-sim".to_owned())
    }

    /// A custom tag.
    pub fn custom(tag: impl Into<String>) -> Self {
        Architecture(tag.into())
    }

    /// The tag text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One binary: a payload compiled for a specific architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryArtifact {
    /// Program name (e.g. `webbot`).
    pub name: String,
    /// Target architecture.
    pub arch: Architecture,
    /// The executable payload: either encoded TaxScript bytecode
    /// (starts with [`tacoma_taxscript::PROGRAM_MAGIC`]) or a native
    /// reference `native:<key>\0<padding>` resolved against the host's
    /// [`crate::NativeRegistry`]. Padding lets experiments give the
    /// "binary" a realistic transfer size.
    pub payload: Vec<u8>,
}

impl BinaryArtifact {
    /// An artifact holding compiled TaxScript bytecode.
    pub fn bytecode(
        name: impl Into<String>,
        arch: Architecture,
        program: &tacoma_taxscript::Program,
    ) -> Self {
        BinaryArtifact {
            name: name.into(),
            arch,
            payload: program.encode(),
        }
    }

    /// An artifact referencing a native program by registry key, padded to
    /// `total_size` bytes so it costs like a real binary on the wire.
    pub fn native(
        name: impl Into<String>,
        arch: Architecture,
        key: &str,
        total_size: usize,
    ) -> Self {
        let mut payload = format!("native:{key}").into_bytes();
        payload.push(0);
        if payload.len() < total_size {
            payload.resize(total_size, 0xCC);
        }
        BinaryArtifact {
            name: name.into(),
            arch,
            payload,
        }
    }

    /// If this payload is a native reference, its registry key.
    pub fn native_key(&self) -> Option<&str> {
        let rest = self.payload.strip_prefix(b"native:")?;
        let end = rest.iter().position(|&b| b == 0).unwrap_or(rest.len());
        std::str::from_utf8(&rest[..end]).ok()
    }
}

/// A list of binaries for different architectures, as submitted to
/// `ag_exec`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArtifactBundle {
    artifacts: Vec<BinaryArtifact>,
}

impl ArtifactBundle {
    /// An empty bundle.
    pub fn new() -> Self {
        ArtifactBundle::default()
    }

    /// Adds an artifact (builder style).
    pub fn with(mut self, artifact: BinaryArtifact) -> Self {
        self.artifacts.push(artifact);
        self
    }

    /// Adds an artifact.
    pub fn push(&mut self, artifact: BinaryArtifact) {
        self.artifacts.push(artifact);
    }

    /// The artifacts in submission order.
    pub fn artifacts(&self) -> &[BinaryArtifact] {
        &self.artifacts
    }

    /// Selects the first artifact matching `arch` — what `ag_exec` does on
    /// landing.
    pub fn select(&self, arch: &Architecture) -> Option<&BinaryArtifact> {
        self.artifacts.iter().find(|a| &a.arch == arch)
    }

    /// The architectures present, for diagnostics.
    pub fn architectures(&self) -> Vec<String> {
        self.artifacts.iter().map(|a| a.arch.to_string()).collect()
    }

    /// Encodes the bundle for a briefcase `CODE` element.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&ARTIFACT_MAGIC);
        out.extend_from_slice(&(self.artifacts.len() as u16).to_le_bytes());
        for a in &self.artifacts {
            let name = a.name.as_bytes();
            let arch = a.arch.as_str().as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            out.extend_from_slice(&(arch.len() as u16).to_le_bytes());
            out.extend_from_slice(arch);
            out.extend_from_slice(&(a.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&a.payload);
        }
        out
    }

    /// Decodes a bundle from briefcase bytes.
    ///
    /// # Errors
    ///
    /// [`VmError::BadArtifact`] on malformed input; never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, VmError> {
        let bad = |detail: &'static str| VmError::BadArtifact { detail };
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], VmError> {
            if bytes.len() - *pos < n {
                return Err(bad("truncated"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != ARTIFACT_MAGIC {
            return Err(bad("bad magic"));
        }
        let count = {
            let b = take(&mut pos, 2)?;
            u16::from_le_bytes([b[0], b[1]]) as usize
        };
        let mut artifacts = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let name_len = {
                let b = take(&mut pos, 2)?;
                u16::from_le_bytes([b[0], b[1]]) as usize
            };
            let name = std::str::from_utf8(take(&mut pos, name_len)?)
                .map_err(|_| bad("non-utf8 name"))?
                .to_owned();
            let arch_len = {
                let b = take(&mut pos, 2)?;
                u16::from_le_bytes([b[0], b[1]]) as usize
            };
            let arch = std::str::from_utf8(take(&mut pos, arch_len)?)
                .map_err(|_| bad("non-utf8 arch"))?
                .to_owned();
            let payload_len = {
                let b = take(&mut pos, 4)?;
                u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize
            };
            if payload_len > 256 << 20 {
                return Err(bad("payload too large"));
            }
            let payload = take(&mut pos, payload_len)?.to_vec();
            artifacts.push(BinaryArtifact {
                name,
                arch: Architecture::custom(arch),
                payload,
            });
        }
        if pos != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(ArtifactBundle { artifacts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_taxscript::compile_source;

    fn bundle() -> ArtifactBundle {
        let program = compile_source("fn main() { exit(7); }").unwrap();
        ArtifactBundle::new()
            .with(BinaryArtifact::bytecode(
                "agent",
                Architecture::simulated(),
                &program,
            ))
            .with(BinaryArtifact::native(
                "webbot",
                Architecture::i386_linux(),
                "webbot-4.0",
                50_000,
            ))
    }

    #[test]
    fn roundtrip() {
        let b = bundle();
        assert_eq!(ArtifactBundle::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn select_by_architecture() {
        let b = bundle();
        assert_eq!(b.select(&Architecture::simulated()).unwrap().name, "agent");
        assert_eq!(
            b.select(&Architecture::i386_linux()).unwrap().name,
            "webbot"
        );
        assert!(b.select(&Architecture::sparc_solaris()).is_none());
    }

    #[test]
    fn native_key_parses_through_padding() {
        let a = BinaryArtifact::native("webbot", Architecture::i386_linux(), "webbot-4.0", 50_000);
        assert_eq!(a.payload.len(), 50_000);
        assert_eq!(a.native_key(), Some("webbot-4.0"));
    }

    #[test]
    fn bytecode_payload_has_no_native_key() {
        let program = compile_source("fn main() { }").unwrap();
        let a = BinaryArtifact::bytecode("x", Architecture::simulated(), &program);
        assert_eq!(a.native_key(), None);
    }

    #[test]
    fn small_native_payload_is_not_padded_down() {
        let a = BinaryArtifact::native("x", Architecture::simulated(), "k", 0);
        assert_eq!(a.native_key(), Some("k"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ArtifactBundle::decode(b"").is_err());
        assert!(ArtifactBundle::decode(b"NOPE\x00\x00").is_err());
        let mut wire = bundle().encode();
        wire.truncate(wire.len() - 1);
        assert!(ArtifactBundle::decode(&wire).is_err());
        let mut wire = bundle().encode();
        wire.push(1);
        assert!(ArtifactBundle::decode(&wire).is_err());
    }
}
